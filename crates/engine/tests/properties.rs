//! Property-based tests for the enforcement engine and the query language.

use ltam_core::model::{Authorization, EntryLimit};
use ltam_engine::engine::AccessControlEngine;
use ltam_engine::query::{parse, Query};
use ltam_engine::report::security_report;
use ltam_engine::violation::Violation;
use ltam_graph::LocationModel;
use ltam_time::{Bound, Interval, Time};
use proptest::prelude::*;

/// A line-of-rooms world with one subject holding limited authorizations.
fn line_world(rooms: usize) -> (AccessControlEngine, Vec<ltam_graph::LocationId>) {
    let mut model = LocationModel::new("W");
    let ids: Vec<_> = (0..rooms)
        .map(|i| model.add_primitive(model.root(), format!("r{i}")).unwrap())
        .collect();
    for w in ids.windows(2) {
        model.add_edge(w[0], w[1]).unwrap();
    }
    model.set_entry(ids[0]).unwrap();
    let engine = AccessControlEngine::new(model);
    (engine, ids)
}

/// Random engine operations.
#[derive(Debug, Clone)]
enum Op {
    Request(u8, u64),
    Enter(u8, u64),
    Exit(u8, u64),
    Tick(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u64..100).prop_map(|(l, t)| Op::Request(l, t)),
        (0u8..4, 0u64..100).prop_map(|(l, t)| Op::Enter(l, t)),
        (0u8..4, 0u64..100).prop_map(|(l, t)| Op::Exit(l, t)),
        (0u64..100).prop_map(Op::Tick),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// However requests, entries, exits and ticks interleave (including
    /// physically impossible ones), the ledger never exceeds the limit,
    /// the engine never panics, and the audit log matches request count.
    #[test]
    fn engine_invariants_under_random_ops(
        ops in prop::collection::vec(arb_op(), 1..60),
        limit in 1u32..4,
    ) {
        let (mut engine, ids) = line_world(4);
        let s = engine.profiles_mut().add_user("S", "sim");
        let mut auth_ids = Vec::new();
        for &l in &ids {
            auth_ids.push(engine.add_authorization(
                Authorization::new(
                    Interval::lit(0, 1000),
                    Interval::lit(0, 2000),
                    s,
                    l,
                    EntryLimit::Finite(limit),
                )
                .unwrap(),
            ));
        }
        let mut requests = 0usize;
        // Times must be monotone per subject for the movements DB; feed the
        // raw times and let the engine flag regressions as violations.
        for op in &ops {
            match *op {
                Op::Request(l, t) => {
                    engine.request_enter(Time(t), s, ids[l as usize % ids.len()]);
                    requests += 1;
                }
                Op::Enter(l, t) => {
                    engine.observe_enter(Time(t), s, ids[l as usize % ids.len()]);
                }
                Op::Exit(l, t) => {
                    engine.observe_exit(Time(t), s, ids[l as usize % ids.len()]);
                }
                Op::Tick(t) => {
                    engine.tick(Time(t));
                }
            }
        }
        prop_assert_eq!(engine.audit().len(), requests);
        for id in auth_ids {
            prop_assert!(
                engine.ledger().used(id) <= limit,
                "ledger exceeded limit for {}", id
            );
        }
        // The report is internally consistent.
        let report = security_report(&engine);
        prop_assert_eq!(report.total_requests, requests);
        prop_assert_eq!(report.grants + report.denials, requests);
        let by_kind_total: usize = report.violations_by_kind.values().sum();
        prop_assert_eq!(by_kind_total, engine.violations().len());
    }

    /// Movement-log derived state stays consistent: at most one open stay
    /// per subject, occupancy matches open stays.
    #[test]
    fn movement_state_consistency(
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let (mut engine, ids) = line_world(4);
        let s = engine.profiles_mut().add_user("S", "sim");
        for &l in &ids {
            engine.add_authorization(
                Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded)
                    .unwrap(),
            );
        }
        let mut t_mono = 0u64;
        for op in &ops {
            t_mono += 1;
            match *op {
                Op::Request(l, _) => {
                    engine.request_enter(Time(t_mono), s, ids[l as usize % ids.len()]);
                }
                Op::Enter(l, _) => {
                    engine.observe_enter(Time(t_mono), s, ids[l as usize % ids.len()]);
                }
                Op::Exit(l, _) => {
                    engine.observe_exit(Time(t_mono), s, ids[l as usize % ids.len()]);
                }
                Op::Tick(_) => {
                    engine.tick(Time(t_mono));
                }
            }
        }
        let open: Vec<_> = engine.movements().inside_now();
        prop_assert!(open.len() <= 1);
        match engine.movements().current_location(s) {
            Some(l) => {
                prop_assert_eq!(open.len(), 1);
                prop_assert!(engine.movements().occupants(l).contains(&s));
            }
            None => prop_assert!(open.is_empty()),
        }
        // Timeline stays are well-formed: exit >= enter, non-overlapping.
        let mut prev_end: Option<Time> = None;
        for stay in engine.movements().timeline(s) {
            if let Some(e) = stay.exit {
                prop_assert!(e >= stay.enter);
            }
            if let Some(p) = prev_end {
                prop_assert!(stay.enter >= p);
            }
            prev_end = stay.exit;
        }
    }

    /// The query printer and parser are inverse: `parse(q.to_string()) == q`.
    #[test]
    fn query_print_parse_round_trip(
        subject in "[A-Za-z][A-Za-z0-9_]{0,8}",
        location in "[A-Za-z][A-Za-z0-9_.]{0,8}",
        t in 0u64..1000,
        a in 0u64..100,
        len in 0u64..100,
        unbounded in any::<bool>(),
        pick in 0u8..8,
    ) {
        let window = if unbounded {
            Interval::new(Time(a), Bound::Unbounded).unwrap()
        } else {
            Interval::lit(a, a + len)
        };
        let q = match pick {
            0 => Query::Accessible { subject: subject.clone() },
            1 => Query::Inaccessible { subject: subject.clone() },
            2 => Query::CanEnter { subject: subject.clone(), location: location.clone(), at: Time(t) },
            3 => Query::WhereIs { subject: subject.clone(), at: Time(t) },
            4 => Query::WhoIn { location: location.clone(), window },
            5 => Query::Contacts { subject: subject.clone(), window },
            6 => Query::Violations {
                subject: if unbounded { Some(subject.clone()) } else { None },
                window: Some(window),
            },
            _ => Query::Earliest { subject: subject.clone(), location: location.clone(), from: Time(t) },
        };
        let printed = q.to_string();
        let back = parse(&printed);
        prop_assert_eq!(back.as_ref(), Ok(&q), "printed form: {}", printed);
    }

    /// The planner and Algorithm 1 agree through the engine facade on
    /// random authorization windows over a line of rooms.
    #[test]
    fn planner_matches_algorithm1_through_engine(
        windows in prop::collection::vec((0u64..50, 0u64..30, 0u64..20), 4),
    ) {
        let (mut engine, ids) = line_world(4);
        let s = engine.profiles_mut().add_user("S", "sim");
        for (&l, &(start, elen, slack)) in ids.iter().zip(&windows) {
            engine.add_authorization(
                Authorization::new(
                    Interval::lit(start, start + elen),
                    Interval::lit(start, start + elen + slack),
                    s,
                    l,
                    EntryLimit::Unbounded,
                )
                .unwrap(),
            );
        }
        let report = engine.inaccessible_for(s);
        for &l in &ids {
            let via_planner = engine.earliest_visit_for(s, l, Time(0)).is_some();
            prop_assert_eq!(
                via_planner,
                !report.is_inaccessible(l),
                "planner/Algorithm 1 disagreement at {}", l
            );
        }
    }

    /// Tailgating detection is complete through the engine: every entry
    /// without a grant raises exactly one violation.
    #[test]
    fn every_ungranted_entry_is_flagged(
        entries in prop::collection::vec((0u8..4, any::<bool>()), 1..20),
    ) {
        let (mut engine, ids) = line_world(4);
        let s = engine.profiles_mut().add_user("S", "sim");
        for &l in &ids {
            engine.add_authorization(
                Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded)
                    .unwrap(),
            );
        }
        let mut t = 0u64;
        let mut expected_flags = 0usize;
        let mut inside: Option<ltam_graph::LocationId> = None;
        for (l, request_first) in entries {
            t += 1;
            let target = ids[l as usize % ids.len()];
            // Leave first to keep the stream physically consistent.
            if let Some(cur) = inside.take() {
                engine.observe_exit(Time(t), s, cur);
                t += 1;
            }
            if request_first {
                engine.request_enter(Time(t), s, target);
            } else {
                expected_flags += 1;
            }
            engine.observe_enter(Time(t), s, target);
            inside = Some(target);
        }
        let flagged = engine
            .violations()
            .iter()
            .filter(|v| matches!(v, Violation::UnauthorizedEntry { .. }))
            .count();
        prop_assert_eq!(flagged, expected_flags);
    }
}
