//! Administrator-facing security reports.
//!
//! The paper motivates LTAM partly as "a framework for analyzing the
//! security shortfalls due to human errors in specifying authorizations";
//! this module condenses the engine's state into the summary a security
//! officer reviews at end of shift: decision counts, violation breakdowns,
//! hotspots, and current occupancy.

use crate::engine::AccessControlEngine;
use crate::violation::Violation;
use ltam_core::decision::Decision;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A condensed view of the engine's security state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecurityReport {
    /// Audited access requests.
    pub total_requests: usize,
    /// Requests granted.
    pub grants: usize,
    /// Requests denied.
    pub denials: usize,
    /// Violations by kind name.
    pub violations_by_kind: BTreeMap<String, usize>,
    /// Locations ranked by violation count (name, count), descending.
    pub violation_hotspots: Vec<(String, usize)>,
    /// Subjects ranked by violation count (name, count), descending.
    pub top_violators: Vec<(String, usize)>,
    /// Movement events recorded.
    pub movement_events: usize,
    /// Subjects currently inside some location.
    pub currently_inside: usize,
}

fn kind_name(v: &Violation) -> &'static str {
    match v {
        Violation::UnauthorizedEntry { .. } => "unauthorized entry",
        Violation::ExitOutsideWindow { .. } => "exit outside window",
        Violation::Overstay { .. } => "overstay",
        Violation::InconsistentMovement { .. } => "inconsistent movement",
    }
}

/// Build the report from an engine's current state.
pub fn security_report(engine: &AccessControlEngine) -> SecurityReport {
    let mut grants = 0;
    let mut denials = 0;
    for rec in engine.audit() {
        match rec.decision {
            Decision::Granted { .. } | Decision::GrantedOverride { .. } => grants += 1,
            Decision::Denied { .. } => denials += 1,
        }
    }
    let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_location: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_subject: BTreeMap<String, usize> = BTreeMap::new();
    for v in engine.violations() {
        *by_kind.entry(kind_name(v).to_string()).or_default() += 1;
        let loc = engine.model().name(v.location()).to_string();
        *by_location.entry(loc).or_default() += 1;
        let subj = engine
            .profiles()
            .name_of(v.subject())
            .map(str::to_string)
            .unwrap_or_else(|| v.subject().to_string());
        *by_subject.entry(subj).or_default() += 1;
    }
    let rank = |m: BTreeMap<String, usize>| {
        let mut v: Vec<(String, usize)> = m.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    };
    SecurityReport {
        total_requests: engine.audit().len(),
        grants,
        denials,
        violations_by_kind: by_kind,
        violation_hotspots: rank(by_location),
        top_violators: rank(by_subject),
        movement_events: engine.movements().len(),
        currently_inside: engine.movements().inside_now().len(),
    }
}

impl fmt::Display for SecurityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "security report")?;
        writeln!(
            f,
            "  requests: {} ({} granted, {} denied)",
            self.total_requests, self.grants, self.denials
        )?;
        writeln!(
            f,
            "  movements: {} events, {} currently inside",
            self.movement_events, self.currently_inside
        )?;
        let total: usize = self.violations_by_kind.values().sum();
        writeln!(f, "  violations: {total}")?;
        for (kind, n) in &self.violations_by_kind {
            writeln!(f, "    {kind}: {n}")?;
        }
        if !self.violation_hotspots.is_empty() {
            writeln!(f, "  hotspots:")?;
            for (loc, n) in self.violation_hotspots.iter().take(5) {
                writeln!(f, "    {loc}: {n}")?;
            }
        }
        if !self.top_violators.is_empty() {
            writeln!(f, "  top violators:")?;
            for (s, n) in self.top_violators.iter().take(5) {
                writeln!(f, "    {s}: {n}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltam_core::model::{Authorization, EntryLimit};
    use ltam_graph::examples::ntu_campus;
    use ltam_time::{Interval, Time};

    fn busy_engine() -> AccessControlEngine {
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut e = AccessControlEngine::new(ntu.model);
        let alice = e.profiles_mut().add_user("Alice", "staff");
        let mallory = e.profiles_mut().add_user("Mallory", "?");
        e.add_authorization(
            Authorization::new(
                Interval::lit(0, 50),
                Interval::lit(0, 60),
                alice,
                cais,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        assert!(e.request_enter(Time(5), alice, cais).is_granted());
        e.observe_enter(Time(5), alice, cais);
        assert!(!e.request_enter(Time(10), alice, cais).is_granted()); // exhausted? no: still inside; second request denied on budget
        e.observe_enter(Time(7), mallory, cais); // tailgating
        e.observe_enter(Time(8), mallory, cais); // inconsistent (already in)
        e.tick(Time(100)); // Alice overstays
        e
    }

    #[test]
    fn report_counts_everything() {
        let e = busy_engine();
        let r = security_report(&e);
        assert_eq!(r.total_requests, 2);
        assert_eq!(r.grants, 1);
        assert_eq!(r.denials, 1);
        assert_eq!(r.violations_by_kind["unauthorized entry"], 1);
        assert_eq!(r.violations_by_kind["inconsistent movement"], 1);
        assert_eq!(r.violations_by_kind["overstay"], 1);
        assert_eq!(r.movement_events, 2); // Alice + Mallory's first enter
        assert_eq!(r.currently_inside, 2);
        // CAIS is the single hotspot with all three violations.
        assert_eq!(r.violation_hotspots[0], ("CAIS".to_string(), 3));
        assert_eq!(r.top_violators[0].0, "Mallory");
    }

    #[test]
    fn display_is_complete() {
        let e = busy_engine();
        let text = security_report(&e).to_string();
        assert!(text.contains("requests: 2 (1 granted, 1 denied)"));
        assert!(text.contains("violations: 3"));
        assert!(text.contains("hotspots"));
        assert!(text.contains("Mallory"));
    }

    #[test]
    fn empty_engine_empty_report() {
        let ntu = ntu_campus();
        let e = AccessControlEngine::new(ntu.model);
        let r = security_report(&e);
        assert_eq!(r.total_requests, 0);
        assert!(r.violations_by_kind.is_empty());
        assert!(r.violation_hotspots.is_empty());
        let text = r.to_string();
        assert!(text.contains("violations: 0"));
    }
}
