//! The access control engine (Figure 3's core component).
//!
//! The engine owns the four databases of the architecture — authorizations,
//! location & movements, user profiles, and the location layout — and
//! implements the enforcement loop:
//!
//! 1. **Access requests** (Definition 6) are checked against the
//!    authorization database (Definition 7); grants are remembered as
//!    *pending* until the subject physically enters.
//! 2. **Movements** are monitored continuously: an entry without a pending
//!    grant is an [`Violation::UnauthorizedEntry`] (this is what catches a
//!    group tailgating through one person's authorization), an exit outside
//!    the authorization's exit duration is a
//!    [`Violation::ExitOutsideWindow`].
//! 3. **Clock ticks** scan for subjects still inside after their exit
//!    window closed ([`Violation::Overstay`]) — the paper's "warning signal
//!    to the security guards".
//! 4. **Rules** are re-derived on demand; revoked derived authorizations
//!    drop their usage counters.

use crate::movement::MovementsDb;
use crate::profile::UserProfileDb;
use crate::shard::{PolicyView, ShardState};
use crate::violation::{Alert, Violation};
use crossbeam::channel::Sender;
use ltam_core::db::{AuthId, AuthorizationDb};
use ltam_core::decision::{AccessRequest, Decision};
use ltam_core::inaccessible::{find_inaccessible, InaccessibleReport};
use ltam_core::ledger::UsageLedger;
use ltam_core::model::Authorization;
use ltam_core::planner::{earliest_visit, Itinerary};
use ltam_core::prohibition::{restrict_authorizations, Prohibition, ProhibitionDb};
use ltam_core::recurring::{expand_recurring, RecurringAuthorization, RecurringError};
use ltam_core::rules::{Rule, RuleEngine};
use ltam_core::subject::SubjectId;
use ltam_graph::{EffectiveGraph, LocationId, LocationModel};
use ltam_time::{Interval, Time};
use serde::{Deserialize, Serialize};

/// Default [`EngineConfig::grant_ttl`], in **chronons** (the paper's
/// smallest indivisible time unit — see `ltam-time`).
///
/// A granted access request is a promise that the door will recognize the
/// subject's physical entry; this is how long that promise lasts. Five
/// chronons matches the paper's worked examples, where requests and
/// entries happen within a few time units of each other (e.g. the §5
/// walkthrough requests at `t = 16` and enters before `t = 20`).
pub const DEFAULT_GRANT_TTL: u64 = 5;

/// Tunables for the enforcement loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Chronons a granted request stays usable before the subject must
    /// physically enter; after that the grant lapses and the entry would be
    /// unauthorized. An entry at `t` is honored iff
    /// `granted_at <= t <= granted_at + grant_ttl` (and the grant is still
    /// valid). Defaults to [`DEFAULT_GRANT_TTL`].
    pub grant_ttl: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            grant_ttl: DEFAULT_GRANT_TTL,
        }
    }
}

/// One audited request decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// The request.
    pub request: AccessRequest,
    /// The decision taken.
    pub decision: Decision,
}

/// The LTAM enforcement engine.
///
/// Internally this is one [`ShardState`] (the per-subject mutable half)
/// over the policy stores (the read-mostly half) — the same split the
/// concurrent [`ShardedEngine`](crate::batch::ShardedEngine) partitions
/// across threads, so both run identical enforcement code.
#[derive(Debug)]
pub struct AccessControlEngine {
    model: LocationModel,
    graph: EffectiveGraph,
    db: AuthorizationDb,
    prohibitions: ProhibitionDb,
    profiles: UserProfileDb,
    rules: RuleEngine,
    config: EngineConfig,
    situation: ltam_situate::SituationPolicy,
    state: ShardState,
    alert_seq: u64,
    alert_tx: Option<Sender<Alert>>,
}

impl AccessControlEngine {
    /// Build an engine for a location layout.
    pub fn new(model: LocationModel) -> AccessControlEngine {
        let graph = EffectiveGraph::build(&model);
        AccessControlEngine {
            model,
            graph,
            db: AuthorizationDb::new(),
            prohibitions: ProhibitionDb::new(),
            profiles: UserProfileDb::new(),
            rules: RuleEngine::new(),
            config: EngineConfig::default(),
            situation: ltam_situate::SituationPolicy::default(),
            state: ShardState::new(),
            alert_seq: 0,
            alert_tx: None,
        }
    }

    /// Override the enforcement tunables.
    pub fn set_config(&mut self, config: EngineConfig) {
        self.config = config;
    }

    /// Route alerts to a channel (the security desk).
    pub fn set_alert_channel(&mut self, tx: Sender<Alert>) {
        self.alert_tx = Some(tx);
    }

    // --- component access ---------------------------------------------------

    /// The location layout.
    pub fn model(&self) -> &LocationModel {
        &self.model
    }

    /// The flattened location graph.
    pub fn graph(&self) -> &EffectiveGraph {
        &self.graph
    }

    /// The authorization database (read-only; mutate via
    /// [`AccessControlEngine::add_authorization`] /
    /// [`AccessControlEngine::revoke_authorization`]).
    pub fn db(&self) -> &AuthorizationDb {
        &self.db
    }

    /// The movements database.
    pub fn movements(&self) -> &MovementsDb {
        self.state.movements()
    }

    /// The user profile database.
    pub fn profiles(&self) -> &UserProfileDb {
        &self.profiles
    }

    /// Mutable profile access (administration).
    pub fn profiles_mut(&mut self) -> &mut UserProfileDb {
        &mut self.profiles
    }

    /// The usage ledger.
    pub fn ledger(&self) -> &UsageLedger {
        self.state.ledger()
    }

    /// Violations detected so far, in detection order. Complete from
    /// [`AccessControlEngine::watermarks`]`.violations` onward; earlier
    /// ones may have been pruned by retention (still counted by
    /// [`AccessControlEngine::violations_pruned`]).
    pub fn violations(&self) -> &[Violation] {
        self.state.violations()
    }

    /// Violations dropped by retention (live list + this = total ever).
    pub fn violations_pruned(&self) -> u64 {
        self.state.violations_pruned()
    }

    /// The audited request decisions.
    pub fn audit(&self) -> &[AuditRecord] {
        self.state.audit()
    }

    // --- administration -----------------------------------------------------

    /// Insert an explicitly created authorization.
    pub fn add_authorization(&mut self, auth: Authorization) -> AuthId {
        self.db.insert(auth)
    }

    /// Add a prohibition: denial takes precedence over every grant in the
    /// blocked window (lockdowns, quarantines, badge suspensions).
    pub fn add_prohibition(&mut self, prohibition: Prohibition) {
        self.prohibitions.insert(prohibition);
    }

    /// The prohibition store.
    pub fn prohibitions(&self) -> &ProhibitionDb {
        &self.prohibitions
    }

    /// Expand a recurring grant over `horizon` and insert every occurrence.
    pub fn add_recurring_authorization(
        &mut self,
        recurring: &RecurringAuthorization,
        horizon: Interval,
    ) -> Result<Vec<AuthId>, RecurringError> {
        let auths = expand_recurring(recurring, horizon)?;
        Ok(auths.into_iter().map(|a| self.db.insert(a)).collect())
    }

    /// Revoke an authorization and drop its usage counters.
    pub fn revoke_authorization(&mut self, id: AuthId) -> Option<Authorization> {
        // Usage counters and any pending grant on a revoked authorization
        // lapse with it.
        self.state.invalidate_auth(id);
        self.db.revoke(id)
    }

    /// The situation overlay governing this engine's decisions.
    pub fn situation(&self) -> &ltam_situate::SituationPolicy {
        &self.situation
    }

    /// Apply a situation edit (declare a mode, register responders,
    /// pin authorizations, install workflow constraints) — the
    /// single-threaded counterpart of the sharded engine's
    /// epoch-swapped situation updates.
    pub fn apply_situation(
        &mut self,
        op: &ltam_situate::SituationOp,
    ) -> ltam_situate::SituationOutcome {
        self.situation.apply(op)
    }

    /// Register an authorization rule (§4).
    pub fn add_rule(&mut self, rule: Rule) -> ltam_core::db::RuleId {
        self.rules.add_rule(rule)
    }

    /// Remove a rule; its derived authorizations are revoked on the next
    /// [`AccessControlEngine::apply_rules`].
    pub fn remove_rule(&mut self, id: ltam_core::db::RuleId) -> Option<Rule> {
        self.rules.remove_rule(id)
    }

    /// Export declarative rules with ids (persistence; see
    /// [`crate::snapshot::EngineSnapshot`]).
    pub fn rules_export(&self) -> Vec<(ltam_core::db::RuleId, Rule)> {
        self.rules.export()
    }

    /// Rebuild internal state from snapshot parts (crate-internal; use
    /// [`AccessControlEngine::restore`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore_parts(
        &mut self,
        rows: Vec<(AuthId, Authorization, ltam_core::db::Provenance)>,
        next_auth_id: u64,
        prohibitions: ProhibitionDb,
        rules: Vec<(ltam_core::db::RuleId, Rule)>,
        ledger: UsageLedger,
        profiles: UserProfileDb,
        movements: MovementsDb,
        violations: Vec<Violation>,
        violations_pruned: u64,
        active: Vec<(SubjectId, LocationId, AuthId)>,
    ) {
        self.db = AuthorizationDb::import_rows(rows);
        self.db.reserve_ids_through(next_auth_id);
        self.prohibitions = prohibitions;
        self.rules = RuleEngine::import(rules);
        self.state.ledger = ledger;
        self.profiles = profiles;
        self.state.movements = movements;
        // Pruned violations keep counting toward the alert sequence so
        // restored alerts never repeat a sequence number.
        self.alert_seq = violations.len() as u64 + violations_pruned;
        self.state.violations_pruned = violations_pruned;
        self.state.violations = violations;
        self.state.active_auth = active.into_iter().map(|(s, l, a)| (s, (l, a))).collect();
        self.state.pending.clear();
        self.state.overstay_alerted.clear();
    }

    /// The authorizations currently governing open stays (persistence).
    pub fn active_stays(&self) -> Vec<(SubjectId, LocationId, AuthId)> {
        self.state.active_stays()
    }

    /// Detect authorization conflicts (§4: overlapping/adjacent entry
    /// windows for the same subject and location).
    pub fn conflicts(&self) -> Vec<ltam_core::Conflict> {
        ltam_core::detect_conflicts(&self.db)
    }

    /// Resolve all conflicts with `strategy`; usage counters and pending
    /// grants of removed authorizations are dropped.
    pub fn resolve_conflicts(
        &mut self,
        strategy: ltam_core::ResolutionStrategy,
    ) -> ltam_core::conflict::ResolutionReport {
        let report = ltam_core::resolve_conflicts(&mut self.db, strategy);
        for &(_, removed) in &report.resolved {
            self.state.invalidate_auth(removed);
        }
        report
    }

    /// Re-derive all rules to a fixpoint, clearing counters of anything
    /// revoked. Returns the derivation report.
    pub fn apply_rules(&mut self) -> ltam_core::rules::DerivationReport {
        let report = self
            .rules
            .apply_to_fixpoint(&mut self.db, &self.profiles, &self.graph, 8);
        for &id in &report.revoked {
            self.state.invalidate_auth(id);
        }
        report
    }

    // --- retention ----------------------------------------------------------

    /// Run one retention maintenance pass at monitoring time `now`:
    /// prune history of every enabled record class older than
    /// `policy.horizon_at(now)` and return the removed records. The
    /// caller decides their fate (archive or discard); after a discard,
    /// historical queries below the watermark refuse — see
    /// [`crate::query`] — rather than silently under-report.
    pub fn run_retention(
        &mut self,
        policy: &ltam_core::RetentionPolicy,
        now: Time,
    ) -> crate::retention::PrunedHistory {
        self.state.prune(policy, policy.horizon_at(now))
    }

    /// From which chronon each record class is complete in live state
    /// (`Time::ZERO` everywhere if retention never ran).
    pub fn watermarks(&self) -> crate::retention::HistoryWatermarks {
        self.state.watermarks()
    }

    // --- enforcement ---------------------------------------------------------

    /// Process an access request (Definition 6). A grant is remembered so
    /// the subsequent physical entry is recognized as authorized.
    pub fn request_enter(&mut self, t: Time, subject: SubjectId, location: LocationId) -> Decision {
        let policy = PolicyView {
            db: &self.db,
            prohibitions: &self.prohibitions,
            config: self.config,
            situation: &self.situation,
        };
        self.state.request_enter(&policy, t, subject, location)
    }

    /// Forward a freshly recorded violation to the security desk.
    fn alert(&mut self, violation: Violation) {
        let alert = Alert {
            violation,
            seq: self.alert_seq,
        };
        self.alert_seq += 1;
        if let Some(tx) = &self.alert_tx {
            let _ = tx.send(alert);
        }
    }

    /// Process an observed entry (from the tracking infrastructure).
    ///
    /// Returns the violation raised, if any.
    pub fn observe_enter(
        &mut self,
        t: Time,
        subject: SubjectId,
        location: LocationId,
    ) -> Option<Violation> {
        let policy = PolicyView {
            db: &self.db,
            prohibitions: &self.prohibitions,
            config: self.config,
            situation: &self.situation,
        };
        let raised = self.state.observe_enter(&policy, t, subject, location);
        if let Some(v) = raised {
            self.alert(v);
        }
        raised
    }

    /// Process an observed exit. Returns the violation raised, if any.
    pub fn observe_exit(
        &mut self,
        t: Time,
        subject: SubjectId,
        location: LocationId,
    ) -> Option<Violation> {
        let policy = PolicyView {
            db: &self.db,
            prohibitions: &self.prohibitions,
            config: self.config,
            situation: &self.situation,
        };
        let raised = self.state.observe_exit(&policy, t, subject, location);
        if let Some(v) = raised {
            self.alert(v);
        }
        raised
    }

    /// Advance the monitoring clock: raise an overstay alert (once per
    /// stay) for every subject still inside after their exit window closed.
    pub fn tick(&mut self, now: Time) -> Vec<Violation> {
        let policy = PolicyView {
            db: &self.db,
            prohibitions: &self.prohibitions,
            config: self.config,
            situation: &self.situation,
        };
        let raised = self.state.tick(&policy, now);
        for &v in &raised {
            self.alert(v);
        }
        raised
    }

    // --- analysis -------------------------------------------------------------

    /// A read-only view for the query engine.
    pub fn query_context(&self) -> crate::query::QueryContext<'_> {
        let watermarks = self.state.watermarks();
        crate::query::QueryContext {
            model: &self.model,
            graph: &self.graph,
            db: &self.db,
            prohibitions: &self.prohibitions,
            ledger: self.state.ledger(),
            movements: self.state.movements(),
            violations: self.state.violations(),
            profiles: &self.profiles,
            history_from: watermarks.movements,
            violations_from: watermarks.violations,
        }
    }

    /// Parse and evaluate a query-language string against this engine.
    pub fn query(
        &self,
        input: &str,
    ) -> Result<crate::query::QueryResult, crate::query::QueryError> {
        crate::query::run(input, &self.query_context())
    }

    /// Run Algorithm 1 for a subject over the current database, with
    /// prohibitions applied (blocked windows cannot carry a route).
    pub fn inaccessible_for(&self, subject: SubjectId) -> InaccessibleReport {
        let auths = restrict_authorizations(
            &self.db.per_location_for_subject(subject),
            subject,
            &self.prohibitions,
        );
        find_inaccessible(&self.graph, &auths)
    }

    /// Earliest authorized visit to `target` starting outside at `from`
    /// (temporal route planning over the restricted authorizations).
    pub fn earliest_visit_for(
        &self,
        subject: SubjectId,
        target: LocationId,
        from: Time,
    ) -> Option<Itinerary> {
        let auths = restrict_authorizations(
            &self.db.per_location_for_subject(subject),
            subject,
            &self.prohibitions,
        );
        earliest_visit(&self.graph, &auths, target, from)
    }

    /// The complement: locations the subject can reach.
    pub fn accessible_for(&self, subject: SubjectId) -> Vec<LocationId> {
        let report = self.inaccessible_for(subject);
        self.graph
            .locations()
            .filter(|l| !report.is_inaccessible(*l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltam_core::decision::DenyReason;
    use ltam_core::model::EntryLimit;
    use ltam_graph::examples::ntu_campus;
    use ltam_time::Interval;

    fn engine_with_alice() -> (AccessControlEngine, SubjectId, LocationId) {
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut e = AccessControlEngine::new(ntu.model);
        let alice = e.profiles_mut().add_user("Alice", "researcher");
        // ([5, 40], [20, 100], (Alice, CAIS), 1) — the §3.2 example.
        e.add_authorization(
            Authorization::new(
                Interval::lit(5, 40),
                Interval::lit(20, 100),
                alice,
                cais,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        (e, alice, cais)
    }

    #[test]
    fn grant_then_enter_consumes_budget() {
        let (mut e, alice, cais) = engine_with_alice();
        assert!(e.request_enter(Time(10), alice, cais).is_granted());
        assert_eq!(e.observe_enter(Time(11), alice, cais), None);
        assert_eq!(e.movements().current_location(alice), Some(cais));
        // The single entry is used up.
        e.observe_exit(Time(25), alice, cais);
        let d = e.request_enter(Time(30), alice, cais);
        assert_eq!(
            d,
            Decision::Denied {
                reason: DenyReason::EntriesExhausted
            }
        );
        assert!(e.violations().is_empty());
        assert_eq!(e.audit().len(), 2);
    }

    #[test]
    fn entry_without_grant_is_tailgating() {
        let (mut e, _, cais) = engine_with_alice();
        let mallory = e.profiles_mut().add_user("Mallory", "visitor");
        let v = e.observe_enter(Time(12), mallory, cais).unwrap();
        assert_eq!(
            v,
            Violation::UnauthorizedEntry {
                time: Time(12),
                subject: mallory,
                location: cais
            }
        );
        assert_eq!(e.violations().len(), 1);
        // The movement itself is still tracked (physical reality).
        assert_eq!(e.movements().current_location(mallory), Some(cais));
    }

    #[test]
    fn stale_grant_lapses_after_ttl() {
        let (mut e, alice, cais) = engine_with_alice();
        assert!(e.request_enter(Time(10), alice, cais).is_granted());
        // Default TTL is 5; entering at 16 is too late.
        let v = e.observe_enter(Time(16), alice, cais);
        assert!(matches!(v, Some(Violation::UnauthorizedEntry { .. })));
    }

    #[test]
    fn default_grant_ttl_is_five_chronons() {
        // The grant TTL is measured in chronons (the paper's smallest time
        // unit): a grant at chronon t admits entries in [t, t + ttl].
        assert_eq!(DEFAULT_GRANT_TTL, 5);
        assert_eq!(EngineConfig::default().grant_ttl, DEFAULT_GRANT_TTL);
        // Boundary: entry exactly at granted_at + ttl is still honored.
        let (mut e, alice, cais) = engine_with_alice();
        assert!(e.request_enter(Time(10), alice, cais).is_granted());
        assert_eq!(e.observe_enter(Time(15), alice, cais), None);
    }

    #[test]
    fn grant_for_one_location_does_not_open_another() {
        let (mut e, alice, cais) = engine_with_alice();
        let ntu = ntu_campus();
        assert!(e.request_enter(Time(10), alice, cais).is_granted());
        let v = e.observe_enter(Time(11), alice, ntu.sce_go);
        assert!(matches!(v, Some(Violation::UnauthorizedEntry { .. })));
    }

    #[test]
    fn early_exit_raises_violation() {
        let (mut e, alice, cais) = engine_with_alice();
        e.request_enter(Time(10), alice, cais);
        e.observe_enter(Time(10), alice, cais);
        // Exit window is [20, 100]; leaving at 15 is early.
        let v = e.observe_exit(Time(15), alice, cais).unwrap();
        assert!(matches!(v, Violation::ExitOutsideWindow { .. }));
    }

    #[test]
    fn overstay_detected_once_per_stay() {
        let (mut e, alice, cais) = engine_with_alice();
        e.request_enter(Time(10), alice, cais);
        e.observe_enter(Time(10), alice, cais);
        assert!(e.tick(Time(50)).is_empty()); // exit window still open
        let raised = e.tick(Time(101));
        assert_eq!(raised.len(), 1);
        assert!(matches!(raised[0], Violation::Overstay { .. }));
        // No duplicate alert on the next tick.
        assert!(e.tick(Time(102)).is_empty());
    }

    #[test]
    fn inconsistent_movement_is_flagged() {
        let (mut e, alice, cais) = engine_with_alice();
        // Exit without ever entering.
        let v = e.observe_exit(Time(5), alice, cais).unwrap();
        assert!(matches!(v, Violation::InconsistentMovement { .. }));
    }

    #[test]
    fn alerts_flow_through_channel() {
        let (mut e, _, cais) = engine_with_alice();
        let (tx, rx) = crossbeam::channel::unbounded();
        e.set_alert_channel(tx);
        let mallory = e.profiles_mut().add_user("Mallory", "visitor");
        e.observe_enter(Time(12), mallory, cais);
        let alert = rx.try_recv().unwrap();
        assert_eq!(alert.seq, 0);
        assert!(matches!(
            alert.violation,
            Violation::UnauthorizedEntry { .. }
        ));
    }

    #[test]
    fn revocation_invalidates_pending_grant() {
        let (mut e, alice, cais) = engine_with_alice();
        let id = {
            let d = e.request_enter(Time(10), alice, cais);
            match d {
                Decision::Granted { auth } => auth,
                _ => panic!("expected grant"),
            }
        };
        e.revoke_authorization(id);
        let v = e.observe_enter(Time(11), alice, cais);
        assert!(matches!(v, Some(Violation::UnauthorizedEntry { .. })));
    }

    #[test]
    fn prohibition_overrides_grant() {
        use ltam_core::decision::DenyReason;
        use ltam_core::prohibition::Prohibition;
        let (mut e, alice, cais) = engine_with_alice();
        e.add_prohibition(Prohibition {
            subject: alice,
            location: cais,
            window: Interval::lit(8, 15),
        });
        assert_eq!(
            e.request_enter(Time(10), alice, cais),
            Decision::Denied {
                reason: DenyReason::Prohibited
            }
        );
        // Outside the blocked window the grant works again.
        assert!(e.request_enter(Time(20), alice, cais).is_granted());
    }

    #[test]
    fn prohibition_issued_after_grant_voids_pending_entry() {
        use ltam_core::prohibition::Prohibition;
        let (mut e, alice, cais) = engine_with_alice();
        assert!(e.request_enter(Time(10), alice, cais).is_granted());
        // Lockdown lands between the swipe and the door.
        e.add_prohibition(Prohibition {
            subject: alice,
            location: cais,
            window: Interval::lit(11, 30),
        });
        let v = e.observe_enter(Time(11), alice, cais);
        assert!(matches!(v, Some(Violation::UnauthorizedEntry { .. })));
    }

    #[test]
    fn prohibitions_shrink_accessibility() {
        use ltam_core::prohibition::Prohibition;
        let ntu = ntu_campus();
        let (sce_go, sce_a) = (ntu.sce_go, ntu.sce_a);
        let mut e = AccessControlEngine::new(ntu.model);
        let alice = e.profiles_mut().add_user("Alice", "researcher");
        for l in [sce_go, sce_a] {
            e.add_authorization(
                Authorization::new(
                    Interval::ALL,
                    Interval::ALL,
                    alice,
                    l,
                    EntryLimit::Unbounded,
                )
                .unwrap(),
            );
        }
        assert_eq!(e.accessible_for(alice), vec![sce_go, sce_a]);
        e.add_prohibition(Prohibition {
            subject: alice,
            location: sce_go,
            window: Interval::ALL,
        });
        // The only entry is blocked forever: nothing is reachable.
        assert!(e.accessible_for(alice).is_empty());
    }

    #[test]
    fn earliest_visit_for_plans_a_timed_route() {
        let ntu = ntu_campus();
        let (sce_go, sce_a, sce_b, cais) = (ntu.sce_go, ntu.sce_a, ntu.sce_b, ntu.cais);
        let mut e = AccessControlEngine::new(ntu.model);
        let alice = e.profiles_mut().add_user("Alice", "researcher");
        let windows = [
            (sce_go, (0u64, 100u64)),
            (sce_a, (10, 100)),
            (sce_b, (20, 100)),
            (cais, (30, 100)),
        ];
        for (l, (a, b)) in windows {
            e.add_authorization(
                Authorization::new(
                    Interval::lit(a, b),
                    Interval::lit(a, b + 50),
                    alice,
                    l,
                    EntryLimit::Unbounded,
                )
                .unwrap(),
            );
        }
        let it = e.earliest_visit_for(alice, cais, Time(0)).unwrap();
        assert_eq!(it.arrival, Time(30));
        assert_eq!(it.route(), vec![sce_go, sce_a, sce_b, cais]);
        // No route at all for an unauthorized target.
        assert!(e.earliest_visit_for(alice, ntu.lab1, Time(0)).is_none());
    }

    #[test]
    fn recurring_grant_expands_and_enforces() {
        use ltam_core::recurring::RecurringAuthorization;
        use ltam_time::Periodic;
        let (mut e, alice, cais) = engine_with_alice();
        let ids = e
            .add_recurring_authorization(
                &RecurringAuthorization {
                    subject: alice,
                    location: cais,
                    pattern: Periodic::new(Time(200), 24, [(9, 8)]).unwrap(),
                    exit_slack: 4,
                    limit: EntryLimit::Unbounded,
                },
                Interval::lit(200, 272),
            )
            .unwrap();
        assert_eq!(ids.len(), 3);
        // Inside the second occurrence (chronon 233..240 relative pattern).
        assert!(e.request_enter(Time(235), alice, cais).is_granted());
        // In the gap between occurrences.
        assert!(!e.request_enter(Time(230), alice, cais).is_granted());
    }

    #[test]
    fn earliest_query_form_end_to_end() {
        let ntu = ntu_campus();
        let (sce_go, sce_a) = (ntu.sce_go, ntu.sce_a);
        let mut e = AccessControlEngine::new(ntu.model);
        let alice = e.profiles_mut().add_user("Alice", "researcher");
        for (l, start) in [(sce_go, 5u64), (sce_a, 12)] {
            e.add_authorization(
                Authorization::new(
                    Interval::lit(start, 100),
                    Interval::lit(start, 150),
                    alice,
                    l,
                    EntryLimit::Unbounded,
                )
                .unwrap(),
            );
        }
        let r = e.query("EARLIEST Alice TO SCE.SectionA FROM 0").unwrap();
        let crate::query::QueryResult::Itinerary(Some(hops)) = r else {
            panic!("expected an itinerary, got {r:?}");
        };
        assert_eq!(
            hops,
            vec![
                ("SCE.GO".to_string(), Time(5)),
                ("SCE.SectionA".to_string(), Time(12)),
            ]
        );
        let r = e.query("EARLIEST Alice TO CAIS").unwrap();
        assert_eq!(r, crate::query::QueryResult::Itinerary(None));
    }

    #[test]
    fn accessible_for_uses_algorithm1() {
        let ntu = ntu_campus();
        let sce_go = ntu.sce_go;
        let mut e = AccessControlEngine::new(ntu.model);
        let alice = e.profiles_mut().add_user("Alice", "researcher");
        // Only the SCE general office is authorized.
        e.add_authorization(
            Authorization::new(
                Interval::ALL,
                Interval::ALL,
                alice,
                sce_go,
                EntryLimit::Unbounded,
            )
            .unwrap(),
        );
        let acc = e.accessible_for(alice);
        assert_eq!(acc, vec![sce_go]);
        let report = e.inaccessible_for(alice);
        assert!(report.inaccessible.len() == e.graph().len() - 1);
    }
}
