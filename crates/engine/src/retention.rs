//! Retention plumbing for the enforcement layer: the record bundle a
//! prune produces, and the per-class watermarks a pruned engine exposes.
//!
//! The policy itself is [`ltam_core::retention::RetentionPolicy`]; this
//! module holds the engine-side halves: [`PrunedHistory`] (what a prune
//! removed — the archive tier in `ltam-store` persists exactly this
//! shape) and [`HistoryWatermarks`] (from which chronon each record
//! class is complete in live state).

use crate::engine::AuditRecord;
use crate::movement::{MovementEvent, Stay};
use crate::violation::Violation;
use ltam_core::subject::SubjectId;
use ltam_time::Time;
use serde::{Deserialize, Serialize};

/// The records one retention run removed from live state, in stored
/// order per class. In a durable deployment this is written to the
/// archive tier *before* the in-memory drop; in a volatile deployment
/// the caller may keep or discard it — but discarding means historical
/// queries past the watermark will refuse rather than under-report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrunedHistory {
    /// Pruned raw movement events (enter/exit), in log order.
    pub events: Vec<MovementEvent>,
    /// Pruned closed stays with their subjects, in timeline order per
    /// subject (subjects in id order).
    pub stays: Vec<(SubjectId, Stay)>,
    /// Pruned audited request decisions, in decision order.
    pub audit: Vec<AuditRecord>,
    /// Pruned violations, in detection order.
    pub violations: Vec<Violation>,
}

impl PrunedHistory {
    /// True if the run removed nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.stays.is_empty()
            && self.audit.is_empty()
            && self.violations.is_empty()
    }

    /// Total records across all classes.
    pub fn len(&self) -> usize {
        self.events.len() + self.stays.len() + self.audit.len() + self.violations.len()
    }

    /// Append another prune's records (used to merge per-shard prunes
    /// into one engine-level bundle).
    pub fn merge(&mut self, other: PrunedHistory) {
        self.events.extend(other.events);
        self.stays.extend(other.stays);
        self.audit.extend(other.audit);
        self.violations.extend(other.violations);
    }
}

/// From which chronon each record class is complete in live state.
/// Everything strictly before a class's watermark has been pruned (and,
/// in a durable deployment, archived); queries below it must go through
/// the tier-aware entry points in `ltam-store` or refuse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryWatermarks {
    /// Movement history (stays, events, whereabouts, contacts).
    pub movements: Time,
    /// Audited request decisions.
    pub audit: Time,
    /// Detected violations.
    pub violations: Time,
}

impl HistoryWatermarks {
    /// Merge per-shard watermarks: a class's engine-level watermark is
    /// the *maximum* over shards (any shard having pruned to `w` makes
    /// answers below `w` potentially incomplete).
    pub fn join(self, other: HistoryWatermarks) -> HistoryWatermarks {
        HistoryWatermarks {
            movements: self.movements.max(other.movements),
            audit: self.audit.max(other.audit),
            violations: self.violations.max(other.violations),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movement::MovementKind;
    use ltam_graph::LocationId;

    #[test]
    fn merge_concatenates_every_class() {
        let mut a = PrunedHistory::default();
        assert!(a.is_empty());
        let b = PrunedHistory {
            events: vec![MovementEvent {
                time: Time(1),
                subject: SubjectId(0),
                location: LocationId(2),
                kind: MovementKind::Enter,
            }],
            stays: vec![(
                SubjectId(0),
                Stay {
                    location: LocationId(2),
                    enter: Time(1),
                    exit: Some(Time(2)),
                },
            )],
            audit: vec![],
            violations: vec![Violation::UnauthorizedEntry {
                time: Time(1),
                subject: SubjectId(0),
                location: LocationId(2),
            }],
        };
        a.merge(b.clone());
        a.merge(b);
        assert_eq!(a.len(), 6);
        assert!(!a.is_empty());
    }

    #[test]
    fn watermarks_join_takes_the_maximum_per_class() {
        let a = HistoryWatermarks {
            movements: Time(10),
            audit: Time(0),
            violations: Time(5),
        };
        let b = HistoryWatermarks {
            movements: Time(3),
            audit: Time(7),
            violations: Time(5),
        };
        let j = a.join(b);
        assert_eq!(j.movements, Time(10));
        assert_eq!(j.audit, Time(7));
        assert_eq!(j.violations, Time(5));
        assert_eq!(HistoryWatermarks::default().movements, Time::ZERO);
    }
}
