//! The card-reader baseline LTAM is contrasted with in §1.
//!
//! "The existing systems only enforce access control upon access requests
//! while LTAM monitors the user movement at all times." The
//! [`CardReaderEngine`] implements exactly that weaker contract:
//!
//! * the check happens at the reader (the access request) and the entry
//!   budget is consumed at swipe time;
//! * physical movement is *not* checked against authorizations — tailgaters
//!   enter unnoticed;
//! * exits are neither restricted nor monitored — no exit-window or
//!   overstay detection.
//!
//! Both engines implement [`Enforcement`], so simulations drive them with
//! the same event stream and compare what each catches.

use crate::engine::AccessControlEngine;
use crate::movement::MovementsDb;
use crate::violation::Violation;
use ltam_core::db::{AuthId, AuthorizationDb};
use ltam_core::decision::{check_access, AccessRequest, Decision};
use ltam_core::ledger::UsageLedger;
use ltam_core::model::Authorization;
use ltam_core::subject::SubjectId;
use ltam_graph::{LocationId, LocationModel};
use ltam_time::Time;

/// A uniform interface over enforcement engines, for comparative runs.
pub trait Enforcement {
    /// Process an access request at a door.
    fn request_enter(&mut self, t: Time, subject: SubjectId, location: LocationId) -> Decision;
    /// Observe a physical entry.
    fn observe_enter(&mut self, t: Time, subject: SubjectId, location: LocationId);
    /// Observe a physical exit.
    fn observe_exit(&mut self, t: Time, subject: SubjectId, location: LocationId);
    /// Advance the monitoring clock.
    fn tick(&mut self, now: Time);
    /// Violations detected so far.
    fn detected_violations(&self) -> &[Violation];
}

impl Enforcement for AccessControlEngine {
    fn request_enter(&mut self, t: Time, subject: SubjectId, location: LocationId) -> Decision {
        AccessControlEngine::request_enter(self, t, subject, location)
    }
    fn observe_enter(&mut self, t: Time, subject: SubjectId, location: LocationId) {
        AccessControlEngine::observe_enter(self, t, subject, location);
    }
    fn observe_exit(&mut self, t: Time, subject: SubjectId, location: LocationId) {
        AccessControlEngine::observe_exit(self, t, subject, location);
    }
    fn tick(&mut self, now: Time) {
        AccessControlEngine::tick(self, now);
    }
    fn detected_violations(&self) -> &[Violation] {
        self.violations()
    }
}

/// A request-time-only engine: checks at the reader, blind afterwards.
#[derive(Debug)]
pub struct CardReaderEngine {
    db: AuthorizationDb,
    ledger: UsageLedger,
    movements: MovementsDb,
    /// Intentionally always empty: this system cannot see violations.
    none: Vec<Violation>,
}

impl CardReaderEngine {
    /// Build a baseline engine (the layout is kept only for parity with the
    /// LTAM engine's constructor signature).
    pub fn new(_model: LocationModel) -> CardReaderEngine {
        CardReaderEngine {
            db: AuthorizationDb::new(),
            ledger: UsageLedger::new(),
            movements: MovementsDb::new(),
            none: Vec::new(),
        }
    }

    /// Insert an authorization.
    pub fn add_authorization(&mut self, auth: Authorization) -> AuthId {
        self.db.insert(auth)
    }

    /// The movements log (the readers record swipes, not violations).
    pub fn movements(&self) -> &MovementsDb {
        &self.movements
    }
}

impl Enforcement for CardReaderEngine {
    fn request_enter(&mut self, t: Time, subject: SubjectId, location: LocationId) -> Decision {
        let request = AccessRequest {
            time: t,
            subject,
            location,
        };
        let decision = check_access(&self.db, &self.ledger, &request);
        if let Decision::Granted { auth } = decision {
            // Swipe consumes the entry immediately; nobody verifies who (or
            // how many) actually walk through.
            self.ledger.record_entry(auth);
        }
        decision
    }

    fn observe_enter(&mut self, t: Time, subject: SubjectId, location: LocationId) {
        let _ = self.movements.record_enter(t, subject, location);
    }

    fn observe_exit(&mut self, t: Time, subject: SubjectId, location: LocationId) {
        let _ = self.movements.record_exit(t, subject, location);
    }

    fn tick(&mut self, _now: Time) {}

    fn detected_violations(&self) -> &[Violation] {
        &self.none
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltam_core::model::EntryLimit;
    use ltam_graph::examples::ntu_campus;
    use ltam_time::Interval;

    /// One authorized leader, two tailgaters. LTAM flags both intrusions;
    /// the card-reader baseline flags nothing.
    #[test]
    fn tailgating_differential() {
        let ntu = ntu_campus();
        let cais = ntu.cais;

        let mut ltam = AccessControlEngine::new(ntu.model.clone());
        let leader = ltam.profiles_mut().add_user("Leader", "staff");
        let t1 = ltam.profiles_mut().add_user("Tail1", "?");
        let t2 = ltam.profiles_mut().add_user("Tail2", "?");
        let auth = Authorization::new(
            Interval::lit(0, 100),
            Interval::lit(0, 200),
            leader,
            cais,
            EntryLimit::Finite(1),
        )
        .unwrap();
        ltam.add_authorization(auth);

        let mut reader = CardReaderEngine::new(ntu.model.clone());
        reader.add_authorization(auth);

        for engine in [&mut ltam as &mut dyn Enforcement, &mut reader] {
            assert!(engine.request_enter(Time(10), leader, cais).is_granted());
            engine.observe_enter(Time(10), leader, cais);
            // The door is open; two more walk in on the same swipe.
            engine.observe_enter(Time(10), t1, cais);
            engine.observe_enter(Time(11), t2, cais);
            engine.tick(Time(12));
        }

        assert_eq!(ltam.detected_violations().len(), 2);
        assert!(reader.detected_violations().is_empty());
    }

    #[test]
    fn card_reader_still_enforces_requests() {
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut reader = CardReaderEngine::new(ntu.model);
        let alice = SubjectId(0);
        reader.add_authorization(
            Authorization::new(
                Interval::lit(0, 50),
                Interval::lit(0, 100),
                alice,
                cais,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        assert!(reader.request_enter(Time(10), alice, cais).is_granted());
        // Budget consumed at swipe time.
        assert!(!reader.request_enter(Time(20), alice, cais).is_granted());
        // Outside the window.
        assert!(!reader.request_enter(Time(60), alice, cais).is_granted());
    }

    #[test]
    fn card_reader_cannot_see_overstay() {
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut reader = CardReaderEngine::new(ntu.model);
        let alice = SubjectId(0);
        reader.add_authorization(
            Authorization::new(
                Interval::lit(0, 50),
                Interval::lit(0, 60),
                alice,
                cais,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        reader.request_enter(Time(10), alice, cais);
        reader.observe_enter(Time(10), alice, cais);
        reader.tick(Time(1000)); // way past the exit window
        assert!(reader.detected_violations().is_empty());
        assert_eq!(reader.movements().current_location(alice), Some(cais));
    }
}
