//! A thread-safe handle to the enforcement engine.
//!
//! The architecture of Figure 3 is concurrent by nature: card readers and
//! the tracking infrastructure report movements while administrators run
//! queries and update rules. [`SharedEngine`] wraps the single-threaded
//! [`AccessControlEngine`] in a `parking_lot` read–write lock and wires the
//! alert channel, so sensor threads, an admin console and a security desk
//! can share one engine.

use crate::engine::AccessControlEngine;
use crate::violation::Alert;
use crossbeam::channel::{unbounded, Receiver};
use ltam_core::decision::Decision;
use ltam_core::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_time::Time;
use parking_lot::RwLock;
use std::sync::Arc;

/// Cloneable, thread-safe engine handle.
#[derive(Clone)]
pub struct SharedEngine {
    inner: Arc<RwLock<AccessControlEngine>>,
}

impl SharedEngine {
    /// Wrap an engine and attach an alert channel; returns the handle and
    /// the security desk's receiving end.
    pub fn new(mut engine: AccessControlEngine) -> (SharedEngine, Receiver<Alert>) {
        let (tx, rx) = unbounded();
        engine.set_alert_channel(tx);
        (
            SharedEngine {
                inner: Arc::new(RwLock::new(engine)),
            },
            rx,
        )
    }

    /// Process an access request.
    pub fn request_enter(&self, t: Time, subject: SubjectId, location: LocationId) -> Decision {
        self.inner.write().request_enter(t, subject, location)
    }

    /// Report an observed entry.
    pub fn observe_enter(&self, t: Time, subject: SubjectId, location: LocationId) {
        self.inner.write().observe_enter(t, subject, location);
    }

    /// Report an observed exit.
    pub fn observe_exit(&self, t: Time, subject: SubjectId, location: LocationId) {
        self.inner.write().observe_exit(t, subject, location);
    }

    /// Advance the monitoring clock.
    pub fn tick(&self, now: Time) {
        self.inner.write().tick(now);
    }

    /// Run a query-language query under a read lock.
    pub fn query(
        &self,
        input: &str,
    ) -> Result<crate::query::QueryResult, crate::query::QueryError> {
        self.inner.read().query(input)
    }

    /// Number of violations detected so far.
    pub fn violation_count(&self) -> usize {
        self.inner.read().violations().len()
    }

    /// Run arbitrary read-only logic against the engine.
    pub fn read<R>(&self, f: impl FnOnce(&AccessControlEngine) -> R) -> R {
        f(&self.inner.read())
    }

    /// Run arbitrary mutating logic against the engine (administration).
    pub fn write<R>(&self, f: impl FnOnce(&mut AccessControlEngine) -> R) -> R {
        f(&mut self.inner.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltam_core::model::{Authorization, EntryLimit};
    use ltam_graph::examples::ntu_campus;
    use ltam_time::Interval;
    use std::thread;

    #[test]
    fn concurrent_requests_respect_entry_budget() {
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut engine = AccessControlEngine::new(ntu.model);
        let alice = engine.profiles_mut().add_user("Alice", "researcher");
        engine.add_authorization(
            Authorization::new(
                Interval::lit(0, 1000),
                Interval::lit(0, 2000),
                alice,
                cais,
                EntryLimit::Finite(4),
            )
            .unwrap(),
        );
        let (shared, _rx) = SharedEngine::new(engine);

        // 8 turnstile threads race request+enter+exit cycles. However the
        // races interleave, no more than 4 entries may ever be recorded
        // against the authorization's budget.
        let mut handles = Vec::new();
        for k in 0..8u64 {
            let s = shared.clone();
            handles.push(thread::spawn(move || {
                let t = Time(1 + k);
                if s.request_enter(t, alice, cais).is_granted() {
                    s.observe_enter(t, alice, cais);
                    s.observe_exit(t.saturating_add(1), alice, cais);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        shared.read(|e| {
            assert!(
                e.ledger().total_entries() <= 4,
                "entry budget exceeded: {}",
                e.ledger().total_entries()
            );
        });
    }

    #[test]
    fn alerts_reach_the_security_desk() {
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut engine = AccessControlEngine::new(ntu.model);
        let mallory = engine.profiles_mut().add_user("Mallory", "?");
        let (shared, rx) = SharedEngine::new(engine);
        shared.observe_enter(Time(5), mallory, cais);
        let alert = rx.try_recv().unwrap();
        assert_eq!(alert.violation.subject(), mallory);
        assert_eq!(shared.violation_count(), 1);
    }

    #[test]
    fn queries_run_under_read_lock() {
        let ntu = ntu_campus();
        let mut engine = AccessControlEngine::new(ntu.model);
        engine.profiles_mut().add_user("Alice", "researcher");
        let (shared, _rx) = SharedEngine::new(engine);
        let r = shared.query("WHERE Alice AT 5").unwrap();
        assert_eq!(r, crate::query::QueryResult::Whereabouts(None));
    }
}
