//! The location & movements database (Figure 3).
//!
//! "The location & movements database stores the location layout, as well
//! as users' movements. These data are then used for authorization
//! validation, system status checking, etc."
//!
//! The store is event-sourced: an append-only log of enter/exit events with
//! derived state — current position per subject, live occupancy per
//! location, and a per-subject timeline of *stays* supporting historical
//! queries (`where was s at t`, `who was in l during w`) and the
//! co-location joins behind contact tracing (the paper's SARS motivation).

use ltam_core::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_time::{Bound, Interval, Time};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What a tracked subject did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MovementKind {
    /// The subject entered the location.
    Enter,
    /// The subject left the location.
    Exit,
}

/// One tracked movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MovementEvent {
    /// When the movement was observed.
    pub time: Time,
    /// Who moved.
    pub subject: SubjectId,
    /// Where.
    pub location: LocationId,
    /// Enter or exit.
    pub kind: MovementKind,
}

impl fmt::Display for MovementEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verb = match self.kind {
            MovementKind::Enter => "enters",
            MovementKind::Exit => "leaves",
        };
        write!(
            f,
            "t={}: {} {} {}",
            self.time, self.subject, verb, self.location
        )
    }
}

/// A contiguous presence of a subject in one location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stay {
    /// The location.
    pub location: LocationId,
    /// Entry time.
    pub enter: Time,
    /// Exit time; `None` while the stay is ongoing.
    pub exit: Option<Time>,
}

impl Stay {
    /// The stay as a closed interval (open stays extend to `∞`).
    pub fn interval(&self) -> Interval {
        match self.exit {
            Some(e) => Interval::new(self.enter, Bound::At(e)).expect("exit >= enter"),
            None => Interval::from_start(self.enter),
        }
    }
}

/// A co-location record returned by contact queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contact {
    /// The other subject.
    pub other: SubjectId,
    /// Where the contact happened.
    pub location: LocationId,
    /// The shared presence interval.
    pub overlap: Interval,
}

/// Physically impossible movement sequences are rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MovementError {
    /// Event time precedes the subject's latest event.
    TimeRegression {
        /// The subject's latest recorded time.
        latest: Time,
        /// The offending event time.
        event: Time,
    },
    /// Enter while the subject is already inside some location.
    EnterWhileInside {
        /// Where the subject currently is.
        at: LocationId,
    },
    /// Exit from a location the subject is not in.
    ExitWithoutEntry {
        /// Where the subject actually is, if anywhere.
        at: Option<LocationId>,
    },
}

impl fmt::Display for MovementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MovementError::TimeRegression { latest, event } => {
                write!(f, "event at {event} precedes latest record {latest}")
            }
            MovementError::EnterWhileInside { at } => {
                write!(f, "enter while already inside {at}")
            }
            MovementError::ExitWithoutEntry { at } => match at {
                Some(l) => write!(f, "exit from wrong location (currently in {l})"),
                None => write!(f, "exit while not inside any location"),
            },
        }
    }
}

impl std::error::Error for MovementError {}

/// The movements store.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MovementsDb {
    log: Vec<MovementEvent>,
    timelines: BTreeMap<SubjectId, Vec<Stay>>,
    occupancy: BTreeMap<LocationId, BTreeSet<SubjectId>>,
    latest: BTreeMap<SubjectId, Time>,
}

impl MovementsDb {
    /// An empty store.
    pub fn new() -> MovementsDb {
        MovementsDb::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True if no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// The raw event log, in arrival order.
    pub fn log(&self) -> &[MovementEvent] {
        &self.log
    }

    fn check_time(&self, subject: SubjectId, t: Time) -> Result<(), MovementError> {
        if let Some(&latest) = self.latest.get(&subject) {
            if t < latest {
                return Err(MovementError::TimeRegression { latest, event: t });
            }
        }
        Ok(())
    }

    /// Record that `subject` entered `location` at `t`.
    pub fn record_enter(
        &mut self,
        t: Time,
        subject: SubjectId,
        location: LocationId,
    ) -> Result<(), MovementError> {
        self.check_time(subject, t)?;
        if let Some(at) = self.current_location(subject) {
            return Err(MovementError::EnterWhileInside { at });
        }
        self.log.push(MovementEvent {
            time: t,
            subject,
            location,
            kind: MovementKind::Enter,
        });
        self.timelines.entry(subject).or_default().push(Stay {
            location,
            enter: t,
            exit: None,
        });
        self.occupancy.entry(location).or_default().insert(subject);
        self.latest.insert(subject, t);
        Ok(())
    }

    /// Record that `subject` left `location` at `t`.
    pub fn record_exit(
        &mut self,
        t: Time,
        subject: SubjectId,
        location: LocationId,
    ) -> Result<(), MovementError> {
        self.check_time(subject, t)?;
        let at = self.current_location(subject);
        if at != Some(location) {
            return Err(MovementError::ExitWithoutEntry { at });
        }
        self.log.push(MovementEvent {
            time: t,
            subject,
            location,
            kind: MovementKind::Exit,
        });
        let stay = self
            .timelines
            .get_mut(&subject)
            .and_then(|v| v.last_mut())
            .expect("open stay exists");
        stay.exit = Some(t);
        self.occupancy
            .get_mut(&location)
            .expect("occupancy entry exists")
            .remove(&subject);
        self.latest.insert(subject, t);
        Ok(())
    }

    /// Where the subject currently is, if inside any location.
    pub fn current_location(&self, subject: SubjectId) -> Option<LocationId> {
        self.timelines
            .get(&subject)
            .and_then(|v| v.last())
            .filter(|s| s.exit.is_none())
            .map(|s| s.location)
    }

    /// Subjects currently inside `location`.
    pub fn occupants(&self, location: LocationId) -> Vec<SubjectId> {
        self.occupancy
            .get(&location)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The subject's full stay history.
    pub fn timeline(&self, subject: SubjectId) -> &[Stay] {
        self.timelines
            .get(&subject)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Where the subject was at time `t` (historically).
    pub fn whereabouts(&self, subject: SubjectId, t: Time) -> Option<LocationId> {
        let stays = self.timelines.get(&subject)?;
        let idx = stays.partition_point(|s| s.enter <= t);
        stays[..idx]
            .iter()
            .rev()
            .find(|s| s.interval().contains(t))
            .map(|s| s.location)
    }

    /// Subjects present in `location` at any point of `window`, with their
    /// overlapping presence intervals.
    pub fn present_during(
        &self,
        location: LocationId,
        window: Interval,
    ) -> Vec<(SubjectId, Interval)> {
        let mut out = Vec::new();
        for (&subject, stays) in &self.timelines {
            for s in stays {
                if s.location == location {
                    if let Some(overlap) = s.interval().intersect(window) {
                        out.push((subject, overlap));
                    }
                }
            }
        }
        out.sort_by_key(|&(s, i)| (s, i.start()));
        out
    }

    /// Everyone who was co-located with `subject` during `window` — the
    /// contact-tracing join (§1's SARS scenario).
    pub fn contacts(&self, subject: SubjectId, window: Interval) -> Vec<Contact> {
        let mut out = Vec::new();
        let Some(stays) = self.timelines.get(&subject) else {
            return out;
        };
        for s in stays {
            let Some(exposure) = s.interval().intersect(window) else {
                continue;
            };
            for (other, overlap) in self.present_during(s.location, exposure) {
                if other != subject {
                    out.push(Contact {
                        other,
                        location: s.location,
                        overlap,
                    });
                }
            }
        }
        out.sort_by_key(|c| (c.other, c.overlap.start()));
        out
    }

    /// Subjects with an open (ongoing) stay, with the stay.
    pub fn inside_now(&self) -> Vec<(SubjectId, Stay)> {
        self.timelines
            .iter()
            .filter_map(|(&s, v)| {
                v.last()
                    .filter(|stay| stay.exit.is_none())
                    .map(|stay| (s, *stay))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALICE: SubjectId = SubjectId(0);
    const BOB: SubjectId = SubjectId(1);
    const CAIS: LocationId = LocationId(10);
    const GO: LocationId = LocationId(11);

    #[test]
    fn enter_exit_round_trip() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        assert_eq!(db.current_location(ALICE), Some(CAIS));
        assert_eq!(db.occupants(CAIS), vec![ALICE]);
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        assert_eq!(db.current_location(ALICE), None);
        assert!(db.occupants(CAIS).is_empty());
        assert_eq!(db.len(), 2);
        assert_eq!(
            db.timeline(ALICE),
            &[Stay {
                location: CAIS,
                enter: Time(10),
                exit: Some(Time(20))
            }]
        );
    }

    #[test]
    fn impossible_sequences_rejected() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        assert_eq!(
            db.record_enter(Time(11), ALICE, GO).unwrap_err(),
            MovementError::EnterWhileInside { at: CAIS }
        );
        assert_eq!(
            db.record_exit(Time(12), ALICE, GO).unwrap_err(),
            MovementError::ExitWithoutEntry { at: Some(CAIS) }
        );
        assert_eq!(
            db.record_exit(Time(5), ALICE, CAIS).unwrap_err(),
            MovementError::TimeRegression {
                latest: Time(10),
                event: Time(5)
            }
        );
        db.record_exit(Time(15), ALICE, CAIS).unwrap();
        assert_eq!(
            db.record_exit(Time(16), ALICE, CAIS).unwrap_err(),
            MovementError::ExitWithoutEntry { at: None }
        );
    }

    #[test]
    fn whereabouts_is_historical() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        db.record_enter(Time(30), ALICE, GO).unwrap();
        assert_eq!(db.whereabouts(ALICE, Time(5)), None);
        assert_eq!(db.whereabouts(ALICE, Time(10)), Some(CAIS));
        assert_eq!(db.whereabouts(ALICE, Time(20)), Some(CAIS));
        assert_eq!(db.whereabouts(ALICE, Time(25)), None);
        assert_eq!(db.whereabouts(ALICE, Time(35)), Some(GO)); // open stay
    }

    #[test]
    fn present_during_clips_to_window() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        db.record_enter(Time(15), BOB, CAIS).unwrap();
        let rows = db.present_during(CAIS, Interval::lit(18, 40));
        assert_eq!(
            rows,
            vec![(ALICE, Interval::lit(18, 20)), (BOB, Interval::lit(18, 40)),]
        );
    }

    #[test]
    fn contacts_join_colocated_intervals() {
        let mut db = MovementsDb::new();
        // Alice in CAIS [10,20]; Bob in CAIS [15,30]; Carol in GO [0,50].
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        db.record_enter(Time(15), BOB, CAIS).unwrap();
        db.record_exit(Time(30), BOB, CAIS).unwrap();
        let carol = SubjectId(2);
        db.record_enter(Time(0), carol, GO).unwrap();
        let contacts = db.contacts(ALICE, Interval::lit(0, 100));
        assert_eq!(
            contacts,
            vec![Contact {
                other: BOB,
                location: CAIS,
                overlap: Interval::lit(15, 20)
            }]
        );
        // Contact tracing is symmetric.
        let back = db.contacts(BOB, Interval::lit(0, 100));
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].other, ALICE);
        assert_eq!(back[0].overlap, Interval::lit(15, 20));
    }

    #[test]
    fn inside_now_lists_open_stays() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_enter(Time(12), BOB, GO).unwrap();
        db.record_exit(Time(14), BOB, GO).unwrap();
        let inside = db.inside_now();
        assert_eq!(inside.len(), 1);
        assert_eq!(inside[0].0, ALICE);
    }

    #[test]
    fn reentry_after_exit_allowed() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        db.record_enter(Time(20), ALICE, CAIS).unwrap();
        assert_eq!(db.timeline(ALICE).len(), 2);
        assert_eq!(db.current_location(ALICE), Some(CAIS));
    }

    #[test]
    fn serde_round_trip() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        let json = serde_json::to_string(&db).unwrap();
        let back: MovementsDb = serde_json::from_str(&json).unwrap();
        assert_eq!(back.current_location(ALICE), Some(CAIS));
        assert_eq!(back.len(), 1);
    }
}
