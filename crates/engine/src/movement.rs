//! The location & movements database (Figure 3).
//!
//! "The location & movements database stores the location layout, as well
//! as users' movements. These data are then used for authorization
//! validation, system status checking, etc."
//!
//! The store is event-sourced: an append-only log of enter/exit events with
//! derived state — current position per subject, live occupancy per
//! location, and a per-subject timeline of *stays* supporting historical
//! queries (`where was s at t`, `who was in l during w`) and the
//! co-location joins behind contact tracing (the paper's SARS motivation).

use ltam_core::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_time::{Bound, Interval, Time};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What a tracked subject did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MovementKind {
    /// The subject entered the location.
    Enter,
    /// The subject left the location.
    Exit,
}

/// One tracked movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MovementEvent {
    /// When the movement was observed.
    pub time: Time,
    /// Who moved.
    pub subject: SubjectId,
    /// Where.
    pub location: LocationId,
    /// Enter or exit.
    pub kind: MovementKind,
}

impl fmt::Display for MovementEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verb = match self.kind {
            MovementKind::Enter => "enters",
            MovementKind::Exit => "leaves",
        };
        write!(
            f,
            "t={}: {} {} {}",
            self.time, self.subject, verb, self.location
        )
    }
}

/// A contiguous presence of a subject in one location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stay {
    /// The location.
    pub location: LocationId,
    /// Entry time.
    pub enter: Time,
    /// Exit time; `None` while the stay is ongoing.
    pub exit: Option<Time>,
}

impl Stay {
    /// The stay as a closed interval (open stays extend to `∞`).
    pub fn interval(&self) -> Interval {
        match self.exit {
            Some(e) => Interval::new(self.enter, Bound::At(e)).expect("exit >= enter"),
            None => Interval::from_start(self.enter),
        }
    }
}

/// A co-location record returned by contact queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contact {
    /// The other subject.
    pub other: SubjectId,
    /// Where the contact happened.
    pub location: LocationId,
    /// The shared presence interval.
    pub overlap: Interval,
}

/// Physically impossible movement sequences are rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MovementError {
    /// Event time precedes the subject's latest event.
    TimeRegression {
        /// The subject's latest recorded time.
        latest: Time,
        /// The offending event time.
        event: Time,
    },
    /// Enter while the subject is already inside some location.
    EnterWhileInside {
        /// Where the subject currently is.
        at: LocationId,
    },
    /// Exit from a location the subject is not in.
    ExitWithoutEntry {
        /// Where the subject actually is, if anywhere.
        at: Option<LocationId>,
    },
}

impl fmt::Display for MovementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MovementError::TimeRegression { latest, event } => {
                write!(f, "event at {event} precedes latest record {latest}")
            }
            MovementError::EnterWhileInside { at } => {
                write!(f, "enter while already inside {at}")
            }
            MovementError::ExitWithoutEntry { at } => match at {
                Some(l) => write!(f, "exit from wrong location (currently in {l})"),
                None => write!(f, "exit while not inside any location"),
            },
        }
    }
}

impl std::error::Error for MovementError {}

/// The movements store.
///
/// ## Retention
///
/// History is append-only and unbounded by default. A deployment may
/// bound it by pruning closed stays (and their log events) older than a
/// horizon via [`MovementsDb::apply_prune`]; the **retention watermark**
/// ([`MovementsDb::watermark`]) then records the chronon before which
/// live history may be incomplete. Every query on this type is complete
/// for times at or after the watermark: a stay is pruned only when its
/// *exit* precedes the horizon, so any stay that could contain a
/// post-watermark chronon is retained. Callers asking about earlier
/// times must consult the archive tier (see `ltam-store`) or treat the
/// answer as unknown — never as "was nowhere".
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MovementsDb {
    log: Vec<MovementEvent>,
    timelines: BTreeMap<SubjectId, Vec<Stay>>,
    occupancy: BTreeMap<LocationId, BTreeSet<SubjectId>>,
    latest: BTreeMap<SubjectId, Time>,
    /// Retention watermark; `None` means never pruned (complete from
    /// the epoch). Optional so images from before retention existed
    /// still deserialize.
    watermark: Option<Time>,
    /// Events dropped by pruning (log length plus this is the total
    /// ever recorded). Optional for the same compatibility reason.
    pruned_events: Option<u64>,
}

impl MovementsDb {
    /// An empty store.
    pub fn new() -> MovementsDb {
        MovementsDb::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True if no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// The raw event log, in arrival order.
    pub fn log(&self) -> &[MovementEvent] {
        &self.log
    }

    fn check_time(&self, subject: SubjectId, t: Time) -> Result<(), MovementError> {
        if let Some(&latest) = self.latest.get(&subject) {
            if t < latest {
                return Err(MovementError::TimeRegression { latest, event: t });
            }
        }
        Ok(())
    }

    /// Record that `subject` entered `location` at `t`.
    pub fn record_enter(
        &mut self,
        t: Time,
        subject: SubjectId,
        location: LocationId,
    ) -> Result<(), MovementError> {
        self.check_time(subject, t)?;
        if let Some(at) = self.current_location(subject) {
            return Err(MovementError::EnterWhileInside { at });
        }
        self.log.push(MovementEvent {
            time: t,
            subject,
            location,
            kind: MovementKind::Enter,
        });
        self.timelines.entry(subject).or_default().push(Stay {
            location,
            enter: t,
            exit: None,
        });
        self.occupancy.entry(location).or_default().insert(subject);
        self.latest.insert(subject, t);
        Ok(())
    }

    /// Record that `subject` left `location` at `t`.
    pub fn record_exit(
        &mut self,
        t: Time,
        subject: SubjectId,
        location: LocationId,
    ) -> Result<(), MovementError> {
        self.check_time(subject, t)?;
        let at = self.current_location(subject);
        if at != Some(location) {
            return Err(MovementError::ExitWithoutEntry { at });
        }
        self.log.push(MovementEvent {
            time: t,
            subject,
            location,
            kind: MovementKind::Exit,
        });
        let stay = self
            .timelines
            .get_mut(&subject)
            .and_then(|v| v.last_mut())
            .expect("open stay exists");
        stay.exit = Some(t);
        self.occupancy
            .get_mut(&location)
            .expect("occupancy entry exists")
            .remove(&subject);
        self.latest.insert(subject, t);
        Ok(())
    }

    /// Where the subject currently is, if inside any location.
    pub fn current_location(&self, subject: SubjectId) -> Option<LocationId> {
        self.timelines
            .get(&subject)
            .and_then(|v| v.last())
            .filter(|s| s.exit.is_none())
            .map(|s| s.location)
    }

    /// Subjects currently inside `location`.
    pub fn occupants(&self, location: LocationId) -> Vec<SubjectId> {
        self.occupancy
            .get(&location)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The subject's full stay history.
    pub fn timeline(&self, subject: SubjectId) -> &[Stay] {
        self.timelines
            .get(&subject)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Where the subject was at time `t` (historically).
    pub fn whereabouts(&self, subject: SubjectId, t: Time) -> Option<LocationId> {
        let stays = self.timelines.get(&subject)?;
        let idx = stays.partition_point(|s| s.enter <= t);
        stays[..idx]
            .iter()
            .rev()
            .find(|s| s.interval().contains(t))
            .map(|s| s.location)
    }

    /// Subjects present in `location` at any point of `window`, with their
    /// overlapping presence intervals.
    pub fn present_during(
        &self,
        location: LocationId,
        window: Interval,
    ) -> Vec<(SubjectId, Interval)> {
        let mut out = Vec::new();
        for (&subject, stays) in &self.timelines {
            for s in stays {
                if s.location == location {
                    if let Some(overlap) = s.interval().intersect(window) {
                        out.push((subject, overlap));
                    }
                }
            }
        }
        out.sort_by_key(|&(s, i)| (s, i.start()));
        out
    }

    /// Everyone who was co-located with `subject` during `window` — the
    /// contact-tracing join (§1's SARS scenario).
    pub fn contacts(&self, subject: SubjectId, window: Interval) -> Vec<Contact> {
        let mut out = Vec::new();
        let Some(stays) = self.timelines.get(&subject) else {
            return out;
        };
        for s in stays {
            let Some(exposure) = s.interval().intersect(window) else {
                continue;
            };
            for (other, overlap) in self.present_during(s.location, exposure) {
                if other != subject {
                    out.push(Contact {
                        other,
                        location: s.location,
                        overlap,
                    });
                }
            }
        }
        out.sort_by_key(|c| (c.other, c.overlap.start()));
        out
    }

    /// Subjects with an open (ongoing) stay, with the stay.
    pub fn inside_now(&self) -> Vec<(SubjectId, Stay)> {
        self.timelines
            .iter()
            .filter_map(|(&s, v)| {
                v.last()
                    .filter(|stay| stay.exit.is_none())
                    .map(|stay| (s, *stay))
            })
            .collect()
    }

    // --- retention ----------------------------------------------------------

    /// The retention watermark: live history is complete from this
    /// chronon onward; earlier history may have been pruned. `Time::ZERO`
    /// for a never-pruned store.
    pub fn watermark(&self) -> Time {
        self.watermark.unwrap_or(Time::ZERO)
    }

    /// True if queries at `t` are answerable completely from live state.
    pub fn covers(&self, t: Time) -> bool {
        t >= self.watermark()
    }

    /// Events dropped by pruning since the store was created.
    pub fn pruned_events(&self) -> u64 {
        self.pruned_events.unwrap_or(0)
    }

    /// Events ever recorded: the live log plus everything pruned.
    pub fn total_recorded(&self) -> u64 {
        self.log.len() as u64 + self.pruned_events()
    }

    /// The number of leading stays of `timeline` that are prunable at
    /// `horizon`: stays are chronological and exits nondecreasing, so
    /// the prunable set ("closed with `exit < horizon`") is always a
    /// prefix — an open stay, or one a query at `horizon` could still
    /// see, is never prunable.
    fn prunable_prefix(timeline: &[Stay], horizon: Time) -> usize {
        timeline.partition_point(|s| matches!(s.exit, Some(e) if e < horizon))
    }

    /// The history that [`MovementsDb::apply_prune`] at `horizon` would
    /// drop, without mutating anything: the pruned stays (with their
    /// subjects) and the log events backing them, both in stored order.
    /// A durable deployment archives these *before* pruning.
    pub fn collect_prunable(&self, horizon: Time) -> (Vec<MovementEvent>, Vec<(SubjectId, Stay)>) {
        let mut stays = Vec::new();
        // Each pruned stay is closed, i.e. exactly one Enter and one
        // Exit event — and they are the *first* log events of that
        // subject, because per-subject events are chronological.
        let mut remaining: BTreeMap<SubjectId, usize> = BTreeMap::new();
        for (&subject, timeline) in &self.timelines {
            let k = Self::prunable_prefix(timeline, horizon);
            if k > 0 {
                stays.extend(timeline[..k].iter().map(|&s| (subject, s)));
                remaining.insert(subject, 2 * k);
            }
        }
        let mut events = Vec::new();
        for e in &self.log {
            if let Some(r) = remaining.get_mut(&e.subject) {
                if *r > 0 {
                    events.push(*e);
                    *r -= 1;
                }
            }
        }
        (events, stays)
    }

    /// Drop all history prunable at `horizon` (see
    /// [`MovementsDb::collect_prunable`]) and advance the watermark to
    /// at least `horizon`. Returns the number of log events dropped.
    ///
    /// Enforcement state is untouched: open stays, current occupancy
    /// and the per-subject latest-time map (which guards against time
    /// regression) all survive, so pruning is invisible to
    /// `record_enter`/`record_exit`.
    pub fn apply_prune(&mut self, horizon: Time) -> u64 {
        let mut remaining: BTreeMap<SubjectId, usize> = BTreeMap::new();
        for (&subject, timeline) in &mut self.timelines {
            let k = Self::prunable_prefix(timeline, horizon);
            if k > 0 {
                timeline.drain(..k);
                remaining.insert(subject, 2 * k);
            }
        }
        self.timelines.retain(|_, t| !t.is_empty());
        let before = self.log.len();
        let mut kept = Vec::with_capacity(before);
        for e in self.log.drain(..) {
            match remaining.get_mut(&e.subject) {
                Some(r) if *r > 0 => *r -= 1,
                _ => kept.push(e),
            }
        }
        self.log = kept;
        let dropped = (before - self.log.len()) as u64;
        self.pruned_events = Some(self.pruned_events() + dropped);
        self.watermark = Some(self.watermark().max(horizon));
        dropped
    }

    // --- persistence / redistribution support -------------------------------

    /// The per-subject latest recorded times (the time-regression
    /// guard). Exposed so shard redistribution can preserve the guard
    /// for subjects whose events were all pruned.
    pub fn latest_times(&self) -> impl Iterator<Item = (SubjectId, Time)> + '_ {
        self.latest.iter().map(|(&s, &t)| (s, t))
    }

    /// Raise `subject`'s latest-time guard to at least `t`
    /// (redistribution import; never lowers it).
    pub fn observe_latest(&mut self, subject: SubjectId, t: Time) {
        let entry = self.latest.entry(subject).or_insert(t);
        *entry = (*entry).max(t);
    }

    /// Raise the retention watermark to at least `w` without pruning
    /// (redistribution import: the target store starts from an
    /// already-pruned log).
    pub fn set_watermark(&mut self, w: Time) {
        if w > self.watermark() {
            self.watermark = Some(w);
        }
    }

    /// Add `n` to the pruned-events counter (redistribution import).
    pub fn add_pruned_events(&mut self, n: u64) {
        if n > 0 {
            self.pruned_events = Some(self.pruned_events() + n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALICE: SubjectId = SubjectId(0);
    const BOB: SubjectId = SubjectId(1);
    const CAIS: LocationId = LocationId(10);
    const GO: LocationId = LocationId(11);

    #[test]
    fn enter_exit_round_trip() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        assert_eq!(db.current_location(ALICE), Some(CAIS));
        assert_eq!(db.occupants(CAIS), vec![ALICE]);
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        assert_eq!(db.current_location(ALICE), None);
        assert!(db.occupants(CAIS).is_empty());
        assert_eq!(db.len(), 2);
        assert_eq!(
            db.timeline(ALICE),
            &[Stay {
                location: CAIS,
                enter: Time(10),
                exit: Some(Time(20))
            }]
        );
    }

    #[test]
    fn impossible_sequences_rejected() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        assert_eq!(
            db.record_enter(Time(11), ALICE, GO).unwrap_err(),
            MovementError::EnterWhileInside { at: CAIS }
        );
        assert_eq!(
            db.record_exit(Time(12), ALICE, GO).unwrap_err(),
            MovementError::ExitWithoutEntry { at: Some(CAIS) }
        );
        assert_eq!(
            db.record_exit(Time(5), ALICE, CAIS).unwrap_err(),
            MovementError::TimeRegression {
                latest: Time(10),
                event: Time(5)
            }
        );
        db.record_exit(Time(15), ALICE, CAIS).unwrap();
        assert_eq!(
            db.record_exit(Time(16), ALICE, CAIS).unwrap_err(),
            MovementError::ExitWithoutEntry { at: None }
        );
    }

    #[test]
    fn whereabouts_is_historical() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        db.record_enter(Time(30), ALICE, GO).unwrap();
        assert_eq!(db.whereabouts(ALICE, Time(5)), None);
        assert_eq!(db.whereabouts(ALICE, Time(10)), Some(CAIS));
        assert_eq!(db.whereabouts(ALICE, Time(20)), Some(CAIS));
        assert_eq!(db.whereabouts(ALICE, Time(25)), None);
        assert_eq!(db.whereabouts(ALICE, Time(35)), Some(GO)); // open stay
    }

    #[test]
    fn present_during_clips_to_window() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        db.record_enter(Time(15), BOB, CAIS).unwrap();
        let rows = db.present_during(CAIS, Interval::lit(18, 40));
        assert_eq!(
            rows,
            vec![(ALICE, Interval::lit(18, 20)), (BOB, Interval::lit(18, 40)),]
        );
    }

    #[test]
    fn contacts_join_colocated_intervals() {
        let mut db = MovementsDb::new();
        // Alice in CAIS [10,20]; Bob in CAIS [15,30]; Carol in GO [0,50].
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        db.record_enter(Time(15), BOB, CAIS).unwrap();
        db.record_exit(Time(30), BOB, CAIS).unwrap();
        let carol = SubjectId(2);
        db.record_enter(Time(0), carol, GO).unwrap();
        let contacts = db.contacts(ALICE, Interval::lit(0, 100));
        assert_eq!(
            contacts,
            vec![Contact {
                other: BOB,
                location: CAIS,
                overlap: Interval::lit(15, 20)
            }]
        );
        // Contact tracing is symmetric.
        let back = db.contacts(BOB, Interval::lit(0, 100));
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].other, ALICE);
        assert_eq!(back[0].overlap, Interval::lit(15, 20));
    }

    #[test]
    fn inside_now_lists_open_stays() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_enter(Time(12), BOB, GO).unwrap();
        db.record_exit(Time(14), BOB, GO).unwrap();
        let inside = db.inside_now();
        assert_eq!(inside.len(), 1);
        assert_eq!(inside[0].0, ALICE);
    }

    #[test]
    fn reentry_after_exit_allowed() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        db.record_enter(Time(20), ALICE, CAIS).unwrap();
        assert_eq!(db.timeline(ALICE).len(), 2);
        assert_eq!(db.current_location(ALICE), Some(CAIS));
    }

    #[test]
    fn serde_round_trip() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        let json = serde_json::to_string(&db).unwrap();
        let back: MovementsDb = serde_json::from_str(&json).unwrap();
        assert_eq!(back.current_location(ALICE), Some(CAIS));
        assert_eq!(back.len(), 1);
    }

    /// Alice: two closed stays + one open; Bob: one closed stay.
    fn pruneable_db() -> MovementsDb {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        db.record_enter(Time(15), BOB, GO).unwrap();
        db.record_exit(Time(25), BOB, GO).unwrap();
        db.record_enter(Time(30), ALICE, GO).unwrap();
        db.record_exit(Time(40), ALICE, GO).unwrap();
        db.record_enter(Time(50), ALICE, CAIS).unwrap();
        db
    }

    #[test]
    fn prune_drops_only_closed_stays_before_the_horizon() {
        let mut db = pruneable_db();
        let (events, stays) = db.collect_prunable(Time(30));
        assert_eq!(stays.len(), 2, "{stays:?}"); // Alice [10,20] + Bob [15,25]
        assert_eq!(events.len(), 4);
        let dropped = db.apply_prune(Time(30));
        assert_eq!(dropped, 4);
        assert_eq!(db.watermark(), Time(30));
        assert_eq!(db.pruned_events(), 4);
        assert_eq!(db.len(), 3); // Alice's [30,40] + open [50, ..]
        assert_eq!(db.total_recorded(), 7);
        // Post-watermark queries stay complete.
        assert_eq!(db.whereabouts(ALICE, Time(35)), Some(GO));
        assert_eq!(db.whereabouts(ALICE, Time(55)), Some(CAIS));
        assert_eq!(db.current_location(ALICE), Some(CAIS));
        // Bob's whole timeline is gone; the subject key is dropped too.
        assert!(db.timeline(BOB).is_empty());
        assert!(!db.covers(Time(29)));
        assert!(db.covers(Time(30)));
    }

    #[test]
    fn prune_retains_a_stay_straddling_the_horizon() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_exit(Time(40), ALICE, CAIS).unwrap();
        // Horizon falls inside the stay: exit (40) is not before 30, so
        // the stay survives and whereabouts below the watermark that hit
        // it still answer from live state.
        assert_eq!(db.apply_prune(Time(30)), 0);
        assert_eq!(db.whereabouts(ALICE, Time(20)), Some(CAIS));
    }

    #[test]
    fn prune_handles_same_chronon_reentry() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        db.record_enter(Time(20), ALICE, GO).unwrap();
        // Horizon 21: the first stay (exit 20 < 21) goes; the reentry at
        // the same chronon stays — event-count bookkeeping, not time
        // filtering, separates the Exit@20 from the Enter@20.
        assert_eq!(db.apply_prune(Time(21)), 2);
        assert_eq!(db.timeline(ALICE).len(), 1);
        assert_eq!(db.log()[0].kind, MovementKind::Enter);
        assert_eq!(db.log()[0].time, Time(20));
        assert_eq!(db.current_location(ALICE), Some(GO));
    }

    #[test]
    fn prune_preserves_the_time_regression_guard() {
        let mut db = MovementsDb::new();
        db.record_enter(Time(10), ALICE, CAIS).unwrap();
        db.record_exit(Time(20), ALICE, CAIS).unwrap();
        db.apply_prune(Time(100));
        assert!(db.timeline(ALICE).is_empty());
        // Alice's history is gone but her clock is not: a regressed
        // event is still rejected, exactly as without pruning.
        assert_eq!(
            db.record_enter(Time(5), ALICE, CAIS).unwrap_err(),
            MovementError::TimeRegression {
                latest: Time(20),
                event: Time(5)
            }
        );
        db.record_enter(Time(30), ALICE, CAIS).unwrap();
    }

    #[test]
    fn prune_is_idempotent_and_watermark_monotone() {
        let mut db = pruneable_db();
        db.apply_prune(Time(30));
        let snapshot = db.clone();
        assert_eq!(db.apply_prune(Time(30)), 0);
        assert_eq!(db, snapshot);
        // A lower horizon never lowers the watermark.
        db.apply_prune(Time(5));
        assert_eq!(db.watermark(), Time(30));
    }

    #[test]
    fn collect_prunable_matches_apply_prune() {
        let db = pruneable_db();
        let (events, stays) = db.collect_prunable(Time(30));
        let mut pruned = db.clone();
        pruned.apply_prune(Time(30));
        // Retained log + pruned events = the original log (order within
        // each side preserved).
        assert_eq!(events.len() + pruned.len(), db.len());
        for e in &events {
            assert!(db.log().contains(e));
            assert!(!pruned.log().contains(e));
        }
        for (s, stay) in &stays {
            assert!(!pruned.timeline(*s).contains(stay));
        }
    }

    #[test]
    fn pruned_db_serde_round_trips_watermark() {
        let mut db = pruneable_db();
        db.apply_prune(Time(30));
        let json = serde_json::to_string(&db).unwrap();
        let back: MovementsDb = serde_json::from_str(&json).unwrap();
        assert_eq!(back, db);
        assert_eq!(back.watermark(), Time(30));
        assert_eq!(back.pruned_events(), 4);
    }

    #[test]
    fn latest_times_and_observe_latest_support_redistribution() {
        let mut db = pruneable_db();
        db.apply_prune(Time(100));
        let latest: std::collections::BTreeMap<_, _> = db.latest_times().collect();
        assert_eq!(latest[&BOB], Time(25));
        let mut fresh = MovementsDb::new();
        for (s, t) in db.latest_times() {
            fresh.observe_latest(s, t);
        }
        fresh.observe_latest(BOB, Time(1)); // never lowers
        assert!(matches!(
            fresh.record_enter(Time(24), BOB, GO),
            Err(MovementError::TimeRegression { .. })
        ));
        fresh.set_watermark(Time(100));
        fresh.set_watermark(Time(50)); // never lowers
        assert_eq!(fresh.watermark(), Time(100));
        fresh.add_pruned_events(4);
        assert_eq!(fresh.total_recorded(), 4);
    }
}
