//! Per-subject enforcement state, factored out of the engine so it can be
//! sharded.
//!
//! LTAM's data model splits cleanly in two:
//!
//! * **read-mostly policy** — the location model, effective graph,
//!   authorization database and prohibitions. Admins change these rarely;
//!   every card swipe reads them.
//! * **per-subject mutable state** — pending grants, active stays, usage
//!   counters, movement timelines and violation logs. Every sensor event
//!   writes these, but only ever for *one* subject.
//!
//! [`ShardState`] owns the second half. The single-threaded
//! [`AccessControlEngine`](crate::engine::AccessControlEngine) holds
//! exactly one `ShardState`; the concurrent
//! [`ShardedEngine`](crate::batch::ShardedEngine) holds `N` of them,
//! partitioned by `SubjectId` hash over one shared policy core. Both run
//! the *same* enforcement code below, so the sharded deployment detects
//! exactly the violations the paper's single engine would.
//!
//! Enforcement methods take a [`PolicyView`] — immutable borrows of the
//! policy stores plus the engine tunables — and return the violations
//! they raise; the caller is responsible for turning those into
//! security-desk alerts.

use crate::engine::{AuditRecord, EngineConfig};
use crate::movement::MovementsDb;
use crate::retention::{HistoryWatermarks, PrunedHistory};
use crate::violation::Violation;
use ltam_core::db::{AuthId, AuthorizationDb};
use ltam_core::decision::{AccessRequest, Decision, DecisionContext};
use ltam_core::ledger::UsageLedger;
use ltam_core::prohibition::ProhibitionDb;
use ltam_core::retention::RetentionPolicy;
use ltam_core::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_situate::{judge, IncidentId, SituationEffect, SituationPolicy};
use ltam_time::{Bound, Time};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Immutable borrows of everything a shard needs to decide and monitor:
/// the read-mostly policy stores plus the enforcement tunables.
///
/// Build one per event batch (or per call) from whatever owns the policy —
/// the single engine's fields, or an epoch of the sharded engine's policy
/// core.
#[derive(Debug, Clone, Copy)]
pub struct PolicyView<'a> {
    /// The authorization database.
    pub db: &'a AuthorizationDb,
    /// Denial-takes-precedence prohibitions.
    pub prohibitions: &'a ProhibitionDb,
    /// Enforcement tunables (grant TTL).
    pub config: EngineConfig,
    /// The situation overlay (mode, responders, pins, workflow
    /// constraints) the decision path judges under.
    pub situation: &'a SituationPolicy,
}

impl<'a> PolicyView<'a> {
    /// The core decision context this view wraps.
    pub fn decision_context(&self) -> DecisionContext<'a> {
        DecisionContext {
            db: self.db,
            prohibitions: self.prohibitions,
        }
    }
}

/// What authorized a pending grant: a database authorization, or an
/// emergency override attributable to an incident declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GrantKind {
    /// Granted by this database authorization (Definition 7).
    Auth(AuthId),
    /// Granted by the emergency declared under this incident; valid at
    /// the door only while that emergency is still live.
    Override(IncidentId),
}

/// A granted access request waiting for the physical entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingGrant {
    pub(crate) location: LocationId,
    pub(crate) grant: GrantKind,
    pub(crate) granted_at: Time,
}

/// The per-subject mutable half of the enforcement engine.
///
/// All state here is keyed by subject (pending grants, active stays,
/// overstay flags, movement timelines) or owned by exactly one subject's
/// authorizations (ledger counters — an [`AuthId`] belongs to one
/// subject), so partitioning subjects across `ShardState`s never splits
/// an invariant across shards.
#[derive(Debug, Default)]
pub struct ShardState {
    pub(crate) ledger: UsageLedger,
    pub(crate) movements: MovementsDb,
    pub(crate) pending: HashMap<SubjectId, PendingGrant>,
    pub(crate) active_auth: HashMap<SubjectId, (LocationId, AuthId)>,
    pub(crate) overstay_alerted: HashSet<SubjectId>,
    pub(crate) violations: Vec<Violation>,
    pub(crate) audit: Vec<AuditRecord>,
    /// Audit records are complete from this chronon (earlier ones pruned).
    pub(crate) audit_from: Time,
    /// Audit records dropped by retention.
    pub(crate) audit_pruned: u64,
    /// Violations are complete from this chronon (earlier ones pruned).
    pub(crate) violations_from: Time,
    /// Violations dropped by retention — still counted toward the alert
    /// sequence, so restart alerts stay monotone after pruning.
    pub(crate) violations_pruned: u64,
}

impl ShardState {
    /// An empty shard.
    pub fn new() -> ShardState {
        ShardState::default()
    }

    // --- read access ------------------------------------------------------

    /// This shard's slice of the usage ledger.
    pub fn ledger(&self) -> &UsageLedger {
        &self.ledger
    }

    /// This shard's movements database.
    pub fn movements(&self) -> &MovementsDb {
        &self.movements
    }

    /// Violations detected by this shard, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The audited request decisions taken by this shard.
    pub fn audit(&self) -> &[AuditRecord] {
        &self.audit
    }

    /// The authorizations currently governing open stays on this shard.
    pub fn active_stays(&self) -> Vec<(SubjectId, LocationId, AuthId)> {
        self.active_auth
            .iter()
            .map(|(&s, &(l, a))| (s, l, a))
            .collect()
    }

    /// From which chronon each record class is complete on this shard.
    pub fn watermarks(&self) -> HistoryWatermarks {
        HistoryWatermarks {
            movements: self.movements.watermark(),
            audit: self.audit_from,
            violations: self.violations_from,
        }
    }

    /// Violations dropped by retention (the live list plus this is the
    /// total ever detected; the alert sequence counts both).
    pub fn violations_pruned(&self) -> u64 {
        self.violations_pruned
    }

    /// Audit records dropped by retention.
    pub fn audit_pruned(&self) -> u64 {
        self.audit_pruned
    }

    // --- retention ----------------------------------------------------------

    /// The records a retention run at `horizon` would remove, without
    /// mutating anything (a durable deployment archives these first).
    pub fn collect_prunable(&self, policy: &RetentionPolicy, horizon: Time) -> PrunedHistory {
        let mut out = PrunedHistory::default();
        if policy.movements {
            let (events, stays) = self.movements.collect_prunable(horizon);
            out.events = events;
            out.stays = stays;
        }
        if policy.audit {
            out.audit = self
                .audit
                .iter()
                .filter(|r| r.request.time < horizon)
                .copied()
                .collect();
        }
        if policy.violations {
            out.violations = self
                .violations
                .iter()
                .filter(|v| v.time() < horizon)
                .copied()
                .collect();
        }
        out
    }

    /// Drop every record of an enabled class older than `horizon` and
    /// advance that class's watermark. Enforcement state — ledger,
    /// pending grants, active stays, overstay flags, the movement
    /// time-regression guard — is untouched, so pruning never changes
    /// which violations future events raise.
    pub fn apply_retention(&mut self, policy: &RetentionPolicy, horizon: Time) {
        if policy.movements {
            self.movements.apply_prune(horizon);
        }
        if policy.audit {
            let before = self.audit.len();
            self.audit.retain(|r| r.request.time >= horizon);
            self.audit_pruned += (before - self.audit.len()) as u64;
            self.audit_from = self.audit_from.max(horizon);
        }
        if policy.violations {
            let before = self.violations.len();
            self.violations.retain(|v| v.time() >= horizon);
            self.violations_pruned += (before - self.violations.len()) as u64;
            self.violations_from = self.violations_from.max(horizon);
        }
    }

    /// Collect-then-drop in one call (the volatile path; the caller
    /// decides whether the returned records are archived or discarded).
    pub fn prune(&mut self, policy: &RetentionPolicy, horizon: Time) -> PrunedHistory {
        let pruned = self.collect_prunable(policy, horizon);
        self.apply_retention(policy, horizon);
        pruned
    }

    // --- enforcement ------------------------------------------------------

    /// Process an access request (Definition 6), judged under the
    /// situation overlay. A grant is remembered so the subsequent
    /// physical entry is recognized as authorized.
    pub fn request_enter(
        &mut self,
        policy: &PolicyView<'_>,
        t: Time,
        subject: SubjectId,
        location: LocationId,
    ) -> Decision {
        let request = AccessRequest {
            time: t,
            subject,
            location,
        };
        let base = policy.decision_context().decide(&self.ledger, &request);
        let decision = if policy.situation.is_inert() {
            base
        } else {
            // "Entered `l` at or after `since`" against this subject's
            // own timeline — all the history a workflow constraint may
            // consult, and all of it lives on this shard.
            let entered = |l: LocationId, since: Time| {
                self.movements
                    .timeline(subject)
                    .iter()
                    .any(|s| s.location == l && s.enter >= since && s.enter <= t)
            };
            let (decision, effect) = judge(policy.situation, subject, location, t, base, &entered);
            count_effect(effect);
            decision
        };
        match decision {
            Decision::Granted { auth } => {
                self.pending.insert(
                    subject,
                    PendingGrant {
                        location,
                        grant: GrantKind::Auth(auth),
                        granted_at: t,
                    },
                );
            }
            Decision::GrantedOverride { incident } => {
                self.pending.insert(
                    subject,
                    PendingGrant {
                        location,
                        grant: GrantKind::Override(IncidentId(incident)),
                        granted_at: t,
                    },
                );
            }
            Decision::Denied { .. } => {}
        }
        self.audit.push(AuditRecord { request, decision });
        decision
    }

    fn record(&mut self, violation: Violation) -> Violation {
        self.violations.push(violation);
        violation
    }

    fn valid_pending(
        &self,
        policy: &PolicyView<'_>,
        subject: SubjectId,
        location: LocationId,
        t: Time,
    ) -> Option<GrantKind> {
        let g = self.pending.get(&subject)?;
        if g.location != location {
            return None;
        }
        if t < g.granted_at || t.get() - g.granted_at.get() > policy.config.grant_ttl {
            return None;
        }
        match g.grant {
            GrantKind::Auth(auth_id) => {
                let auth = policy.db.get(auth_id)?;
                if !auth.admits_entry_at(t) {
                    return None;
                }
                // A prohibition issued between the grant and the physical
                // entry voids the grant.
                if policy.decision_context().blocked(subject, location, t) {
                    return None;
                }
                // A lockdown declared between the grant and the entry
                // voids unpinned grants at the door.
                if !policy.situation.admits_entry_under(auth_id, t) {
                    return None;
                }
                Some(g.grant)
            }
            // An override grant dies with its emergency: if the
            // declaration expired (or was replaced) before the subject
            // reached the door, the entry is unauthorized again.
            GrantKind::Override(incident) => policy
                .situation
                .override_live(incident, t)
                .then_some(g.grant),
        }
    }

    /// Process an observed entry (from the tracking infrastructure).
    ///
    /// Returns the violation raised, if any; the violation is already
    /// recorded in [`ShardState::violations`] — the caller only needs to
    /// forward it as an alert.
    pub fn observe_enter(
        &mut self,
        policy: &PolicyView<'_>,
        t: Time,
        subject: SubjectId,
        location: LocationId,
    ) -> Option<Violation> {
        if self.movements.record_enter(t, subject, location).is_err() {
            return Some(self.record(Violation::InconsistentMovement {
                time: t,
                subject,
                location,
            }));
        }
        match self.valid_pending(policy, subject, location, t) {
            Some(GrantKind::Auth(auth)) => {
                // Definition 7's count: the subject "has entered l" once more.
                self.ledger.record_entry(auth);
                self.pending.remove(&subject);
                self.active_auth.insert(subject, (location, auth));
                self.overstay_alerted.remove(&subject);
                None
            }
            Some(GrantKind::Override(_)) => {
                // An override entry consumes no authorization budget and
                // has no exit window to monitor: the stay is recorded in
                // the movement history (above) but not tracked as an
                // authorized stay.
                self.pending.remove(&subject);
                self.overstay_alerted.remove(&subject);
                None
            }
            None => Some(self.record(Violation::UnauthorizedEntry {
                time: t,
                subject,
                location,
            })),
        }
    }

    /// Process an observed exit. Returns the violation raised, if any.
    pub fn observe_exit(
        &mut self,
        policy: &PolicyView<'_>,
        t: Time,
        subject: SubjectId,
        location: LocationId,
    ) -> Option<Violation> {
        if self.movements.record_exit(t, subject, location).is_err() {
            return Some(self.record(Violation::InconsistentMovement {
                time: t,
                subject,
                location,
            }));
        }
        let mut raised = None;
        if let Some((l, auth_id)) = self.active_auth.remove(&subject) {
            if l == location {
                if let Some(auth) = policy.db.get(auth_id) {
                    if !auth.admits_exit_at(t) {
                        raised = Some(self.record(Violation::ExitOutsideWindow {
                            time: t,
                            subject,
                            location,
                            auth: auth_id,
                        }));
                    }
                }
            }
        }
        self.overstay_alerted.remove(&subject);
        raised
    }

    /// Advance the monitoring clock: raise an overstay alert (once per
    /// stay) for every subject on this shard still inside after their exit
    /// window closed.
    pub fn tick(&mut self, policy: &PolicyView<'_>, now: Time) -> Vec<Violation> {
        let mut raised = Vec::new();
        let candidates: Vec<(SubjectId, LocationId, AuthId)> = self
            .active_auth
            .iter()
            .filter(|(s, _)| !self.overstay_alerted.contains(*s))
            .map(|(&s, &(l, a))| (s, l, a))
            .collect();
        for (subject, location, auth_id) in candidates {
            let Some(auth) = policy.db.get(auth_id) else {
                continue;
            };
            if let Bound::At(end) = auth.exit_window().end() {
                if now > end {
                    raised.push(self.record(Violation::Overstay {
                        detected_at: now,
                        subject,
                        location,
                        auth: auth_id,
                    }));
                    self.overstay_alerted.insert(subject);
                }
            }
        }
        raised
    }

    // --- administration hooks ---------------------------------------------

    /// An authorization was revoked: forget its usage counters, lapse any
    /// pending grant issued under it, and release active stays it was
    /// governing. (Stays under a revoked id were already unmonitorable —
    /// exit/overstay checks skip ids absent from the database — but the
    /// reference must not survive into a persistence image, where a later
    /// reuse of the id would make it resolve to the wrong authorization.)
    pub fn invalidate_auth(&mut self, id: AuthId) {
        self.ledger.clear(id);
        self.pending.retain(|_, g| g.grant != GrantKind::Auth(id));
        self.active_auth.retain(|_, &mut (_, a)| a != id);
    }

    // --- persistence hooks --------------------------------------------------

    /// Export the complete mutable state as a serializable image.
    ///
    /// Unlike [`EngineSnapshot`](crate::snapshot::EngineSnapshot) (which
    /// deliberately drops pending grants on operator-driven backups), the
    /// image is **exhaustive**: crash recovery must reproduce the exact
    /// enforcement state, or replaying the WAL tail after a restart would
    /// raise violations an uninterrupted run never saw. Collections are
    /// sorted so equal states export byte-identical images.
    pub fn image(&self) -> ShardStateImage {
        let mut pending: Vec<PendingImage> = self
            .pending
            .iter()
            .map(|(&subject, g)| {
                let (auth, incident) = match g.grant {
                    GrantKind::Auth(a) => (a, None),
                    // Override grants have no authorization; the auth
                    // field is a placeholder old readers would dangle
                    // on harmlessly (no live id is ever u64::MAX).
                    GrantKind::Override(i) => (AuthId(u64::MAX), Some(i.0)),
                };
                PendingImage {
                    subject,
                    location: g.location,
                    auth,
                    incident,
                    granted_at: g.granted_at,
                }
            })
            .collect();
        pending.sort_by_key(|p| p.subject);
        let mut active: Vec<(SubjectId, LocationId, AuthId)> = self
            .active_auth
            .iter()
            .map(|(&s, &(l, a))| (s, l, a))
            .collect();
        active.sort_by_key(|&(s, _, _)| s);
        let mut overstay_alerted: Vec<SubjectId> = self.overstay_alerted.iter().copied().collect();
        overstay_alerted.sort();
        ShardStateImage {
            ledger: self.ledger.clone(),
            movements: self.movements.clone(),
            pending,
            active,
            overstay_alerted,
            violations: self.violations.clone(),
            audit: self.audit.clone(),
            audit_from: Some(self.audit_from),
            audit_pruned: Some(self.audit_pruned),
            violations_from: Some(self.violations_from),
            violations_pruned: Some(self.violations_pruned),
        }
    }

    /// Rebuild a shard from an exported image (inverse of
    /// [`ShardState::image`]).
    pub fn from_image(image: ShardStateImage) -> ShardState {
        ShardState {
            ledger: image.ledger,
            movements: image.movements,
            pending: image
                .pending
                .into_iter()
                .map(|p| {
                    let grant = match p.incident {
                        Some(i) => GrantKind::Override(IncidentId(i)),
                        None => GrantKind::Auth(p.auth),
                    };
                    (
                        p.subject,
                        PendingGrant {
                            location: p.location,
                            grant,
                            granted_at: p.granted_at,
                        },
                    )
                })
                .collect(),
            active_auth: image
                .active
                .into_iter()
                .map(|(s, l, a)| (s, (l, a)))
                .collect(),
            overstay_alerted: image.overstay_alerted.into_iter().collect(),
            violations: image.violations,
            audit: image.audit,
            audit_from: image.audit_from.unwrap_or(Time::ZERO),
            audit_pruned: image.audit_pruned.unwrap_or(0),
            violations_from: image.violations_from.unwrap_or(Time::ZERO),
            violations_pruned: image.violations_pruned.unwrap_or(0),
        }
    }
}

/// Count what the situation overlay did to a decision (the audit trail
/// carries the rewritten decision itself; these series make the rates
/// scrapeable).
fn count_effect(effect: SituationEffect) {
    match effect {
        SituationEffect::None => {}
        SituationEffect::Overridden(_) => ltam_obs::counter!(
            "situate_overrides_total",
            "Denials rewritten into emergency override grants"
        )
        .inc(),
        SituationEffect::OverrideExpired => ltam_obs::counter!(
            "situate_override_expired_total",
            "Responder denials that stood because the declared emergency had auto-expired"
        )
        .inc(),
        SituationEffect::LockdownRefused => ltam_obs::counter!(
            "situate_lockdown_refusals_total",
            "Grants refused by lockdown default-deny (authorization not pinned)"
        )
        .inc(),
        SituationEffect::ConstraintRefused(_) => ltam_obs::counter!(
            "situate_constraint_refusals_total",
            "Entries refused by a workflow constraint (SoD, BoD, ordered steps)"
        )
        .inc(),
    }
}

/// A pending grant, flattened for serialization (see
/// [`ShardStateImage::pending`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingImage {
    /// The granted subject.
    pub subject: SubjectId,
    /// The location the grant admits them to.
    pub location: LocationId,
    /// The authorization the grant was issued under (a placeholder
    /// `u64::MAX` id for emergency-override grants — see `incident`).
    pub auth: AuthId,
    /// `Some(incident)` for an emergency-override grant: the grant was
    /// issued under this incident's declaration, not an authorization.
    /// `None` in pre-situation images and for ordinary grants.
    pub incident: Option<u64>,
    /// When the request was granted (the grant lapses `grant_ttl`
    /// chronons later).
    pub granted_at: Time,
}

/// Serializable image of one shard's complete mutable state.
///
/// Produced by [`ShardState::image`], consumed by
/// [`ShardState::from_image`]; `ltam-store` persists a vector of these
/// (one per shard) inside every engine snapshot. All fields are public so
/// the store layer can redistribute subject-keyed state when an engine is
/// recovered onto a different shard count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStateImage {
    /// Per-authorization entry counters.
    pub ledger: UsageLedger,
    /// The shard's movements database (log, timelines, occupancy).
    pub movements: MovementsDb,
    /// Grants issued but not yet used, sorted by subject.
    pub pending: Vec<PendingImage>,
    /// Authorizations governing open stays, sorted by subject.
    pub active: Vec<(SubjectId, LocationId, AuthId)>,
    /// Subjects already alerted for their current overstay, sorted.
    pub overstay_alerted: Vec<SubjectId>,
    /// Violations detected by this shard, in detection order.
    pub violations: Vec<Violation>,
    /// Audited request decisions, in decision order.
    pub audit: Vec<AuditRecord>,
    /// Audit retention watermark (`None` in pre-retention images:
    /// complete from the epoch).
    pub audit_from: Option<Time>,
    /// Audit records dropped by retention (`None` = 0).
    pub audit_pruned: Option<u64>,
    /// Violation retention watermark (`None` = complete from the epoch).
    pub violations_from: Option<Time>,
    /// Violations dropped by retention (`None` = 0); carried so the
    /// alert sequence resumes past pruned violations after recovery.
    pub violations_pruned: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltam_core::model::{Authorization, EntryLimit};
    use ltam_time::Interval;

    const ALICE: SubjectId = SubjectId(0);
    const CAIS: LocationId = LocationId(3);

    fn policy_db() -> (AuthorizationDb, ProhibitionDb) {
        let mut db = AuthorizationDb::new();
        db.insert(
            Authorization::new(
                Interval::lit(5, 40),
                Interval::lit(20, 100),
                ALICE,
                CAIS,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        (db, ProhibitionDb::new())
    }

    #[test]
    fn shard_state_runs_the_full_cycle() {
        let (db, prohibitions) = policy_db();
        let situation = SituationPolicy::new();
        let policy = PolicyView {
            db: &db,
            prohibitions: &prohibitions,
            config: EngineConfig::default(),
            situation: &situation,
        };
        let mut s = ShardState::new();
        assert!(s.request_enter(&policy, Time(10), ALICE, CAIS).is_granted());
        assert_eq!(s.observe_enter(&policy, Time(11), ALICE, CAIS), None);
        assert_eq!(s.active_stays().len(), 1);
        // Exit at 25 is inside [20, 100]: clean.
        assert_eq!(s.observe_exit(&policy, Time(25), ALICE, CAIS), None);
        assert!(s.violations().is_empty());
        assert_eq!(s.audit().len(), 1);
        assert_eq!(s.ledger().used(ltam_core::db::AuthId(0)), 1);
    }

    #[test]
    fn shard_state_raises_the_taxonomy() {
        let (db, prohibitions) = policy_db();
        let situation = SituationPolicy::new();
        let policy = PolicyView {
            db: &db,
            prohibitions: &prohibitions,
            config: EngineConfig::default(),
            situation: &situation,
        };
        let mut s = ShardState::new();
        // Tailgate: enter without a grant.
        assert!(matches!(
            s.observe_enter(&policy, Time(6), ALICE, CAIS),
            Some(Violation::UnauthorizedEntry { .. })
        ));
        // Exiting the unauthorized stay breaches nothing: there is no
        // active authorization whose window could be violated.
        assert!(s.observe_exit(&policy, Time(7), ALICE, CAIS).is_none());
        // Inconsistent: exit again while outside.
        assert!(matches!(
            s.observe_exit(&policy, Time(8), ALICE, CAIS),
            Some(Violation::InconsistentMovement { .. })
        ));
        assert_eq!(s.violations().len(), 2);
    }

    #[test]
    fn image_round_trip_preserves_every_field() {
        let (db, prohibitions) = policy_db();
        let situation = SituationPolicy::new();
        let policy = PolicyView {
            db: &db,
            prohibitions: &prohibitions,
            config: EngineConfig::default(),
            situation: &situation,
        };
        let mut s = ShardState::new();
        // Exercise every piece of state: a used grant, an open stay, a
        // pending grant for a second subject, and a violation.
        assert!(s.request_enter(&policy, Time(10), ALICE, CAIS).is_granted());
        assert_eq!(s.observe_enter(&policy, Time(11), ALICE, CAIS), None);
        s.observe_enter(&policy, Time(6), SubjectId(7), CAIS); // tailgate
        let image = s.image();
        let restored = ShardState::from_image(image.clone());
        assert_eq!(restored.image(), image);
        assert_eq!(restored.violations(), s.violations());
        assert_eq!(restored.audit(), s.audit());
        assert_eq!(restored.active_stays(), s.active_stays());
        assert_eq!(restored.ledger().total_entries(), 1);
        // Unlike EngineSnapshot, pending grants DO survive an image: crash
        // recovery must not turn a granted entry into a violation.
        let mut pending = ShardState::new();
        assert!(pending
            .request_enter(&policy, Time(10), ALICE, CAIS)
            .is_granted());
        let mut back = ShardState::from_image(pending.image());
        assert_eq!(back.observe_enter(&policy, Time(11), ALICE, CAIS), None);
    }

    #[test]
    fn image_serde_round_trips_through_json() {
        let (db, prohibitions) = policy_db();
        let situation = SituationPolicy::new();
        let policy = PolicyView {
            db: &db,
            prohibitions: &prohibitions,
            config: EngineConfig::default(),
            situation: &situation,
        };
        let mut s = ShardState::new();
        assert!(s.request_enter(&policy, Time(10), ALICE, CAIS).is_granted());
        assert_eq!(s.observe_enter(&policy, Time(11), ALICE, CAIS), None);
        s.tick(&policy, Time(200));
        let image = s.image();
        let json = serde_json::to_string(&image).unwrap();
        let back: ShardStateImage = serde_json::from_str(&json).unwrap();
        assert_eq!(back, image);
    }

    #[test]
    fn retention_prunes_history_but_not_enforcement_state() {
        let (db, prohibitions) = policy_db();
        let situation = SituationPolicy::new();
        let policy = PolicyView {
            db: &db,
            prohibitions: &prohibitions,
            config: EngineConfig::default(),
            situation: &situation,
        };
        let mut s = ShardState::new();
        // A full early cycle (audit + movements + ledger) and a tailgate
        // violation, then a later open stay.
        assert!(s.request_enter(&policy, Time(10), ALICE, CAIS).is_granted());
        assert_eq!(s.observe_enter(&policy, Time(11), ALICE, CAIS), None);
        assert_eq!(s.observe_exit(&policy, Time(25), ALICE, CAIS), None);
        s.observe_enter(&policy, Time(12), SubjectId(7), CAIS); // tailgate
        s.observe_exit(&policy, Time(13), SubjectId(7), CAIS);
        let retention = ltam_core::RetentionPolicy::keep_last(10);
        let pruned = s.prune(&retention, Time(30));
        assert_eq!(pruned.stays.len(), 2, "{pruned:?}");
        assert_eq!(pruned.audit.len(), 1);
        assert_eq!(pruned.violations.len(), 1);
        assert!(s.violations().is_empty());
        assert!(s.audit().is_empty());
        assert_eq!(s.violations_pruned(), 1);
        assert_eq!(s.audit_pruned(), 1);
        let w = s.watermarks();
        assert_eq!(w.movements, Time(30));
        assert_eq!(w.audit, Time(30));
        assert_eq!(w.violations, Time(30));
        // The ledger survived: Alice's single entry stays spent.
        assert_eq!(s.ledger().used(AuthId(0)), 1);
        assert!(!s.request_enter(&policy, Time(31), ALICE, CAIS).is_granted());
        // Images round-trip the watermarks and counters.
        let restored = ShardState::from_image(s.image());
        assert_eq!(restored.watermarks(), w);
        assert_eq!(restored.violations_pruned(), 1);
        assert_eq!(restored.image(), s.image());
    }

    #[test]
    fn per_class_knobs_prune_independently() {
        let (db, prohibitions) = policy_db();
        let situation = SituationPolicy::new();
        let policy = PolicyView {
            db: &db,
            prohibitions: &prohibitions,
            config: EngineConfig::default(),
            situation: &situation,
        };
        let mut s = ShardState::new();
        s.observe_enter(&policy, Time(5), SubjectId(7), CAIS); // tailgate
        s.observe_exit(&policy, Time(6), SubjectId(7), CAIS);
        let retention = ltam_core::RetentionPolicy {
            violations: false,
            ..ltam_core::RetentionPolicy::keep_last(1)
        };
        let pruned = s.prune(&retention, Time(50));
        assert!(pruned.violations.is_empty());
        assert_eq!(s.violations().len(), 1, "violations class disabled");
        assert_eq!(s.watermarks().violations, Time::ZERO);
        assert_eq!(s.watermarks().movements, Time(50));
        assert_eq!(pruned.stays.len(), 1);
    }

    #[test]
    fn invalidate_auth_lapses_pending_and_counters() {
        let (db, prohibitions) = policy_db();
        let situation = SituationPolicy::new();
        let policy = PolicyView {
            db: &db,
            prohibitions: &prohibitions,
            config: EngineConfig::default(),
            situation: &situation,
        };
        let mut s = ShardState::new();
        let Decision::Granted { auth } = s.request_enter(&policy, Time(10), ALICE, CAIS) else {
            panic!("expected grant");
        };
        s.invalidate_auth(auth);
        assert!(matches!(
            s.observe_enter(&policy, Time(11), ALICE, CAIS),
            Some(Violation::UnauthorizedEntry { .. })
        ));
    }
}
