//! # ltam-engine — LTAM authorization enforcement
//!
//! The enforcement architecture of the paper's Figure 3, built on
//! [`ltam_core`]:
//!
//! * [`profile`] — the **user profile database** (supervisors, groups;
//!   feeds the `Supervisor_Of` rule operator),
//! * [`movement`] — the **location & movements database**: an event-sourced
//!   log of enter/exit events with occupancy, whereabouts, presence and
//!   contact-tracing queries,
//! * [`engine`] — the **access control engine**: request checking
//!   (Definition 7), continuous movement monitoring, violation detection
//!   (tailgating, exit-window breaches, overstays), rule derivation and
//!   audit,
//! * [`violation`] — the violation taxonomy and security-desk alerts,
//! * [`baseline`] — the **card-reader baseline** of §1 (request-time-only
//!   checks) behind the same [`baseline::Enforcement`] trait, for
//!   comparative evaluation,
//! * [`query`] — the **query engine** with a small query language
//!   (`ACCESSIBLE FOR`, `CAN … ENTER … AT`, `WHO IN`, `CONTACTS OF`,
//!   `VIOLATIONS …`) over all databases,
//! * [`retention`] — the engine half of history retention: the record
//!   bundle a prune produces and the per-class watermarks a pruned
//!   engine exposes (policies live in [`ltam_core::retention`]; the
//!   archive tier lives in `ltam-store`),
//! * [`shared`] — a `parking_lot`-guarded, cloneable engine handle with a
//!   `crossbeam` alert channel for concurrent deployments.

#![warn(missing_docs)]

pub mod baseline;
pub mod batch;
pub mod engine;
pub mod movement;
pub mod profile;
pub mod query;
pub mod report;
pub mod retention;
pub mod shard;
pub mod shared;
pub mod snapshot;
pub mod view;
pub mod violation;

pub use baseline::{CardReaderEngine, Enforcement};
pub use batch::{
    BatchOutcome, EngineStatus, Event, PolicyCore, PolicyImage, ShardStats, ShardStatusRow,
    ShardedEngine,
};
pub use engine::{AccessControlEngine, AuditRecord, EngineConfig, DEFAULT_GRANT_TTL};
pub use movement::{Contact, MovementEvent, MovementKind, MovementsDb, Stay};
pub use profile::{Profile, UserProfileDb};
pub use query::{Query, QueryContext, QueryResult};
pub use report::{security_report, SecurityReport};
pub use retention::{HistoryWatermarks, PrunedHistory};
pub use shard::{PendingImage, PolicyView, ShardState, ShardStateImage};
pub use shared::SharedEngine;
pub use snapshot::EngineSnapshot;
pub use view::EngineReadView;
pub use violation::{Alert, Violation};
