//! Engine state persistence.
//!
//! A deployment restarts; the policy store, usage counters, movement
//! history and profiles must survive. [`EngineSnapshot`] captures every
//! durable database of the Figure 3 architecture in one serializable
//! value; [`AccessControlEngine::restore`] rebuilds a live engine from it.
//!
//! Intentionally *not* captured: pending grants (they expire within
//! `grant_ttl` chronons anyway), in-flight alert sequence numbers, and
//! rule *closures* (custom operators must be re-registered by the host
//! application — they are code, not data). Declarative rules round-trip.

use crate::engine::AccessControlEngine;
use crate::movement::MovementsDb;
use crate::profile::UserProfileDb;
use crate::violation::Violation;
use ltam_core::db::{AuthId, Provenance, RuleId};
use ltam_core::ledger::UsageLedger;
use ltam_core::model::Authorization;
use ltam_core::prohibition::ProhibitionDb;
use ltam_core::rules::Rule;
use ltam_core::subject::SubjectId;
use ltam_graph::{LocationId, LocationModel};
use serde::{Deserialize, Serialize};

/// Serializable image of an engine's durable state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// The location layout.
    pub model: LocationModel,
    /// Authorization rows with their ids and provenance, in id order.
    pub authorizations: Vec<(AuthId, Authorization, Provenance)>,
    /// The id-allocator high-water mark: restored so ids of revoked
    /// authorizations are never reissued to new rows (stale references
    /// must dangle, not alias). `None` for snapshots serialized before
    /// this field existed — restore then falls back to resuming past the
    /// largest surviving id.
    pub next_auth_id: Option<u64>,
    /// Prohibitions.
    pub prohibitions: ProhibitionDb,
    /// Declarative rules with their ids.
    pub rules: Vec<(RuleId, Rule)>,
    /// Usage counters (keyed by the preserved authorization ids).
    pub ledger: UsageLedger,
    /// User profiles.
    pub profiles: UserProfileDb,
    /// Movement history.
    pub movements: MovementsDb,
    /// Violations detected so far.
    pub violations: Vec<Violation>,
    /// Violations dropped by retention before this snapshot (`None` for
    /// pre-retention snapshots = 0). Restored so the alert sequence
    /// resumes past pruned violations.
    pub violations_pruned: Option<u64>,
    /// Authorizations governing open stays (for overstay monitoring).
    pub active: Vec<(SubjectId, LocationId, AuthId)>,
}

impl AccessControlEngine {
    /// Capture the durable state.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            model: self.model().clone(),
            authorizations: self.db().export_rows(),
            next_auth_id: Some(self.db().next_id()),
            prohibitions: self.prohibitions().clone(),
            rules: self.rules_export(),
            ledger: self.ledger().clone(),
            profiles: self.profiles().clone(),
            movements: self.movements().clone(),
            violations: self.violations().to_vec(),
            violations_pruned: Some(self.violations_pruned()),
            active: self.active_stays(),
        }
    }

    /// Rebuild an engine from a snapshot. Custom rule operators must be
    /// re-registered afterwards via [`AccessControlEngine::add_rule`]-time
    /// configuration if the host used any.
    pub fn restore(snapshot: EngineSnapshot) -> AccessControlEngine {
        let mut engine = AccessControlEngine::new(snapshot.model);
        engine.restore_parts(
            snapshot.authorizations,
            snapshot.next_auth_id.unwrap_or(0),
            snapshot.prohibitions,
            snapshot.rules,
            snapshot.ledger,
            snapshot.profiles,
            snapshot.movements,
            snapshot.violations,
            snapshot.violations_pruned.unwrap_or(0),
            snapshot.active,
        );
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltam_core::decision::Decision;
    use ltam_core::model::EntryLimit;
    use ltam_core::subject::SubjectId;
    use ltam_graph::examples::ntu_campus;
    use ltam_time::{Interval, Time};

    fn populated() -> (AccessControlEngine, SubjectId, ltam_graph::LocationId) {
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut e = AccessControlEngine::new(ntu.model);
        let alice = e.profiles_mut().add_user("Alice", "researcher");
        e.add_authorization(
            Authorization::new(
                Interval::lit(0, 100),
                Interval::lit(0, 200),
                alice,
                cais,
                EntryLimit::Finite(2),
            )
            .unwrap(),
        );
        assert!(e.request_enter(Time(5), alice, cais).is_granted());
        e.observe_enter(Time(5), alice, cais);
        e.observe_exit(Time(10), alice, cais);
        let mallory = e.profiles_mut().add_user("Mallory", "?");
        e.observe_enter(Time(12), mallory, cais);
        (e, alice, cais)
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let (engine, alice, cais) = populated();
        let json = serde_json::to_string(&engine.snapshot()).unwrap();
        let back: EngineSnapshot = serde_json::from_str(&json).unwrap();
        let restored = AccessControlEngine::restore(back);

        // Policy survives.
        assert_eq!(restored.db().len(), engine.db().len());
        // Usage counters survive: one of two entries consumed.
        let d = restored.query("CAN Alice ENTER CAIS AT 20").unwrap();
        assert!(matches!(
            d,
            crate::query::QueryResult::Decision { granted: true, .. }
        ));
        // History survives.
        assert_eq!(restored.movements().whereabouts(alice, Time(7)), Some(cais));
        // Violations survive.
        assert_eq!(restored.violations(), engine.violations());
        // Profiles survive.
        assert_eq!(
            restored.profiles().id_of("Mallory"),
            engine.profiles().id_of("Mallory")
        );
    }

    #[test]
    fn restored_engine_keeps_enforcing_budgets() {
        let (engine, alice, cais) = populated();
        let mut restored = AccessControlEngine::restore(engine.snapshot());
        // One entry left of the two.
        assert!(restored.request_enter(Time(20), alice, cais).is_granted());
        restored.observe_enter(Time(20), alice, cais);
        restored.observe_exit(Time(30), alice, cais);
        assert!(matches!(
            restored.request_enter(Time(40), alice, cais),
            Decision::Denied { .. }
        ));
    }

    #[test]
    fn rules_round_trip_and_rederive() {
        use ltam_core::rules::{OpTuple, SubjectOp};
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut e = AccessControlEngine::new(ntu.model);
        let alice = e.profiles_mut().add_user("Alice", "researcher");
        let bob = e.profiles_mut().add_user("Bob", "professor");
        e.profiles_mut().set_supervisor(alice, bob);
        let base = e.add_authorization(
            Authorization::new(
                Interval::lit(0, 100),
                Interval::lit(0, 200),
                alice,
                cais,
                EntryLimit::Unbounded,
            )
            .unwrap(),
        );
        e.add_rule(Rule {
            valid_from: Time(0),
            base,
            ops: OpTuple {
                subject_op: SubjectOp::SupervisorOf,
                ..OpTuple::default()
            },
        });
        e.apply_rules();
        let before = e.db().len();
        let mut restored = AccessControlEngine::restore(e.snapshot());
        assert_eq!(restored.db().len(), before);
        // Re-deriving after restore is quiescent (nothing changed).
        let report = restored.apply_rules();
        assert!(report.is_quiescent(), "{report:?}");
    }

    #[test]
    fn snapshots_without_the_id_watermark_still_restore() {
        // Snapshots serialized before `next_auth_id` existed must keep
        // deserializing (the field is optional; restore falls back to
        // resuming past the largest surviving id).
        let (engine, alice, cais) = populated();
        let json = serde_json::to_string(&engine.snapshot()).unwrap();
        let legacy = json.replace("\"next_auth_id\":1,", "");
        assert_ne!(legacy, json, "test must actually strip the field");
        let back: EngineSnapshot = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.next_auth_id, None);
        let restored = AccessControlEngine::restore(back);
        assert_eq!(restored.movements().whereabouts(alice, Time(7)), Some(cais));
        assert_eq!(restored.db().len(), engine.db().len());
    }

    #[test]
    fn snapshot_excludes_pending_grants() {
        let (mut engine, alice, cais) = populated();
        assert!(engine.request_enter(Time(20), alice, cais).is_granted());
        // Snapshot taken between swipe and door: the restored engine treats
        // the entry as ungranted.
        let mut restored = AccessControlEngine::restore(engine.snapshot());
        let v = restored.observe_enter(Time(21), alice, cais);
        assert!(v.is_some(), "pending grant must not survive restore");
    }
}
