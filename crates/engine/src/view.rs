//! [`EngineReadView`] — a cloneable, read-only handle over a shared
//! [`ShardedEngine`].
//!
//! The sharded engine is already safe to read concurrently: every
//! accessor takes `&self` and synchronizes per shard (brief mutex
//! holds) or on the policy epoch lock. What was missing is a *type*
//! that grants only those accessors. A serving tier wants to route
//! read-only queries around its write path — many reader threads, one
//! writer — and handing each reader the full engine would hand them
//! `ingest` and the policy-edit path too, where an accidental call
//! bypasses durability (see `ltam-store`'s `DurableEngine::engine`
//! warning). `EngineReadView` is that capability split: it wraps an
//! `Arc<ShardedEngine>` and re-exports the read surface, nothing else.
//!
//! Reads are **concurrent with writes, per shard**: a view's query
//! locks one shard at a time, so it interleaves with an in-flight
//! ingest batch rather than waiting for it — each answer is a
//! consistent point-in-time read of each shard it touches, in exchange
//! for not being a cross-shard barrier the way stopping ingest would
//! be. That is the same contract `ShardedEngine`'s own accessors have
//! always had.

use crate::batch::{EngineStatus, PolicyCore, ShardedEngine};
use crate::retention::HistoryWatermarks;
use crate::shard::ShardState;
use crate::violation::Violation;
use ltam_core::subject::SubjectId;
use ltam_time::Time;
use std::sync::Arc;

/// A read-only, cloneable handle over a shared [`ShardedEngine`]. See
/// the [module docs](self).
#[derive(Debug, Clone)]
pub struct EngineReadView {
    engine: Arc<ShardedEngine>,
}

impl EngineReadView {
    /// Wrap a shared engine. Cloning the view (or holding it after the
    /// writer is gone) is cheap — it is an `Arc` bump.
    pub fn new(engine: Arc<ShardedEngine>) -> EngineReadView {
        EngineReadView { engine }
    }

    /// The shared engine, for read-only composition (e.g. the
    /// tier-aware history queries take `&ShardedEngine`). Mutating
    /// through this reference is impossible only by convention — every
    /// `&self` method on `ShardedEngine` is reachable — so keep uses to
    /// the read surface this type exists to delimit.
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Operational counters, aggregated across shards.
    pub fn status(&self) -> EngineStatus {
        self.engine.status()
    }

    /// A snapshot of the current policy epoch.
    pub fn policy(&self) -> Arc<PolicyCore> {
        self.engine.policy()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.engine.shard_count()
    }

    /// The shard a subject's state lives on.
    pub fn shard_for(&self, subject: SubjectId) -> usize {
        self.engine.shard_for(subject)
    }

    /// Run read-only logic against one shard's state.
    pub fn read_shard<R>(&self, shard: usize, f: impl FnOnce(&ShardState) -> R) -> R {
        self.engine.read_shard(shard, f)
    }

    /// Per-class retention watermarks.
    pub fn watermarks(&self) -> HistoryWatermarks {
        self.engine.watermarks()
    }

    /// The movement-history retention watermark.
    pub fn retention_watermark(&self) -> Time {
        self.engine.retention_watermark()
    }

    /// All violations detected so far, in shard order.
    pub fn violations(&self) -> Vec<Violation> {
        self.engine.violations()
    }

    /// Number of violations detected so far.
    pub fn violation_count(&self) -> usize {
        self.engine.violation_count()
    }

    /// Total entries recorded across all shards' ledgers.
    pub fn total_entries(&self) -> u64 {
        self.engine.total_entries()
    }

    /// Number of events held on the quarantine ledger.
    pub fn quarantine_len(&self) -> usize {
        self.engine.quarantine_len()
    }

    /// Quarantined events concerning `subject` inside `window` (the
    /// flag a contact-tracing answer carries).
    pub fn quarantined_involving(
        &self,
        subject: SubjectId,
        window: ltam_time::Interval,
    ) -> Vec<crate::batch::QuarantinedEvent> {
        self.engine.quarantined_involving(subject, window)
    }

    /// Quarantined events inside `window`, optionally by source (the
    /// triage query).
    pub fn quarantined_in(
        &self,
        source: Option<SubjectId>,
        window: ltam_time::Interval,
    ) -> Vec<crate::batch::QuarantinedEvent> {
        self.engine.quarantined_in(source, window)
    }

    /// A deterministic digest of the engine's observable enforcement
    /// state: shard count, entry/violation totals, retention watermarks
    /// and the full violation list in shard-merge order, folded through
    /// FNV-1a. Two engines that ingested the same events in the same
    /// batches with the same shard count produce the same digest — the
    /// replication drill's cheap "is the follower byte-for-byte honest"
    /// check at a matched watermark. Not a cryptographic hash.
    pub fn state_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        fold(&(self.shard_count() as u64).to_le_bytes());
        fold(&self.total_entries().to_le_bytes());
        fold(&(self.violation_count() as u64).to_le_bytes());
        let marks = self.watermarks();
        fold(&marks.movements.0.to_le_bytes());
        fold(&marks.audit.0.to_le_bytes());
        fold(&marks.violations.0.to_le_bytes());
        for v in self.violations() {
            // `Violation`'s Debug form is a pure function of its fields
            // (ids and chronons, no addresses), so it is a stable,
            // process-independent serialization for hashing.
            fold(format!("{v:?}").as_bytes());
            fold(&[0xff]);
        }
        // The quarantine ledger is observable state too: a follower
        // that dropped (or double-applied) a quarantine record must not
        // digest equal to its primary.
        for q in self.engine.export_quarantine() {
            fold(format!("{q:?}").as_bytes());
            fold(&[0xfe]);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Event;
    use ltam_core::model::{Authorization, EntryLimit};
    use ltam_graph::examples::ntu_campus;
    use ltam_time::Interval;

    #[test]
    fn view_reads_track_the_writer() {
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut core = PolicyCore::new(ntu.model);
        let alice = SubjectId(0);
        core.add_authorization(
            Authorization::new(
                Interval::lit(5, 40),
                Interval::lit(20, 100),
                alice,
                cais,
                EntryLimit::Unbounded,
            )
            .unwrap(),
        );
        let (engine, _alerts) = ShardedEngine::new(core, 2);
        let engine = Arc::new(engine);
        let view = EngineReadView::new(Arc::clone(&engine));
        let view2 = view.clone();
        assert_eq!(view.total_entries(), 0);
        engine.ingest(&[
            Event::Request {
                time: Time(10),
                subject: alice,
                location: cais,
            },
            Event::Enter {
                time: Time(10),
                subject: alice,
                location: cais,
            },
            Event::Exit {
                time: Time(15), // before the mandatory [20, 100] window
                subject: alice,
                location: cais,
            },
        ]);
        assert_eq!(view.total_entries(), 1);
        assert_eq!(view2.violation_count(), 1, "clones see the same state");
        assert_eq!(view.status().live_violations, 1);
        assert_eq!(view.shard_for(alice), engine.shard_for(alice));
    }

    #[test]
    fn concurrent_views_never_deadlock_with_ingest() {
        let ntu = ntu_campus();
        let core = PolicyCore::new(ntu.model);
        let cais = ntu.cais;
        let (engine, _alerts) = ShardedEngine::new(core, 2);
        let engine = Arc::new(engine);
        let view = EngineReadView::new(Arc::clone(&engine));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let v = view.clone();
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..200 {
                        let s = v.status();
                        assert!(s.audit_records >= last, "audit count is monotone");
                        last = s.audit_records;
                    }
                    last
                })
            })
            .collect();
        for i in 0..50u64 {
            engine.ingest(&[Event::Request {
                time: Time(i),
                subject: SubjectId((i % 7) as u32),
                location: cais,
            }]);
        }
        for r in readers {
            assert!(r.join().unwrap() <= 50);
        }
    }
}
