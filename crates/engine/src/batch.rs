//! Sharded, batch-ingesting enforcement: scale Figure 3 across threads.
//!
//! The single-lock [`SharedEngine`](crate::shared::SharedEngine)
//! serializes every card swipe against every admin query. This module
//! splits the engine along the seam LTAM's data model already implies:
//!
//! * a **read-mostly policy core** ([`PolicyCore`]: location model,
//!   effective graph, authorization database, prohibitions, tunables)
//!   shared by all shards and replaced wholesale — an *epoch swap* —
//!   when an administrator changes policy;
//! * **N shards** of per-subject mutable state ([`ShardState`]),
//!   partitioned by `SubjectId` hash, each owned by a dedicated worker
//!   thread.
//!
//! Sensor events arrive in batches ([`ShardedEngine::ingest`]): the
//! batch is grouped by shard, each group is processed on its shard's
//! worker (fed over `crossbeam` channels), and the per-shard results are
//! merged — in shard order, so the outcome is deterministic — into one
//! [`BatchOutcome`] whose violations are forwarded to the security desk
//! with globally monotone alert sequence numbers.
//!
//! Because every per-subject invariant (pending grants, active stays,
//! movement timelines, entry counters — an `AuthId` belongs to exactly
//! one subject) lives entirely on that subject's shard, the sharded
//! engine detects **exactly** the violation multiset the
//! single-threaded engine would on the same trace; the workspace's
//! `sharded_equivalence` integration tests assert this on 100k-event
//! traces.

use crate::engine::{AccessControlEngine, EngineConfig};
use crate::retention::{HistoryWatermarks, PrunedHistory};
use crate::shard::{PolicyView, ShardState, ShardStateImage};
use crate::violation::{Alert, Violation};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ltam_core::capability::WireAuth;
use ltam_core::db::{AuthId, Provenance};
use ltam_core::decision::Decision;
use ltam_core::model::Authorization;
use ltam_core::prohibition::{Prohibition, ProhibitionDb};
use ltam_core::subject::SubjectId;
use ltam_core::AuthorizationDb;
use ltam_graph::{EffectiveGraph, LocationId, LocationModel};
use ltam_situate::{SituationOp, SituationOutcome, SituationPolicy};
use ltam_time::Time;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One sensor or clock event, ready for batch ingestion.
///
/// `Request`/`Enter`/`Exit` carry the subject they concern and route to
/// that subject's shard; `Tick` is a monitoring-clock advance and is
/// broadcast to every shard (overstay scans cover all subjects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Event {
    /// An access request at a door (Definition 6).
    Request {
        /// When the request was made.
        time: Time,
        /// The requesting subject.
        subject: SubjectId,
        /// The requested location.
        location: LocationId,
    },
    /// The tracking infrastructure observed a physical entry.
    Enter {
        /// When the entry was observed.
        time: Time,
        /// Who entered.
        subject: SubjectId,
        /// Where.
        location: LocationId,
    },
    /// The tracking infrastructure observed a physical exit.
    Exit {
        /// When the exit was observed.
        time: Time,
        /// Who left.
        subject: SubjectId,
        /// Where.
        location: LocationId,
    },
    /// Advance the monitoring clock (overstay detection).
    Tick {
        /// The new clock value.
        now: Time,
    },
}

impl Event {
    /// The subject the event concerns; `None` for broadcast events
    /// (`Tick`).
    pub fn subject(&self) -> Option<SubjectId> {
        match *self {
            Event::Request { subject, .. }
            | Event::Enter { subject, .. }
            | Event::Exit { subject, .. } => Some(subject),
            Event::Tick { .. } => None,
        }
    }

    /// The event's timestamp.
    pub fn time(&self) -> Time {
        match *self {
            Event::Request { time, .. } | Event::Enter { time, .. } | Event::Exit { time, .. } => {
                time
            }
            Event::Tick { now } => now,
        }
    }
}

/// The read-mostly half of the enforcement engine: everything a shard
/// needs to *decide*, none of what it *mutates* per event.
///
/// Admins never mutate a live `PolicyCore`; they build the next epoch
/// (a clone plus edits) and the [`ShardedEngine`] swaps it in atomically
/// behind its single writer lock. Every batch reads one consistent
/// epoch for its whole duration.
#[derive(Debug, Clone)]
pub struct PolicyCore {
    model: LocationModel,
    graph: EffectiveGraph,
    db: AuthorizationDb,
    prohibitions: ProhibitionDb,
    config: EngineConfig,
    wire: WireAuth,
    situation: SituationPolicy,
}

impl PolicyCore {
    /// Build an empty policy core for a location layout.
    pub fn new(model: LocationModel) -> PolicyCore {
        let graph = EffectiveGraph::build(&model);
        PolicyCore {
            model,
            graph,
            db: AuthorizationDb::new(),
            prohibitions: ProhibitionDb::new(),
            config: EngineConfig::default(),
            wire: WireAuth::default(),
            situation: SituationPolicy::default(),
        }
    }

    /// The location layout.
    pub fn model(&self) -> &LocationModel {
        &self.model
    }

    /// The flattened location graph.
    pub fn graph(&self) -> &EffectiveGraph {
        &self.graph
    }

    /// The authorization database.
    pub fn db(&self) -> &AuthorizationDb {
        &self.db
    }

    /// The prohibition store.
    pub fn prohibitions(&self) -> &ProhibitionDb {
        &self.prohibitions
    }

    /// The enforcement tunables.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Override the enforcement tunables.
    pub fn set_config(&mut self, config: EngineConfig) {
        self.config = config;
    }

    /// Insert an authorization.
    pub fn add_authorization(&mut self, auth: Authorization) -> AuthId {
        self.db.insert(auth)
    }

    /// Insert a prohibition (denial takes precedence).
    pub fn add_prohibition(&mut self, prohibition: Prohibition) {
        self.prohibitions.insert(prohibition);
    }

    /// Revoke an authorization from the database. (The engine-level
    /// [`ShardedEngine::revoke_authorization`] also lapses per-shard
    /// grants and counters.)
    pub fn revoke_authorization(&mut self, id: AuthId) -> Option<Authorization> {
        self.db.revoke(id)
    }

    /// The wire-facing auth policy: capability tokens, trust levels,
    /// and the enforcement switch. Read by the serving tier on every
    /// frame (through the live epoch, so edits bite immediately).
    pub fn wire(&self) -> &WireAuth {
        &self.wire
    }

    /// Mutable access to the wire auth policy (admin edits route
    /// through `ShardedEngine::update_policy`, so every change is an
    /// epoch swap like any other policy edit).
    pub fn wire_mut(&mut self) -> &mut WireAuth {
        &mut self.wire
    }

    /// The situation overlay: declared mode, responders, pins, and
    /// workflow constraints (see `ltam-situate`). Read by every shard
    /// on the decision path through the live epoch.
    pub fn situation(&self) -> &SituationPolicy {
        &self.situation
    }

    /// Apply a durable situation edit (declarations route through
    /// `ShardedEngine::update_policy`, so every change is an epoch
    /// swap — a batch in flight evaluates entirely under one mode).
    pub fn apply_situation(&mut self, op: &SituationOp) -> SituationOutcome {
        self.situation.apply(op)
    }

    /// The immutable view shards enforce against.
    pub fn view(&self) -> PolicyView<'_> {
        PolicyView {
            db: &self.db,
            prohibitions: &self.prohibitions,
            config: self.config,
            situation: &self.situation,
        }
    }

    // --- persistence hooks --------------------------------------------------

    /// Export the policy core as a serializable image. The effective
    /// graph is derived state and is rebuilt on import.
    pub fn image(&self) -> PolicyImage {
        PolicyImage {
            model: self.model.clone(),
            authorizations: self.db.export_rows(),
            next_auth_id: self.db.next_id(),
            prohibitions: self.prohibitions.clone(),
            config: self.config,
            wire: Some(self.wire.clone()),
            situation: Some(self.situation.clone()),
        }
    }

    /// Rebuild a policy core from an exported image (inverse of
    /// [`PolicyCore::image`]); authorization ids are preserved, so
    /// external state referencing them (ledgers, pending grants) stays
    /// valid.
    pub fn from_image(image: PolicyImage) -> PolicyCore {
        let graph = EffectiveGraph::build(&image.model);
        let mut db = AuthorizationDb::import_rows(image.authorizations);
        // Never reissue an id that existed before the snapshot: stale
        // per-shard references to a revoked id (an open stay) must keep
        // dangling rather than resolve to a new, unrelated authorization.
        db.reserve_ids_through(image.next_auth_id);
        PolicyCore {
            model: image.model,
            graph,
            db,
            prohibitions: image.prohibitions,
            config: image.config,
            // Snapshots written before wire auth existed carry no
            // registry: an empty, not-required one preserves their
            // behavior exactly.
            wire: image.wire.unwrap_or_default(),
            // Likewise: pre-situation snapshots behave as mode Normal
            // with no constraints.
            situation: image.situation.unwrap_or_default(),
        }
    }
}

/// Serializable image of a [`PolicyCore`] — the read-mostly half of an
/// engine snapshot. Produced by [`PolicyCore::image`], consumed by
/// [`PolicyCore::from_image`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyImage {
    /// The location layout.
    pub model: LocationModel,
    /// Authorization rows with their ids and provenance, in id order.
    pub authorizations: Vec<(AuthId, Authorization, Provenance)>,
    /// The id-allocator high-water mark (see
    /// [`ltam_core::AuthorizationDb::next_id`]): restoring it prevents
    /// ids of revoked authorizations from being reissued after recovery.
    pub next_auth_id: u64,
    /// Prohibitions (denial takes precedence).
    pub prohibitions: ProhibitionDb,
    /// Enforcement tunables.
    pub config: EngineConfig,
    /// Wire auth policy (tokens, trust levels, enforcement switch).
    /// `None` in snapshots written before the field existed — imported
    /// as an empty, not-required [`WireAuth`].
    pub wire: Option<WireAuth>,
    /// Situation overlay (mode, responders, pins, workflow
    /// constraints). `None` in pre-situation snapshots — imported as
    /// mode Normal with nothing registered.
    pub situation: Option<SituationPolicy>,
}

/// One event held on the quarantine ledger: accepted from a
/// below-trust-threshold source, recorded verbatim, **never** applied
/// to the trusted movement history or the enforcement state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedEvent {
    /// The authenticated subject that reported the event (the sensor's
    /// wire identity, not the event's own subject).
    pub source: SubjectId,
    /// The source's trust level when the event arrived.
    pub level: u8,
    /// The event as reported.
    pub event: Event,
}

/// Per-shard slice of a [`BatchOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// The shard index.
    pub shard: usize,
    /// Events routed to this shard (ticks count once per shard).
    pub events: usize,
    /// Violations this shard raised during the batch.
    pub violations: usize,
}

/// The merged result of one [`ShardedEngine::ingest`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Events in the input batch.
    pub processed: usize,
    /// Access requests granted.
    pub granted: usize,
    /// Access requests denied.
    pub denied: usize,
    /// Violations raised by this batch, merged in shard order (within a
    /// shard: detection order).
    pub violations: Vec<Violation>,
    /// Per-shard breakdown.
    pub per_shard: Vec<ShardStats>,
}

/// One shard's row of an [`EngineStatus`] report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStatusRow {
    /// The shard index.
    pub shard: usize,
    /// Live movement events on this shard.
    pub movement_events: usize,
    /// Live violations on this shard.
    pub violations: usize,
    /// Live audit records on this shard.
    pub audit_records: usize,
}

/// Engine-level operational counters (see [`ShardedEngine::status`]).
/// Serializable so a serving layer can expose it over the wire.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStatus {
    /// Number of shards.
    pub shards: usize,
    /// Live movement events across all shards.
    pub live_movement_events: usize,
    /// Live violations across all shards.
    pub live_violations: usize,
    /// Live audit records across all shards.
    pub audit_records: usize,
    /// Movement events dropped by retention (archived in a durable
    /// deployment).
    pub events_pruned: u64,
    /// Violations dropped by retention.
    pub violations_pruned: u64,
    /// Audit records dropped by retention.
    pub audit_pruned: u64,
    /// Entries recorded across all shards' usage ledgers.
    pub total_entries: u64,
    /// Per-class retention watermarks (max over shards).
    pub watermarks: HistoryWatermarks,
    /// Per-shard breakdown, in shard order.
    pub per_shard: Vec<ShardStatusRow>,
}

/// What one shard reports back for its slice of a batch.
#[derive(Debug, Default)]
struct ShardOutcome {
    granted: usize,
    denied: usize,
    violations: Vec<Violation>,
}

#[derive(Debug)]
enum Job {
    Batch {
        epoch: Arc<PolicyCore>,
        events: Vec<Event>,
        done: Sender<(usize, ShardOutcome)>,
    },
}

fn apply_event(
    state: &mut ShardState,
    policy: &PolicyView<'_>,
    event: &Event,
    out: &mut ShardOutcome,
) {
    match *event {
        Event::Request {
            time,
            subject,
            location,
        } => match state.request_enter(policy, time, subject, location) {
            Decision::Granted { .. } | Decision::GrantedOverride { .. } => out.granted += 1,
            Decision::Denied { .. } => out.denied += 1,
        },
        Event::Enter {
            time,
            subject,
            location,
        } => {
            if let Some(v) = state.observe_enter(policy, time, subject, location) {
                out.violations.push(v);
            }
        }
        Event::Exit {
            time,
            subject,
            location,
        } => {
            if let Some(v) = state.observe_exit(policy, time, subject, location) {
                out.violations.push(v);
            }
        }
        Event::Tick { now } => out.violations.extend(state.tick(policy, now)),
    }
}

/// Static label values for per-shard series, so worker threads never
/// allocate (or leak) label strings. Shard counts beyond the table
/// share one overflow bucket — per-shard resolution matters most at
/// the small counts the throughput experiments sweep.
const SHARD_LABELS: [&str; 16] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
];

fn shard_label(shard: usize) -> &'static str {
    SHARD_LABELS.get(shard).copied().unwrap_or("16+")
}

fn worker_loop(shard: usize, state: Arc<Mutex<ShardState>>, jobs: Receiver<Job>) {
    // One registry lookup per worker thread; the loop then records
    // through the cached handle only.
    let batch_seconds = ltam_obs::registry().histogram(
        "engine_shard_batch_seconds",
        &[("shard", shard_label(shard))],
        "Time one shard spent applying its slice of an ingest batch",
        ltam_obs::Unit::SecondsFromMicros,
    );
    while let Ok(Job::Batch {
        epoch,
        events,
        done,
    }) = jobs.recv()
    {
        let started = (!ltam_obs::disabled()).then(std::time::Instant::now);
        let policy = epoch.view();
        let mut out = ShardOutcome::default();
        let mut guard = state.lock();
        for e in &events {
            apply_event(&mut guard, &policy, e, &mut out);
        }
        drop(guard);
        if let Some(started) = started {
            batch_seconds.observe(started.elapsed().as_micros() as u64);
        }
        // The coordinator may have been dropped mid-batch; nothing to do.
        let _ = done.send((shard, out));
    }
}

/// Deterministic subject → shard assignment (Fibonacci hashing, so
/// consecutively numbered subjects spread evenly).
pub fn shard_of(subject: SubjectId, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    let h = (subject.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) % shards as u64) as usize
}

/// A subject-sharded, batch-ingesting enforcement engine.
///
/// See the [module docs](crate::batch) for the architecture. Compared to
/// [`SharedEngine`](crate::shared::SharedEngine) (one `RwLock` around
/// everything), `ShardedEngine` lets `N` worker threads enforce
/// concurrently while admin updates swap policy epochs underneath.
///
/// ```
/// use ltam_core::model::{Authorization, EntryLimit};
/// use ltam_core::subject::SubjectId;
/// use ltam_engine::batch::{Event, PolicyCore, ShardedEngine};
/// use ltam_graph::examples::ntu_campus;
/// use ltam_time::{Interval, Time};
///
/// let ntu = ntu_campus();
/// let cais = ntu.cais;
/// let mut core = PolicyCore::new(ntu.model);
/// let alice = SubjectId(0);
/// // The §3.2 authorization: ([5, 40], [20, 100], (Alice, CAIS), 1).
/// core.add_authorization(
///     Authorization::new(
///         Interval::lit(5, 40),
///         Interval::lit(20, 100),
///         alice,
///         cais,
///         EntryLimit::Finite(1),
///     )
///     .unwrap(),
/// );
/// let (engine, alerts) = ShardedEngine::new(core, 4);
///
/// // One batch: swipe, walk in, leave too early, clock tick.
/// let outcome = engine.ingest(&[
///     Event::Request { time: Time(10), subject: alice, location: cais },
///     Event::Enter { time: Time(10), subject: alice, location: cais },
///     Event::Exit { time: Time(15), subject: alice, location: cais }, // before [20, 100]
///     Event::Tick { now: Time(16) },
/// ]);
/// assert_eq!(outcome.granted, 1);
/// assert_eq!(outcome.violations.len(), 1); // the early exit
/// assert_eq!(alerts.try_recv().unwrap().violation, outcome.violations[0]);
/// ```
pub struct ShardedEngine {
    policy: RwLock<Arc<PolicyCore>>,
    shards: Vec<Arc<Mutex<ShardState>>>,
    workers: Vec<Sender<Job>>,
    joins: Vec<JoinHandle<()>>,
    alert_tx: Sender<Alert>,
    alert_seq: AtomicU64,
    /// Events from below-trust-threshold sources, in arrival order.
    /// Deliberately *outside* the shards: quarantined events must never
    /// touch per-subject enforcement state, and the ledger is read
    /// whole (triage, flagged query answers), not by subject hash.
    quarantine: Mutex<Vec<QuarantinedEvent>>,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards.len())
            .field("alert_seq", &self.alert_seq)
            .finish_non_exhaustive()
    }
}

impl ShardedEngine {
    /// Spin up `shards` worker threads over `core`; returns the engine
    /// and the security desk's alert channel.
    pub fn new(core: PolicyCore, shards: usize) -> (ShardedEngine, Receiver<Alert>) {
        Self::with_states(core, (0..shards).map(|_| ShardState::new()).collect())
    }

    /// Spin up an engine whose shards start from pre-loaded state — the
    /// crash-recovery path: `ltam-store` restores each shard's
    /// [`ShardStateImage`] from the latest snapshot and replays the WAL
    /// tail through [`ShardedEngine::ingest`]. The alert sequence resumes
    /// past the violations already recorded, so restart alerts stay
    /// monotone.
    pub fn with_states(
        core: PolicyCore,
        states: Vec<ShardState>,
    ) -> (ShardedEngine, Receiver<Alert>) {
        let shards = states.len();
        assert!(shards >= 1, "need at least one shard");
        let (alert_tx, alert_rx) = unbounded();
        // Pruned violations still count: retention must not let alert
        // sequence numbers repeat after a restart.
        let seeded_seq: u64 = states
            .iter()
            .map(|s| s.violations().len() as u64 + s.violations_pruned())
            .sum();
        let states: Vec<Arc<Mutex<ShardState>>> = states
            .into_iter()
            .map(|s| Arc::new(Mutex::new(s)))
            .collect();
        let mut workers = Vec::with_capacity(shards);
        let mut joins = Vec::with_capacity(shards);
        for (i, state) in states.iter().enumerate() {
            let (tx, rx) = unbounded::<Job>();
            let state = Arc::clone(state);
            joins.push(std::thread::spawn(move || worker_loop(i, state, rx)));
            workers.push(tx);
        }
        (
            ShardedEngine {
                policy: RwLock::new(Arc::new(core)),
                shards: states,
                workers,
                joins,
                alert_tx,
                alert_seq: AtomicU64::new(seeded_seq),
                quarantine: Mutex::new(Vec::new()),
            },
            alert_rx,
        )
    }

    // --- the quarantine ledger ---------------------------------------------

    /// Append events from a below-threshold source to the quarantine
    /// ledger. They are recorded verbatim and never applied to the
    /// trusted movement history — no decisions, no violations, no
    /// ledger counters.
    pub fn ingest_quarantined(&self, source: SubjectId, level: u8, events: &[Event]) {
        let mut ledger = self.quarantine.lock();
        ledger.extend(events.iter().map(|&event| QuarantinedEvent {
            source,
            level,
            event,
        }));
        ltam_obs::counter!(
            "engine_quarantined_events_total",
            "Events accepted onto the quarantine ledger instead of the trusted history"
        )
        .inc_by(events.len() as u64);
    }

    /// Restore the quarantine ledger from a snapshot image (recovery;
    /// pairs with [`ShardedEngine::export_quarantine`]).
    pub fn load_quarantine(&self, entries: Vec<QuarantinedEvent>) {
        *self.quarantine.lock() = entries;
    }

    /// The full quarantine ledger, in arrival order (persistence and
    /// triage).
    pub fn export_quarantine(&self) -> Vec<QuarantinedEvent> {
        self.quarantine.lock().clone()
    }

    /// Number of quarantined events held.
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.lock().len()
    }

    /// Quarantined events concerning `subject` (as the event's own
    /// subject) inside `window` — what a contact-tracing answer flags:
    /// observations that were reported but *not* trusted.
    pub fn quarantined_involving(
        &self,
        subject: SubjectId,
        window: ltam_time::Interval,
    ) -> Vec<QuarantinedEvent> {
        self.quarantine
            .lock()
            .iter()
            .filter(|q| q.event.subject() == Some(subject) && window.contains(q.event.time()))
            .copied()
            .collect()
    }

    /// Quarantined events inside `window`, optionally restricted to one
    /// reporting source (the triage query).
    pub fn quarantined_in(
        &self,
        source: Option<SubjectId>,
        window: ltam_time::Interval,
    ) -> Vec<QuarantinedEvent> {
        self.quarantine
            .lock()
            .iter()
            .filter(|q| source.is_none_or(|s| q.source == s) && window.contains(q.event.time()))
            .copied()
            .collect()
    }

    /// Export every shard's mutable state as serializable images, in
    /// shard order (persistence; pairs with [`ShardedEngine::with_states`]).
    ///
    /// Each shard is locked and imaged in turn; call between batches for a
    /// point-in-time snapshot.
    pub fn export_images(&self) -> Vec<ShardStateImage> {
        self.shards.iter().map(|s| s.lock().image()).collect()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a subject's state lives on.
    pub fn shard_for(&self, subject: SubjectId) -> usize {
        shard_of(subject, self.shards.len())
    }

    /// A snapshot of the current policy epoch.
    pub fn policy(&self) -> Arc<PolicyCore> {
        self.policy.read().clone()
    }

    // --- administration (the single-writer epoch-swap path) ---------------

    /// Apply an arbitrary policy edit as one new epoch: clone the current
    /// core, run `f` on the clone, swap it in. Writers serialize on the
    /// policy lock; in-flight batches keep reading the epoch they started
    /// with.
    pub fn update_policy<R>(&self, f: impl FnOnce(&mut PolicyCore) -> R) -> R {
        let mut guard = self.policy.write();
        let mut next = (**guard).clone();
        let r = f(&mut next);
        *guard = Arc::new(next);
        r
    }

    /// Insert an authorization (one epoch swap; batch admin edits with
    /// [`ShardedEngine::update_policy`]).
    pub fn add_authorization(&self, auth: Authorization) -> AuthId {
        self.update_policy(|p| p.add_authorization(auth))
    }

    /// Insert a prohibition.
    pub fn add_prohibition(&self, prohibition: Prohibition) {
        self.update_policy(|p| p.add_prohibition(prohibition));
    }

    /// Revoke an authorization: removes it from the next policy epoch and
    /// lapses its usage counters and pending grants on every shard.
    pub fn revoke_authorization(&self, id: AuthId) -> Option<Authorization> {
        let revoked = self.update_policy(|p| p.revoke_authorization(id));
        for shard in &self.shards {
            shard.lock().invalidate_auth(id);
        }
        revoked
    }

    // --- batch ingestion ---------------------------------------------------

    /// Ingest a batch of events: group by shard, process each group on
    /// its shard's worker thread, merge the results in shard order, and
    /// forward every raised violation to the alert channel.
    ///
    /// Per-subject event order within the batch is preserved (a subject's
    /// events all land on one shard, in input order), which is all the
    /// movement database's physical-consistency checks need; `Tick`
    /// events are broadcast to every shard at their position in the
    /// batch.
    pub fn ingest(&self, events: &[Event]) -> BatchOutcome {
        let epoch = self.policy.read().clone();
        let n = self.shards.len();
        let mut groups: Vec<Vec<Event>> = vec![Vec::new(); n];
        for e in events {
            match e.subject() {
                Some(s) => groups[shard_of(s, n)].push(*e),
                None => {
                    for g in &mut groups {
                        g.push(*e);
                    }
                }
            }
        }
        let group_sizes: Vec<usize> = groups.iter().map(Vec::len).collect();

        let (done_tx, done_rx) = unbounded();
        let mut dispatched = 0usize;
        for (i, g) in groups.into_iter().enumerate() {
            if g.is_empty() {
                continue;
            }
            self.workers[i]
                .send(Job::Batch {
                    epoch: Arc::clone(&epoch),
                    events: g,
                    done: done_tx.clone(),
                })
                .expect("worker thread alive");
            dispatched += 1;
        }
        drop(done_tx);

        let mut results: Vec<Option<ShardOutcome>> = (0..n).map(|_| None).collect();
        for _ in 0..dispatched {
            let (shard, out) = done_rx.recv().expect("worker reports its batch");
            results[shard] = Some(out);
        }

        // Merge deterministically in shard index order.
        let mut outcome = BatchOutcome {
            processed: events.len(),
            ..BatchOutcome::default()
        };
        for (i, slot) in results.into_iter().enumerate() {
            let Some(out) = slot else {
                if group_sizes[i] == 0 {
                    continue;
                }
                unreachable!("dispatched shard {i} never reported");
            };
            outcome.per_shard.push(ShardStats {
                shard: i,
                events: group_sizes[i],
                violations: out.violations.len(),
            });
            outcome.granted += out.granted;
            outcome.denied += out.denied;
            outcome.violations.extend(out.violations);
        }
        ltam_obs::counter!(
            "engine_decisions_total",
            "Access-request decisions, by outcome",
            "outcome" => "granted"
        )
        .inc_by(outcome.granted as u64);
        ltam_obs::counter!(
            "engine_decisions_total",
            "Access-request decisions, by outcome",
            "outcome" => "denied"
        )
        .inc_by(outcome.denied as u64);
        for &v in &outcome.violations {
            self.alert(v);
        }
        outcome
    }

    fn alert(&self, violation: Violation) {
        ltam_obs::counter!(
            "engine_alerts_total",
            "Violation alerts forwarded to the security desk"
        )
        .inc();
        let alert = Alert {
            violation,
            seq: self.alert_seq.fetch_add(1, Ordering::Relaxed),
        };
        let _ = self.alert_tx.send(alert);
    }

    // --- single-event paths (sensor trickle between batches) --------------

    /// Process one access request inline (no worker hop).
    pub fn request_enter(&self, t: Time, subject: SubjectId, location: LocationId) -> Decision {
        let epoch = self.policy.read().clone();
        let idx = shard_of(subject, self.shards.len());
        let decision = {
            let mut state = self.shards[idx].lock();
            state.request_enter(&epoch.view(), t, subject, location)
        };
        let outcome_counter = match decision {
            Decision::Granted { .. } | Decision::GrantedOverride { .. } => ltam_obs::counter!(
                "engine_decisions_total",
                "Access-request decisions, by outcome",
                "outcome" => "granted"
            ),
            Decision::Denied { .. } => ltam_obs::counter!(
                "engine_decisions_total",
                "Access-request decisions, by outcome",
                "outcome" => "denied"
            ),
        };
        outcome_counter.inc();
        decision
    }

    /// Process one observed entry inline. Returns the violation raised,
    /// if any.
    pub fn observe_enter(
        &self,
        t: Time,
        subject: SubjectId,
        location: LocationId,
    ) -> Option<Violation> {
        let epoch = self.policy.read().clone();
        let idx = shard_of(subject, self.shards.len());
        let raised = {
            let mut state = self.shards[idx].lock();
            state.observe_enter(&epoch.view(), t, subject, location)
        };
        if let Some(v) = raised {
            self.alert(v);
        }
        raised
    }

    /// Process one observed exit inline. Returns the violation raised,
    /// if any.
    pub fn observe_exit(
        &self,
        t: Time,
        subject: SubjectId,
        location: LocationId,
    ) -> Option<Violation> {
        let epoch = self.policy.read().clone();
        let idx = shard_of(subject, self.shards.len());
        let raised = {
            let mut state = self.shards[idx].lock();
            state.observe_exit(&epoch.view(), t, subject, location)
        };
        if let Some(v) = raised {
            self.alert(v);
        }
        raised
    }

    /// Advance the monitoring clock on every shard, in shard order.
    pub fn tick(&self, now: Time) -> Vec<Violation> {
        let epoch = self.policy.read().clone();
        let mut raised = Vec::new();
        for shard in &self.shards {
            raised.extend(shard.lock().tick(&epoch.view(), now));
        }
        for &v in &raised {
            self.alert(v);
        }
        raised
    }

    // --- retention ---------------------------------------------------------

    /// The records a retention run at `horizon` would remove across all
    /// shards, without mutating anything. A durable deployment archives
    /// this bundle, then calls [`ShardedEngine::apply_retention`]; see
    /// `ltam_store::DurableEngine::run_retention` for that sequence.
    pub fn collect_prunable(
        &self,
        policy: &ltam_core::RetentionPolicy,
        horizon: Time,
    ) -> PrunedHistory {
        let mut out = PrunedHistory::default();
        for shard in &self.shards {
            out.merge(shard.lock().collect_prunable(policy, horizon));
        }
        out
    }

    /// Drop every record of an enabled class older than `horizon` on
    /// every shard and advance the watermarks. Enforcement semantics
    /// are unaffected: ledger counters, pending grants, active stays
    /// and the movement consistency guards all survive.
    pub fn apply_retention(&self, policy: &ltam_core::RetentionPolicy, horizon: Time) {
        for shard in &self.shards {
            shard.lock().apply_retention(policy, horizon);
        }
    }

    /// Run one retention maintenance pass at monitoring time `now`:
    /// prune each shard (collect + drop under one lock hold) at
    /// `policy.horizon_at(now)` and return everything removed. The
    /// caller decides the pruned records' fate — `ltam-store` archives
    /// them; discarding them makes historical queries past the
    /// watermark refuse rather than silently under-report.
    pub fn run_retention(&self, policy: &ltam_core::RetentionPolicy, now: Time) -> PrunedHistory {
        let horizon = policy.horizon_at(now);
        let mut out = PrunedHistory::default();
        for shard in &self.shards {
            out.merge(shard.lock().prune(policy, horizon));
        }
        out
    }

    /// Engine-level retention watermarks: per class, the maximum over
    /// all shards (answers below a class's watermark may be incomplete
    /// in live state).
    pub fn watermarks(&self) -> HistoryWatermarks {
        self.shards
            .iter()
            .map(|s| s.lock().watermarks())
            .fold(HistoryWatermarks::default(), HistoryWatermarks::join)
    }

    /// The movement-history retention watermark (shorthand for
    /// [`ShardedEngine::watermarks`]`.movements`).
    pub fn retention_watermark(&self) -> Time {
        self.watermarks().movements
    }

    // --- read access -------------------------------------------------------

    /// Operational counters, aggregated across shards under one brief
    /// lock hold each — the engine half of a serving layer's status
    /// endpoint (`ltam-serve` merges this with store-level counters).
    pub fn status(&self) -> EngineStatus {
        let mut status = EngineStatus {
            shards: self.shards.len(),
            ..EngineStatus::default()
        };
        for (i, shard) in self.shards.iter().enumerate() {
            let s = shard.lock();
            let row = ShardStatusRow {
                shard: i,
                movement_events: s.movements().len(),
                violations: s.violations().len(),
                audit_records: s.audit().len(),
            };
            status.live_movement_events += row.movement_events;
            status.live_violations += row.violations;
            status.audit_records += row.audit_records;
            status.events_pruned += s.movements().pruned_events();
            status.violations_pruned += s.violations_pruned();
            status.audit_pruned += s.audit_pruned();
            status.total_entries += s.ledger().total_entries();
            status.watermarks = status.watermarks.join(s.watermarks());
            status.per_shard.push(row);
        }
        status
    }

    /// Run read-only logic against one shard's state.
    pub fn read_shard<R>(&self, shard: usize, f: impl FnOnce(&ShardState) -> R) -> R {
        f(&self.shards[shard].lock())
    }

    /// All violations detected so far, concatenated in shard order
    /// (within a shard: detection order). Compare as a multiset against a
    /// single-engine run.
    pub fn violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend_from_slice(shard.lock().violations());
        }
        out
    }

    /// Number of violations detected so far.
    pub fn violation_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().violations().len())
            .sum()
    }

    /// Total entries recorded across all shards' ledgers.
    pub fn total_entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().ledger().total_entries())
            .sum()
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Closing the job channels stops the workers; join them so no
        // thread outlives the engine.
        self.workers.clear();
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

/// Replay one [`Event`] into a single-threaded engine — the reference
/// semantics the sharded engine is tested against.
pub fn apply_to_engine(engine: &mut AccessControlEngine, event: &Event) {
    match *event {
        Event::Request {
            time,
            subject,
            location,
        } => {
            engine.request_enter(time, subject, location);
        }
        Event::Enter {
            time,
            subject,
            location,
        } => {
            engine.observe_enter(time, subject, location);
        }
        Event::Exit {
            time,
            subject,
            location,
        } => {
            engine.observe_exit(time, subject, location);
        }
        Event::Tick { now } => {
            engine.tick(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltam_core::model::EntryLimit;
    use ltam_graph::examples::ntu_campus;
    use ltam_time::Interval;

    fn one_shot_core() -> (PolicyCore, SubjectId, LocationId) {
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut core = PolicyCore::new(ntu.model);
        let alice = SubjectId(0);
        core.add_authorization(
            Authorization::new(
                Interval::lit(5, 40),
                Interval::lit(20, 100),
                alice,
                cais,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        (core, alice, cais)
    }

    #[test]
    fn batch_matches_single_engine_on_clean_cycle() {
        let (core, alice, cais) = one_shot_core();
        let (engine, _alerts) = ShardedEngine::new(core, 4);
        let out = engine.ingest(&[
            Event::Request {
                time: Time(10),
                subject: alice,
                location: cais,
            },
            Event::Enter {
                time: Time(11),
                subject: alice,
                location: cais,
            },
            Event::Exit {
                time: Time(25),
                subject: alice,
                location: cais,
            },
        ]);
        assert_eq!(out.processed, 3);
        assert_eq!(out.granted, 1);
        assert_eq!(out.denied, 0);
        assert!(out.violations.is_empty());
        assert_eq!(engine.total_entries(), 1);
        // Exactly one shard saw traffic.
        assert_eq!(out.per_shard.len(), 1);
        assert_eq!(out.per_shard[0].events, 3);
    }

    #[test]
    fn ticks_broadcast_to_all_shards() {
        let (core, alice, cais) = one_shot_core();
        let (engine, alerts) = ShardedEngine::new(core, 4);
        engine.ingest(&[
            Event::Request {
                time: Time(10),
                subject: alice,
                location: cais,
            },
            Event::Enter {
                time: Time(11),
                subject: alice,
                location: cais,
            },
        ]);
        // Exit window [20, 100] closed at 100; the overstay fires once.
        let out = engine.ingest(&[
            Event::Tick { now: Time(101) },
            Event::Tick { now: Time(102) },
        ]);
        assert_eq!(out.violations.len(), 1);
        assert!(matches!(out.violations[0], Violation::Overstay { .. }));
        // Alerts carry monotone sequence numbers.
        let alert = alerts.try_iter().last().unwrap();
        assert_eq!(alert.violation, out.violations[0]);
    }

    #[test]
    fn status_aggregates_counters_across_shards() {
        let (core, alice, cais) = one_shot_core();
        let (engine, _alerts) = ShardedEngine::new(core, 4);
        engine.ingest(&[
            Event::Request {
                time: Time(10),
                subject: alice,
                location: cais,
            },
            Event::Enter {
                time: Time(11),
                subject: alice,
                location: cais,
            },
            Event::Exit {
                time: Time(15), // before [20, 100]: a violation
                subject: alice,
                location: cais,
            },
            // An unauthorized subject tailgates in.
            Event::Enter {
                time: Time(12),
                subject: SubjectId(7),
                location: cais,
            },
        ]);
        let status = engine.status();
        assert_eq!(status.shards, 4);
        assert_eq!(status.live_movement_events, 3); // two enters + one exit
        assert_eq!(status.live_violations, 2);
        assert_eq!(status.audit_records, 1);
        assert_eq!(status.total_entries, 1);
        assert_eq!(status.per_shard.len(), 4);
        assert_eq!(
            status.per_shard.iter().map(|r| r.violations).sum::<usize>(),
            status.live_violations
        );
        // The status round-trips through JSON (the wire carries it).
        let json = serde_json::to_string(&status).unwrap();
        let back: EngineStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(back, status);
    }

    #[test]
    fn epoch_swap_is_seen_by_the_next_batch() {
        let (core, alice, cais) = one_shot_core();
        let (engine, _alerts) = ShardedEngine::new(core, 2);
        // Lockdown lands before the swipe: denial takes precedence.
        engine.add_prohibition(Prohibition {
            subject: alice,
            location: cais,
            window: Interval::lit(8, 15),
        });
        let out = engine.ingest(&[Event::Request {
            time: Time(10),
            subject: alice,
            location: cais,
        }]);
        assert_eq!(out.denied, 1);
        // Outside the blocked window the original epoch's grant applies.
        let out = engine.ingest(&[Event::Request {
            time: Time(20),
            subject: alice,
            location: cais,
        }]);
        assert_eq!(out.granted, 1);
    }

    #[test]
    fn revocation_reaches_every_shard() {
        let (core, alice, cais) = one_shot_core();
        let (engine, _alerts) = ShardedEngine::new(core, 4);
        let out = engine.ingest(&[Event::Request {
            time: Time(10),
            subject: alice,
            location: cais,
        }]);
        assert_eq!(out.granted, 1);
        // Revoke the only authorization: the pending grant lapses.
        let id = engine
            .policy()
            .db()
            .iter()
            .next()
            .map(|(id, _, _)| id)
            .unwrap();
        assert!(engine.revoke_authorization(id).is_some());
        let out = engine.ingest(&[Event::Enter {
            time: Time(11),
            subject: alice,
            location: cais,
        }]);
        assert_eq!(out.violations.len(), 1);
        assert!(matches!(
            out.violations[0],
            Violation::UnauthorizedEntry { .. }
        ));
    }

    #[test]
    fn retention_across_shards_keeps_alert_seq_monotone() {
        use ltam_core::RetentionPolicy;
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let core = PolicyCore::new(ntu.model);
        let (engine, alerts) = ShardedEngine::new(core, 4);
        // Two tailgaters on (very likely) different shards.
        engine.ingest(&[
            Event::Enter {
                time: Time(5),
                subject: SubjectId(0),
                location: cais,
            },
            Event::Enter {
                time: Time(6),
                subject: SubjectId(1),
                location: cais,
            },
            Event::Exit {
                time: Time(7),
                subject: SubjectId(0),
                location: cais,
            },
            Event::Exit {
                time: Time(8),
                subject: SubjectId(1),
                location: cais,
            },
        ]);
        assert_eq!(engine.violation_count(), 2);
        let policy = RetentionPolicy::keep_last(10);
        let pruned = engine.run_retention(&policy, Time(100));
        assert_eq!(pruned.violations.len(), 2);
        assert_eq!(pruned.stays.len(), 2);
        assert_eq!(engine.violation_count(), 0);
        assert_eq!(engine.retention_watermark(), Time(90));
        assert_eq!(engine.watermarks().violations, Time(90));
        // Restart from images: the alert sequence resumes past the two
        // pruned violations, so the next alert's seq is 2, not 0.
        let images = engine.export_images();
        let states = images.into_iter().map(ShardState::from_image).collect();
        let (restarted, alerts2) = ShardedEngine::with_states((*engine.policy()).clone(), states);
        drop(alerts);
        restarted.ingest(&[Event::Enter {
            time: Time(200),
            subject: SubjectId(2),
            location: cais,
        }]);
        assert_eq!(alerts2.try_recv().unwrap().seq, 2);
        // collect_prunable alone must not mutate.
        let again = restarted.collect_prunable(&policy, Time(201));
        assert_eq!(again.violations.len(), 1);
        assert_eq!(restarted.violation_count(), 1);
    }

    #[test]
    fn shard_of_spreads_and_is_stable() {
        let n = 8;
        let mut hits = vec![0usize; n];
        for s in 0..1000u32 {
            let i = shard_of(SubjectId(s), n);
            assert_eq!(i, shard_of(SubjectId(s), n));
            hits[i] += 1;
        }
        // No empty shard, no shard with more than half the subjects.
        assert!(hits.iter().all(|&h| h > 0 && h < 500), "skewed: {hits:?}");
    }

    #[test]
    fn single_event_paths_match_batched() {
        let (core, alice, cais) = one_shot_core();
        let (a, _rx_a) = ShardedEngine::new(core.clone(), 3);
        let (b, _rx_b) = ShardedEngine::new(core, 3);
        let events = [
            Event::Request {
                time: Time(10),
                subject: alice,
                location: cais,
            },
            Event::Enter {
                time: Time(11),
                subject: alice,
                location: cais,
            },
            Event::Exit {
                time: Time(15), // before the exit window opens
                subject: alice,
                location: cais,
            },
            Event::Tick { now: Time(101) },
        ];
        a.ingest(&events);
        for e in &events {
            match *e {
                Event::Request {
                    time,
                    subject,
                    location,
                } => {
                    b.request_enter(time, subject, location);
                }
                Event::Enter {
                    time,
                    subject,
                    location,
                } => {
                    b.observe_enter(time, subject, location);
                }
                Event::Exit {
                    time,
                    subject,
                    location,
                } => {
                    b.observe_exit(time, subject, location);
                }
                Event::Tick { now } => {
                    b.tick(now);
                }
            }
        }
        assert_eq!(a.violations(), b.violations());
    }
}
