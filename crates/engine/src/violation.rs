//! Security violations and alerts.
//!
//! LTAM "monitors the user movement at all times" (§1) and generates "a
//! warning signal to the security guards" when an authorization is
//! violated (§3.2). The violation taxonomy covers exactly the failure
//! modes the paper calls out:
//!
//! * entering without an authorization grant — this is what defeats
//!   *tailgating* ("a group of users enters a restricted location based on
//!   a single user authorization");
//! * leaving outside the exit duration;
//! * staying past the end of the exit duration (*overstay*).

use ltam_core::db::AuthId;
use ltam_core::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A detected violation of the authorization policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Violation {
    /// A subject entered a location without a matching granted request.
    UnauthorizedEntry {
        /// When the entry was observed.
        time: Time,
        /// Who entered.
        subject: SubjectId,
        /// Where.
        location: LocationId,
    },
    /// A subject left outside the exit duration of the authorization that
    /// admitted them.
    ExitOutsideWindow {
        /// When the exit was observed.
        time: Time,
        /// Who left.
        subject: SubjectId,
        /// Where.
        location: LocationId,
        /// The authorization whose exit window was violated.
        auth: AuthId,
    },
    /// A subject is still inside after the exit duration closed.
    Overstay {
        /// When the overstay was detected.
        detected_at: Time,
        /// Who is overstaying.
        subject: SubjectId,
        /// Where.
        location: LocationId,
        /// The authorization whose exit window has closed.
        auth: AuthId,
    },
    /// A physically inconsistent movement report (sensor glitch or
    /// spoofing): the movements database rejected the event.
    InconsistentMovement {
        /// When the event was reported.
        time: Time,
        /// Who.
        subject: SubjectId,
        /// Where the event claimed to happen.
        location: LocationId,
    },
}

impl Violation {
    /// The subject involved.
    pub fn subject(&self) -> SubjectId {
        match *self {
            Violation::UnauthorizedEntry { subject, .. }
            | Violation::ExitOutsideWindow { subject, .. }
            | Violation::Overstay { subject, .. }
            | Violation::InconsistentMovement { subject, .. } => subject,
        }
    }

    /// The location involved.
    pub fn location(&self) -> LocationId {
        match *self {
            Violation::UnauthorizedEntry { location, .. }
            | Violation::ExitOutsideWindow { location, .. }
            | Violation::Overstay { location, .. }
            | Violation::InconsistentMovement { location, .. } => location,
        }
    }

    /// When it happened / was detected.
    pub fn time(&self) -> Time {
        match *self {
            Violation::UnauthorizedEntry { time, .. }
            | Violation::ExitOutsideWindow { time, .. }
            | Violation::InconsistentMovement { time, .. } => time,
            Violation::Overstay { detected_at, .. } => detected_at,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnauthorizedEntry {
                time,
                subject,
                location,
            } => write!(
                f,
                "t={time}: {subject} entered {location} without authorization"
            ),
            Violation::ExitOutsideWindow {
                time,
                subject,
                location,
                auth,
            } => write!(
                f,
                "t={time}: {subject} left {location} outside the exit window of {auth}"
            ),
            Violation::Overstay {
                detected_at,
                subject,
                location,
                auth,
            } => write!(
                f,
                "t={detected_at}: {subject} overstayed in {location} (exit window of {auth} closed)"
            ),
            Violation::InconsistentMovement {
                time,
                subject,
                location,
            } => write!(
                f,
                "t={time}: inconsistent movement report for {subject} at {location}"
            ),
        }
    }
}

/// An alert pushed to the security desk (the paper's "warning signal to the
/// security guards").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alert {
    /// The violation that triggered the alert.
    pub violation: Violation,
    /// Monotone alert sequence number.
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let vs = [
            Violation::UnauthorizedEntry {
                time: Time(1),
                subject: SubjectId(2),
                location: LocationId(3),
            },
            Violation::ExitOutsideWindow {
                time: Time(4),
                subject: SubjectId(5),
                location: LocationId(6),
                auth: AuthId(0),
            },
            Violation::Overstay {
                detected_at: Time(7),
                subject: SubjectId(8),
                location: LocationId(9),
                auth: AuthId(1),
            },
            Violation::InconsistentMovement {
                time: Time(10),
                subject: SubjectId(11),
                location: LocationId(12),
            },
        ];
        assert_eq!(vs[0].time(), Time(1));
        assert_eq!(vs[1].subject(), SubjectId(5));
        assert_eq!(vs[2].location(), LocationId(9));
        assert_eq!(vs[3].time(), Time(10));
    }

    #[test]
    fn display_is_informative() {
        let v = Violation::Overstay {
            detected_at: Time(120),
            subject: SubjectId(1),
            location: LocationId(2),
            auth: AuthId(3),
        };
        let s = v.to_string();
        assert!(s.contains("overstayed"));
        assert!(s.contains("t=120"));
    }
}
