//! Recursive-descent parser for the query language.

use super::ast::Query;
use super::lexer::{lex, LexError, Token};
use ltam_time::{Bound, Interval, Time};
use std::fmt;

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError {
                message: format!("expected {expected}, found {t}"),
            },
            None => ParseError {
                message: format!("expected {expected}, found end of input"),
            },
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Keyword(k)) if k == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(&format!("keyword {kw}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw)
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(_)) => {
                let Some(Token::Ident(s)) = self.next() else {
                    unreachable!("peeked an ident");
                };
                Ok(s)
            }
            _ => Err(self.err(what)),
        }
    }

    fn number(&mut self, what: &str) -> Result<u64, ParseError> {
        match self.peek() {
            Some(Token::Number(_)) => {
                let Some(Token::Number(n)) = self.next() else {
                    unreachable!("peeked a number");
                };
                Ok(n)
            }
            _ => Err(self.err(what)),
        }
    }

    /// `[a, b]` where `b` may be `inf`/`∞`.
    fn interval(&mut self) -> Result<Interval, ParseError> {
        match self.peek() {
            Some(Token::LBracket) => {
                self.pos += 1;
            }
            _ => return Err(self.err("'['")),
        }
        let start = self.number("interval start")?;
        match self.peek() {
            Some(Token::Comma) => {
                self.pos += 1;
            }
            _ => return Err(self.err("','")),
        }
        let end = match self.peek() {
            Some(Token::Infinity) => {
                self.pos += 1;
                Bound::Unbounded
            }
            Some(Token::Number(_)) => Bound::At(Time(self.number("interval end")?)),
            _ => return Err(self.err("interval end")),
        };
        match self.peek() {
            Some(Token::RBracket) => {
                self.pos += 1;
            }
            _ => return Err(self.err("']'")),
        }
        Interval::new(Time(start), end).map_err(|e| ParseError {
            message: e.to_string(),
        })
    }

    fn finish(&self, q: Query) -> Result<Query, ParseError> {
        if self.pos != self.tokens.len() {
            return Err(self.err("end of query"));
        }
        Ok(q)
    }
}

/// Parse one query.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let mut p = Parser {
        tokens: lex(input)?,
        pos: 0,
    };
    let Some(head) = p.next() else {
        return Err(ParseError {
            message: "empty query".into(),
        });
    };
    let Token::Keyword(head) = head else {
        return Err(ParseError {
            message: format!("queries start with a keyword, found {head}"),
        });
    };
    match head.as_str() {
        "ACCESSIBLE" => {
            p.keyword("FOR")?;
            let subject = p.ident("subject name")?;
            p.finish(Query::Accessible { subject })
        }
        "INACCESSIBLE" => {
            p.keyword("FOR")?;
            let subject = p.ident("subject name")?;
            p.finish(Query::Inaccessible { subject })
        }
        "CAN" => {
            let subject = p.ident("subject name")?;
            p.keyword("ENTER")?;
            let location = p.ident("location name")?;
            p.keyword("AT")?;
            let t = p.number("time")?;
            p.finish(Query::CanEnter {
                subject,
                location,
                at: Time(t),
            })
        }
        "WHERE" => {
            let subject = p.ident("subject name")?;
            p.keyword("AT")?;
            let t = p.number("time")?;
            p.finish(Query::WhereIs {
                subject,
                at: Time(t),
            })
        }
        "WHO" => {
            p.keyword("IN")?;
            let location = p.ident("location name")?;
            let window = if p.at_keyword("AT") {
                p.keyword("AT")?;
                Interval::point(p.number("time")?)
            } else {
                p.keyword("DURING")?;
                p.interval()?
            };
            p.finish(Query::WhoIn { location, window })
        }
        "CONTACTS" => {
            p.keyword("OF")?;
            let subject = p.ident("subject name")?;
            p.keyword("DURING")?;
            let window = p.interval()?;
            p.finish(Query::Contacts { subject, window })
        }
        "EARLIEST" => {
            let subject = p.ident("subject name")?;
            p.keyword("TO")?;
            let location = p.ident("location name")?;
            let from = if p.at_keyword("FROM") {
                p.keyword("FROM")?;
                Time(p.number("time")?)
            } else {
                Time(0)
            };
            p.finish(Query::Earliest {
                subject,
                location,
                from,
            })
        }
        "VIOLATIONS" => {
            let mut subject = None;
            let mut window = None;
            if p.at_keyword("FOR") {
                p.keyword("FOR")?;
                subject = Some(p.ident("subject name")?);
            }
            if p.at_keyword("DURING") {
                p.keyword("DURING")?;
                window = Some(p.interval()?);
            }
            p.finish(Query::Violations { subject, window })
        }
        other => Err(ParseError {
            message: format!("unknown query form starting with {other}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_query_form() {
        assert_eq!(
            parse("ACCESSIBLE FOR Alice").unwrap(),
            Query::Accessible {
                subject: "Alice".into()
            }
        );
        assert_eq!(
            parse("inaccessible for Alice").unwrap(),
            Query::Inaccessible {
                subject: "Alice".into()
            }
        );
        assert_eq!(
            parse("CAN Alice ENTER CAIS AT 10").unwrap(),
            Query::CanEnter {
                subject: "Alice".into(),
                location: "CAIS".into(),
                at: Time(10)
            }
        );
        assert_eq!(
            parse("WHERE Alice AT 15").unwrap(),
            Query::WhereIs {
                subject: "Alice".into(),
                at: Time(15)
            }
        );
        assert_eq!(
            parse("WHO IN CAIS AT 15").unwrap(),
            Query::WhoIn {
                location: "CAIS".into(),
                window: Interval::point(15u64)
            }
        );
        assert_eq!(
            parse("WHO IN SCE.GO DURING [10, 50]").unwrap(),
            Query::WhoIn {
                location: "SCE.GO".into(),
                window: Interval::lit(10, 50)
            }
        );
        assert_eq!(
            parse("CONTACTS OF Alice DURING [0, inf]").unwrap(),
            Query::Contacts {
                subject: "Alice".into(),
                window: Interval::from_start(0u64)
            }
        );
        assert_eq!(
            parse("VIOLATIONS").unwrap(),
            Query::Violations {
                subject: None,
                window: None
            }
        );
        assert_eq!(
            parse("VIOLATIONS FOR Alice DURING [0, 50]").unwrap(),
            Query::Violations {
                subject: Some("Alice".into()),
                window: Some(Interval::lit(0, 50))
            }
        );
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("").is_err());
        assert!(parse("Alice CAN ENTER").is_err());
        assert!(parse("ACCESSIBLE Alice").is_err());
        assert!(parse("CAN Alice ENTER CAIS AT").is_err());
        assert!(parse("WHO IN CAIS DURING [50, 10]").is_err()); // empty interval
        assert!(parse("WHO IN CAIS DURING [10, 50] extra").is_err());
        assert!(parse("FROB THE KNOB").is_err());
    }

    #[test]
    fn error_messages_name_the_expectation() {
        let e = parse("CAN Alice CAIS").unwrap_err();
        assert!(e.message.contains("ENTER"), "{}", e.message);
        let e = parse("WHO IN CAIS DURING [10").unwrap_err();
        assert!(e.message.contains("','"), "{}", e.message);
    }
}
