//! Tokenizer for the query language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A keyword (stored uppercase).
    Keyword(String),
    /// A bare or quoted name (`Alice`, `SCE.GO`, `"Dean Office"`).
    Ident(String),
    /// An unsigned number.
    Number(u64),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `inf` / `∞`
    Infinity,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(s) => write!(f, "{s:?}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Infinity => write!(f, "∞"),
        }
    }
}

/// A tokenization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for LexError {}

const KEYWORDS: &[&str] = &[
    "ACCESSIBLE",
    "INACCESSIBLE",
    "FOR",
    "CAN",
    "ENTER",
    "AT",
    "WHERE",
    "WHO",
    "IN",
    "DURING",
    "CONTACTS",
    "OF",
    "VIOLATIONS",
    "EARLIEST",
    "TO",
    "FROM",
];

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '.' | '_' | '-')
}

/// Tokenize a query string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(at, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '[' => {
                chars.next();
                out.push(Token::LBracket);
            }
            ']' => {
                chars.next();
                out.push(Token::RBracket);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '∞' => {
                chars.next();
                out.push(Token::Infinity);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for (_, c) in chars.by_ref() {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(LexError {
                        at,
                        message: "unterminated string".into(),
                    });
                }
                out.push(Token::Ident(s));
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(&(_, d)) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|x| x.checked_add(v as u64))
                            .ok_or_else(|| LexError {
                                at,
                                message: "number too large".into(),
                            })?;
                        chars.next();
                    } else if is_word_char(d) {
                        return Err(LexError {
                            at,
                            message: format!("malformed number before {d:?}"),
                        });
                    } else {
                        break;
                    }
                }
                out.push(Token::Number(n));
            }
            c if is_word_char(c) => {
                let mut s = String::new();
                while let Some(&(_, d)) = chars.peek() {
                    if is_word_char(d) {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let upper = s.to_ascii_uppercase();
                if upper == "INF" {
                    out.push(Token::Infinity);
                } else if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(s));
                }
            }
            other => {
                return Err(LexError {
                    at,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("can Alice enter CAIS at 10").unwrap();
        assert_eq!(toks[0], Token::Keyword("CAN".into()));
        assert_eq!(toks[1], Token::Ident("Alice".into()));
        assert_eq!(toks[2], Token::Keyword("ENTER".into()));
        assert_eq!(toks[4], Token::Keyword("AT".into()));
        assert_eq!(toks[5], Token::Number(10));
    }

    #[test]
    fn dotted_names_are_single_idents() {
        let toks = lex("WHO IN SCE.GO AT 5").unwrap();
        assert_eq!(toks[2], Token::Ident("SCE.GO".into()));
    }

    #[test]
    fn quoted_strings_allow_spaces() {
        let toks = lex("WHERE \"Dean of SCE\" AT 3").unwrap();
        assert_eq!(toks[1], Token::Ident("Dean of SCE".into()));
        assert!(matches!(
            lex("WHERE \"unterminated").unwrap_err(),
            LexError { .. }
        ));
    }

    #[test]
    fn intervals_and_infinity() {
        let toks = lex("DURING [5, inf]").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("DURING".into()),
                Token::LBracket,
                Token::Number(5),
                Token::Comma,
                Token::Infinity,
                Token::RBracket,
            ]
        );
        assert_eq!(lex("[1, ∞]").unwrap()[3], Token::Infinity);
    }

    #[test]
    fn malformed_numbers_rejected() {
        assert!(lex("AT 12x").is_err());
        assert!(lex("AT 99999999999999999999999").is_err());
    }

    #[test]
    fn unexpected_characters_rejected() {
        let e = lex("WHO ? WHERE").unwrap_err();
        assert!(e.message.contains("unexpected"));
        assert_eq!(e.at, 4);
    }
}
