//! The query engine and its query language (Figure 3's fifth component).
//!
//! "The query engine evaluates queries by the system administrators and the
//! access control engine based on the information stored in all of the
//! databases. The design of a query language ... will be part of our future
//! work" — this module supplies that language:
//!
//! ```text
//! ACCESSIBLE FOR Alice                 -- Algorithm 1 complement
//! INACCESSIBLE FOR Alice               -- §6's headline query
//! CAN Alice ENTER CAIS AT 10           -- Definition 7 probe
//! WHERE Alice AT 15                    -- historical whereabouts
//! WHO IN CAIS AT 15                    -- occupancy snapshot
//! WHO IN CAIS DURING [10, 50]          -- presence over a window
//! CONTACTS OF Alice DURING [0, 100]    -- co-location (SARS tracing)
//! VIOLATIONS FOR Alice DURING [0, 50]  -- filtered violation log
//! ```
//!
//! Keywords are case-insensitive; subject and location names are bare
//! words (dots allowed: `SCE.GO`) or double-quoted strings; `[a, b]`
//! intervals accept `inf`/`∞` as the upper bound.

mod ast;
mod eval;
mod lexer;
mod parser;

pub use ast::{Query, QueryResult};
pub use eval::{eval, EvalError, QueryContext};
pub use lexer::{LexError, Token};
pub use parser::{parse, ParseError};

/// Parse and evaluate a query string in one step.
pub fn run(input: &str, ctx: &QueryContext<'_>) -> Result<QueryResult, QueryError> {
    let query = parse(input)?;
    Ok(eval(&query, ctx)?)
}

/// Any query-pipeline failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The input did not parse.
    Parse(ParseError),
    /// The query referenced unknown names.
    Eval(EvalError),
}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<EvalError> for QueryError {
    fn from(e: EvalError) -> Self {
        QueryError::Eval(e)
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "parse error: {e}"),
            QueryError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}
