//! Query evaluation over the engine's databases.

use super::ast::{Query, QueryResult};
use crate::movement::MovementsDb;
use crate::profile::UserProfileDb;
use crate::violation::Violation;
use ltam_core::db::AuthorizationDb;
use ltam_core::decision::{check_access_restricted, AccessRequest, Decision};
use ltam_core::inaccessible::find_inaccessible;
use ltam_core::ledger::UsageLedger;
use ltam_core::planner::earliest_visit;
use ltam_core::prohibition::{restrict_authorizations, ProhibitionDb};
use ltam_core::subject::SubjectId;
use ltam_graph::{EffectiveGraph, LocationId, LocationModel};
use ltam_time::Time;
use std::fmt;

/// Read-only view over every database the query engine consults.
pub struct QueryContext<'a> {
    /// Location layout.
    pub model: &'a LocationModel,
    /// Flattened graph.
    pub graph: &'a EffectiveGraph,
    /// Authorization database.
    pub db: &'a AuthorizationDb,
    /// Prohibitions (denial takes precedence).
    pub prohibitions: &'a ProhibitionDb,
    /// Usage counters.
    pub ledger: &'a UsageLedger,
    /// Movements database.
    pub movements: &'a MovementsDb,
    /// Detected violations.
    pub violations: &'a [Violation],
    /// User profiles (name resolution).
    pub profiles: &'a UserProfileDb,
    /// Movement history is complete from this chronon on (earlier
    /// history pruned by retention). Historical queries dipping below
    /// it refuse with [`EvalError::BeyondRetention`] instead of
    /// silently under-reporting; `Time::ZERO` disables the check.
    pub history_from: Time,
    /// Same watermark for the violation log.
    pub violations_from: Time,
}

/// Name-resolution and history-coverage failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// No such subject.
    UnknownSubject(String),
    /// No such location.
    UnknownLocation(String),
    /// The query reaches before the retention watermark: the live
    /// engine no longer holds that history, and answering from what
    /// remains would silently under-report. Tier-aware deployments
    /// (`ltam-store`'s `DurableEngine`) answer such queries by merging
    /// the archive instead.
    BeyondRetention {
        /// The earliest chronon the query needs.
        requested: Time,
        /// The chronon live history is complete from.
        live_from: Time,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownSubject(s) => write!(f, "unknown subject {s:?}"),
            EvalError::UnknownLocation(l) => write!(f, "unknown location {l:?}"),
            EvalError::BeyondRetention {
                requested,
                live_from,
            } => write!(
                f,
                "history at t={requested} was pruned by retention (live history starts at \
                 t={live_from}); query the archive tier or widen the retention horizon"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

fn subject_id(ctx: &QueryContext<'_>, name: &str) -> Result<SubjectId, EvalError> {
    ctx.profiles
        .id_of(name)
        .ok_or_else(|| EvalError::UnknownSubject(name.to_string()))
}

fn location_id(ctx: &QueryContext<'_>, name: &str) -> Result<LocationId, EvalError> {
    ctx.model
        .id(name)
        .map_err(|_| EvalError::UnknownLocation(name.to_string()))
}

fn subject_name(ctx: &QueryContext<'_>, id: SubjectId) -> String {
    ctx.profiles
        .name_of(id)
        .map(str::to_string)
        .unwrap_or_else(|| id.to_string())
}

/// Refuse a historical query whose earliest needed chronon precedes the
/// class watermark `live_from` (see [`EvalError::BeyondRetention`]).
fn check_retained(requested: Time, live_from: Time) -> Result<(), EvalError> {
    if requested < live_from {
        return Err(EvalError::BeyondRetention {
            requested,
            live_from,
        });
    }
    Ok(())
}

/// Evaluate a parsed query.
pub fn eval(query: &Query, ctx: &QueryContext<'_>) -> Result<QueryResult, EvalError> {
    match query {
        Query::Accessible { subject } | Query::Inaccessible { subject } => {
            let s = subject_id(ctx, subject)?;
            let auths =
                restrict_authorizations(&ctx.db.per_location_for_subject(s), s, ctx.prohibitions);
            let report = find_inaccessible(ctx.graph, &auths);
            let want_inaccessible = matches!(query, Query::Inaccessible { .. });
            let names = ctx
                .graph
                .locations()
                .filter(|&l| report.is_inaccessible(l) == want_inaccessible)
                .map(|l| ctx.model.name(l).to_string())
                .collect();
            Ok(QueryResult::Locations(names))
        }
        Query::CanEnter {
            subject,
            location,
            at,
        } => {
            let s = subject_id(ctx, subject)?;
            let l = location_id(ctx, location)?;
            let decision = check_access_restricted(
                ctx.db,
                ctx.prohibitions,
                ctx.ledger,
                &AccessRequest {
                    time: *at,
                    subject: s,
                    location: l,
                },
            );
            Ok(QueryResult::Decision {
                granted: matches!(decision, Decision::Granted { .. }),
                detail: decision.to_string(),
            })
        }
        Query::Earliest {
            subject,
            location,
            from,
        } => {
            let s = subject_id(ctx, subject)?;
            let l = location_id(ctx, location)?;
            let auths =
                restrict_authorizations(&ctx.db.per_location_for_subject(s), s, ctx.prohibitions);
            let itinerary = earliest_visit(ctx.graph, &auths, l, *from).map(|it| {
                it.steps
                    .iter()
                    .map(|step| (ctx.model.name(step.location).to_string(), step.enter_at))
                    .collect()
            });
            Ok(QueryResult::Itinerary(itinerary))
        }
        Query::WhereIs { subject, at } => {
            let s = subject_id(ctx, subject)?;
            // A live stay straddling the watermark can still answer a
            // pre-watermark chronon authoritatively (stays are disjoint
            // per subject); only a *miss* below the watermark is
            // unanswerable from live state.
            let hit = ctx.movements.whereabouts(s, *at);
            if hit.is_none() {
                check_retained(*at, ctx.history_from)?;
            }
            Ok(QueryResult::Whereabouts(
                hit.map(|l| ctx.model.name(l).to_string()),
            ))
        }
        Query::WhoIn { location, window } => {
            let l = location_id(ctx, location)?;
            check_retained(window.start(), ctx.history_from)?;
            let rows = ctx
                .movements
                .present_during(l, *window)
                .into_iter()
                .map(|(s, w)| (subject_name(ctx, s), w))
                .collect();
            Ok(QueryResult::Presence(rows))
        }
        Query::Contacts { subject, window } => {
            let s = subject_id(ctx, subject)?;
            check_retained(window.start(), ctx.history_from)?;
            let rows = ctx
                .movements
                .contacts(s, *window)
                .into_iter()
                .map(|c| {
                    (
                        subject_name(ctx, c.other),
                        ctx.model.name(c.location).to_string(),
                        c.overlap,
                    )
                })
                .collect();
            Ok(QueryResult::Contacts(rows))
        }
        Query::Violations { subject, window } => {
            let filter_subject = subject
                .as_deref()
                .map(|name| subject_id(ctx, name))
                .transpose()?;
            let needed_from = window.map(|w| w.start()).unwrap_or(Time::ZERO);
            check_retained(needed_from, ctx.violations_from)?;
            let rows = ctx
                .violations
                .iter()
                .filter(|v| filter_subject.is_none_or(|s| v.subject() == s))
                .filter(|v| window.is_none_or(|w| w.contains(v.time())))
                .map(|v| render_violation(ctx, v))
                .collect();
            Ok(QueryResult::Violations(rows))
        }
    }
}

fn render_violation(ctx: &QueryContext<'_>, v: &Violation) -> String {
    let subject = subject_name(ctx, v.subject());
    let location = ctx.model.name(v.location());
    match v {
        Violation::UnauthorizedEntry { time, .. } => {
            format!("t={time}: {subject} entered {location} without authorization")
        }
        Violation::ExitOutsideWindow { time, auth, .. } => {
            format!("t={time}: {subject} left {location} outside the exit window of {auth}")
        }
        Violation::Overstay {
            detected_at, auth, ..
        } => format!(
            "t={detected_at}: {subject} overstayed in {location} (exit window of {auth} closed)"
        ),
        Violation::InconsistentMovement { time, .. } => {
            format!("t={time}: inconsistent movement report for {subject} at {location}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::run;
    use super::*;
    use crate::engine::AccessControlEngine;
    use ltam_core::model::{Authorization, EntryLimit};
    use ltam_graph::examples::ntu_campus;
    use ltam_time::{Interval, Time};

    fn scenario() -> AccessControlEngine {
        let ntu = ntu_campus();
        let (cais, go, c) = (ntu.cais, ntu.sce_go, ntu.sce_c);
        let mut e = AccessControlEngine::new(ntu.model);
        let alice = e.profiles_mut().add_user("Alice", "researcher");
        let bob = e.profiles_mut().add_user("Bob", "professor");
        for l in [go, ntu.sce_a, ntu.sce_b, cais, c] {
            e.add_authorization(
                Authorization::new(
                    Interval::ALL,
                    Interval::ALL,
                    alice,
                    l,
                    EntryLimit::Unbounded,
                )
                .unwrap(),
            );
        }
        e.add_authorization(
            Authorization::new(
                Interval::lit(0, 50),
                Interval::lit(0, 100),
                bob,
                cais,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        // Alice walks GO → CAIS is not adjacent; just enter GO and CAIS
        // directly with grants for the movement log.
        e.request_enter(Time(5), alice, go);
        e.observe_enter(Time(5), alice, go);
        e.observe_exit(Time(10), alice, go);
        e.request_enter(Time(12), bob, cais);
        e.observe_enter(Time(12), bob, cais);
        // Alice joins Bob in CAIS.
        e.request_enter(Time(15), alice, cais);
        e.observe_enter(Time(15), alice, cais);
        e
    }

    fn ctx(e: &AccessControlEngine) -> QueryContext<'_> {
        e.query_context()
    }

    #[test]
    fn accessible_and_inaccessible_partition() {
        let e = scenario();
        let acc = run("ACCESSIBLE FOR Alice", &ctx(&e)).unwrap();
        let inacc = run("INACCESSIBLE FOR Alice", &ctx(&e)).unwrap();
        let (QueryResult::Locations(a), QueryResult::Locations(i)) = (acc, inacc) else {
            panic!("wrong result kinds");
        };
        assert_eq!(a.len() + i.len(), e.graph().len());
        assert!(a.contains(&"CAIS".to_string()));
        assert!(a.contains(&"SCE.GO".to_string()));
        assert!(i.contains(&"Lab1".to_string())); // EEE is unauthorized
    }

    #[test]
    fn can_enter_reports_decision() {
        let e = scenario();
        let r = run("CAN Bob ENTER CAIS AT 20", &ctx(&e)).unwrap();
        // Bob's single entry is already used.
        assert_eq!(
            r,
            QueryResult::Decision {
                granted: false,
                detail: "denied: entry count exhausted".into()
            }
        );
        let r = run("CAN Alice ENTER CAIS AT 20", &ctx(&e)).unwrap();
        assert!(matches!(r, QueryResult::Decision { granted: true, .. }));
    }

    #[test]
    fn where_is_historical() {
        let e = scenario();
        let r = run("WHERE Alice AT 7", &ctx(&e)).unwrap();
        assert_eq!(r, QueryResult::Whereabouts(Some("SCE.GO".into())));
        let r = run("WHERE Alice AT 11", &ctx(&e)).unwrap();
        assert_eq!(r, QueryResult::Whereabouts(None));
    }

    #[test]
    fn who_in_lists_presence() {
        let e = scenario();
        let r = run("WHO IN CAIS DURING [0, 100]", &ctx(&e)).unwrap();
        let QueryResult::Presence(rows) = r else {
            panic!("wrong kind");
        };
        let names: Vec<&str> = rows.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(names, vec!["Alice", "Bob"]);
    }

    #[test]
    fn contacts_trace_colocation() {
        let e = scenario();
        let r = run("CONTACTS OF Bob DURING [0, inf]", &ctx(&e)).unwrap();
        let QueryResult::Contacts(rows) = r else {
            panic!("wrong kind");
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "Alice");
        assert_eq!(rows[0].1, "CAIS");
        assert_eq!(rows[0].2, Interval::from_start(15u64));
    }

    #[test]
    fn violations_filterable() {
        let mut e = scenario();
        let mallory = e.profiles_mut().add_user("Mallory", "?");
        e.observe_enter(Time(30), mallory, e.model().id("CHIPES").unwrap());
        let all = run("VIOLATIONS", &ctx(&e)).unwrap();
        let QueryResult::Violations(rows) = all else {
            panic!("wrong kind");
        };
        assert_eq!(rows.len(), 1);
        assert!(rows[0].contains("Mallory"));
        assert!(rows[0].contains("CHIPES"));
        let none = run("VIOLATIONS FOR Alice", &ctx(&e)).unwrap();
        assert_eq!(none, QueryResult::Violations(vec![]));
        let windowed = run("VIOLATIONS DURING [0, 10]", &ctx(&e)).unwrap();
        assert_eq!(windowed, QueryResult::Violations(vec![]));
    }

    #[test]
    fn pruned_history_refuses_instead_of_under_reporting() {
        use ltam_core::RetentionPolicy;
        let mut e = scenario();
        let mallory = e.profiles_mut().add_user("Mallory", "?");
        e.observe_enter(Time(30), mallory, e.model().id("CHIPES").unwrap());
        e.observe_exit(Time(31), mallory, e.model().id("CHIPES").unwrap());
        e.run_retention(&RetentionPolicy::keep_last(10), Time(50));
        assert_eq!(e.watermarks().movements, Time(40));
        // Below the watermark: refuse, don't guess.
        for q in [
            "WHERE Alice AT 7",
            "WHO IN CAIS DURING [0, 100]",
            "CONTACTS OF Bob DURING [0, inf]",
            "VIOLATIONS",
            "VIOLATIONS DURING [0, 39]",
        ] {
            let err = run(q, &ctx(&e)).unwrap_err();
            assert!(
                matches!(
                    err,
                    super::super::QueryError::Eval(EvalError::BeyondRetention { .. })
                ),
                "{q}: {err:?}"
            );
        }
        // At or above the watermark: answers as usual (and an open stay
        // straddling the boundary still answers below it).
        assert_eq!(
            run("WHERE Alice AT 20", &ctx(&e)).unwrap(),
            QueryResult::Whereabouts(Some("CAIS".into()))
        );
        assert_eq!(
            run("VIOLATIONS DURING [40, 100]", &ctx(&e)).unwrap(),
            QueryResult::Violations(vec![])
        );
        assert!(run("WHO IN CAIS DURING [40, 100]", &ctx(&e)).is_ok());
        let msg = run("WHERE Bob AT 2", &ctx(&e)).unwrap_err().to_string();
        assert!(msg.contains("pruned by retention"), "{msg}");
    }

    #[test]
    fn unknown_names_error() {
        let e = scenario();
        assert!(matches!(
            run("ACCESSIBLE FOR Nobody", &ctx(&e)),
            Err(super::super::QueryError::Eval(EvalError::UnknownSubject(_)))
        ));
        assert!(matches!(
            run("CAN Alice ENTER Nowhere AT 3", &ctx(&e)),
            Err(super::super::QueryError::Eval(EvalError::UnknownLocation(
                _
            )))
        ));
    }
}
