//! Query AST and results.

use ltam_time::{Interval, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed administrator query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Query {
    /// `ACCESSIBLE FOR s` — locations the subject can reach (Algorithm 1
    /// complement).
    Accessible {
        /// Subject name.
        subject: String,
    },
    /// `INACCESSIBLE FOR s` — Definition 9.
    Inaccessible {
        /// Subject name.
        subject: String,
    },
    /// `CAN s ENTER l AT t` — Definition 7 probe.
    CanEnter {
        /// Subject name.
        subject: String,
        /// Location name.
        location: String,
        /// Probe time.
        at: Time,
    },
    /// `WHERE s AT t` — historical whereabouts.
    WhereIs {
        /// Subject name.
        subject: String,
        /// Probe time.
        at: Time,
    },
    /// `WHO IN l AT t` / `WHO IN l DURING [a,b]` — presence.
    WhoIn {
        /// Location name.
        location: String,
        /// Window (point interval for `AT`).
        window: Interval,
    },
    /// `CONTACTS OF s DURING [a,b]` — co-location join.
    Contacts {
        /// Subject name.
        subject: String,
        /// Exposure window.
        window: Interval,
    },
    /// `VIOLATIONS [FOR s] [DURING [a,b]]`.
    Violations {
        /// Optional subject filter.
        subject: Option<String>,
        /// Optional time filter.
        window: Option<Interval>,
    },
    /// `EARLIEST s TO l [FROM t]` — temporal route planning.
    Earliest {
        /// Subject name.
        subject: String,
        /// Target location name.
        location: String,
        /// Start time (default 0).
        from: Time,
    },
}

impl fmt::Display for Query {
    /// Render in canonical query-language syntax; `parse ∘ to_string` is
    /// the identity (checked by property tests).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |s: &str| {
            if s.chars()
                .all(|c| c.is_alphanumeric() || matches!(c, '.' | '_' | '-'))
                && !s.is_empty()
                && !s.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                s.to_string()
            } else {
                format!("{s:?}")
            }
        };
        match self {
            Query::Accessible { subject } => write!(f, "ACCESSIBLE FOR {}", name(subject)),
            Query::Inaccessible { subject } => {
                write!(f, "INACCESSIBLE FOR {}", name(subject))
            }
            Query::CanEnter {
                subject,
                location,
                at,
            } => write!(f, "CAN {} ENTER {} AT {at}", name(subject), name(location)),
            Query::WhereIs { subject, at } => write!(f, "WHERE {} AT {at}", name(subject)),
            Query::WhoIn { location, window } => {
                write!(f, "WHO IN {} DURING {window}", name(location))
            }
            Query::Contacts { subject, window } => {
                write!(f, "CONTACTS OF {} DURING {window}", name(subject))
            }
            Query::Violations { subject, window } => {
                write!(f, "VIOLATIONS")?;
                if let Some(s) = subject {
                    write!(f, " FOR {}", name(s))?;
                }
                if let Some(w) = window {
                    write!(f, " DURING {w}")?;
                }
                Ok(())
            }
            Query::Earliest {
                subject,
                location,
                from,
            } => write!(
                f,
                "EARLIEST {} TO {} FROM {from}",
                name(subject),
                name(location)
            ),
        }
    }
}

/// Evaluation output, ready for display.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryResult {
    /// A list of location names.
    Locations(Vec<String>),
    /// A yes/no decision with a human-readable detail line.
    Decision {
        /// True if granted.
        granted: bool,
        /// Explanation.
        detail: String,
    },
    /// Whereabouts: a location name, or none.
    Whereabouts(Option<String>),
    /// Presence rows: `(subject, interval)`.
    Presence(Vec<(String, Interval)>),
    /// Contact rows: `(other subject, location, overlap)`.
    Contacts(Vec<(String, String, Interval)>),
    /// Rendered violation lines.
    Violations(Vec<String>),
    /// A planned itinerary: `(location, enter_at)` hops; `None` when the
    /// target is unreachable.
    Itinerary(Option<Vec<(String, Time)>>),
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryResult::Locations(ls) => {
                if ls.is_empty() {
                    writeln!(f, "(none)")?;
                }
                for l in ls {
                    writeln!(f, "{l}")?;
                }
                Ok(())
            }
            QueryResult::Decision { granted, detail } => {
                writeln!(f, "{}: {detail}", if *granted { "YES" } else { "NO" })
            }
            QueryResult::Whereabouts(Some(l)) => writeln!(f, "{l}"),
            QueryResult::Whereabouts(None) => writeln!(f, "(not inside any location)"),
            QueryResult::Presence(rows) => {
                if rows.is_empty() {
                    writeln!(f, "(nobody)")?;
                }
                for (s, w) in rows {
                    writeln!(f, "{s} during {w}")?;
                }
                Ok(())
            }
            QueryResult::Contacts(rows) => {
                if rows.is_empty() {
                    writeln!(f, "(no contacts)")?;
                }
                for (s, l, w) in rows {
                    writeln!(f, "{s} in {l} during {w}")?;
                }
                Ok(())
            }
            QueryResult::Violations(rows) => {
                if rows.is_empty() {
                    writeln!(f, "(no violations)")?;
                }
                for v in rows {
                    writeln!(f, "{v}")?;
                }
                Ok(())
            }
            QueryResult::Itinerary(None) => writeln!(f, "(unreachable)"),
            QueryResult::Itinerary(Some(hops)) => {
                for (l, t) in hops {
                    writeln!(f, "enter {l} at t={t}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_rows() {
        let r = QueryResult::Locations(vec!["CAIS".into(), "SCE.GO".into()]);
        assert_eq!(r.to_string(), "CAIS\nSCE.GO\n");
        let d = QueryResult::Decision {
            granted: true,
            detail: "granted by A0".into(),
        };
        assert_eq!(d.to_string(), "YES: granted by A0\n");
        assert_eq!(
            QueryResult::Whereabouts(None).to_string(),
            "(not inside any location)\n"
        );
        assert_eq!(QueryResult::Presence(vec![]).to_string(), "(nobody)\n");
    }
}
