//! The user profile database (Figure 3).
//!
//! "The user profile database stores user profiles, which are used for
//! creating authorizations, or deriving authorizations" — in particular it
//! answers the `Supervisor_Of` operator of §4 Example 1. Profiles carry a
//! display name, an organizational role, an optional supervisor and any
//! number of group memberships.

use ltam_core::rules::ProfileProvider;
use ltam_core::subject::{SubjectId, SubjectRegistry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One user's profile row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Display name (also interned in the registry).
    pub name: String,
    /// Organizational role, free-form ("researcher", "guard").
    pub role: String,
    /// Supervisor, if any.
    pub supervisor: Option<SubjectId>,
    /// Group memberships.
    pub groups: BTreeSet<String>,
}

/// The user profile database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UserProfileDb {
    registry: SubjectRegistry,
    profiles: BTreeMap<SubjectId, Profile>,
}

impl UserProfileDb {
    /// An empty database.
    pub fn new() -> UserProfileDb {
        UserProfileDb::default()
    }

    /// Register a user with a role; returns the subject id (idempotent on
    /// the name).
    pub fn add_user(&mut self, name: impl Into<String>, role: impl Into<String>) -> SubjectId {
        let name = name.into();
        let id = self.registry.intern(name.clone());
        self.profiles.entry(id).or_insert_with(|| Profile {
            name,
            role: role.into(),
            supervisor: None,
            groups: BTreeSet::new(),
        });
        id
    }

    /// Set (or change) a user's supervisor.
    pub fn set_supervisor(&mut self, subject: SubjectId, supervisor: SubjectId) {
        if let Some(p) = self.profiles.get_mut(&subject) {
            p.supervisor = Some(supervisor);
        }
    }

    /// Add a user to a named group.
    pub fn join_group(&mut self, subject: SubjectId, group: impl Into<String>) {
        if let Some(p) = self.profiles.get_mut(&subject) {
            p.groups.insert(group.into());
        }
    }

    /// Remove a user from a group.
    pub fn leave_group(&mut self, subject: SubjectId, group: &str) {
        if let Some(p) = self.profiles.get_mut(&subject) {
            p.groups.remove(group);
        }
    }

    /// The profile of a subject.
    pub fn profile(&self, subject: SubjectId) -> Option<&Profile> {
        self.profiles.get(&subject)
    }

    /// Subject id for a name.
    pub fn id_of(&self, name: &str) -> Option<SubjectId> {
        self.registry.get(name)
    }

    /// Name for a subject id.
    pub fn name_of(&self, subject: SubjectId) -> Option<&str> {
        self.registry.name(subject)
    }

    /// Number of registered users.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if no users are registered.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// All subject ids.
    pub fn subjects(&self) -> impl Iterator<Item = SubjectId> + '_ {
        self.profiles.keys().copied()
    }

    /// The shared registry (for query-language name resolution).
    pub fn registry(&self) -> &SubjectRegistry {
        &self.registry
    }
}

impl ProfileProvider for UserProfileDb {
    fn supervisor_of(&self, s: SubjectId) -> Option<SubjectId> {
        self.profiles.get(&s).and_then(|p| p.supervisor)
    }

    fn subordinates_of(&self, s: SubjectId) -> Vec<SubjectId> {
        self.profiles
            .iter()
            .filter(|(_, p)| p.supervisor == Some(s))
            .map(|(&id, _)| id)
            .collect()
    }

    fn members_of(&self, group: &str) -> Vec<SubjectId> {
        self.profiles
            .iter()
            .filter(|(_, p)| p.groups.contains(group))
            .map(|(&id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_look_up_users() {
        let mut db = UserProfileDb::new();
        let alice = db.add_user("Alice", "researcher");
        let bob = db.add_user("Bob", "professor");
        assert_eq!(db.id_of("Alice"), Some(alice));
        assert_eq!(db.name_of(bob), Some("Bob"));
        assert_eq!(db.profile(alice).unwrap().role, "researcher");
        assert_eq!(db.len(), 2);
        // Idempotent on name.
        assert_eq!(db.add_user("Alice", "other"), alice);
        assert_eq!(db.profile(alice).unwrap().role, "researcher");
    }

    #[test]
    fn supervisor_relation_feeds_profile_provider() {
        let mut db = UserProfileDb::new();
        let alice = db.add_user("Alice", "researcher");
        let bob = db.add_user("Bob", "professor");
        db.set_supervisor(alice, bob);
        assert_eq!(db.supervisor_of(alice), Some(bob));
        assert_eq!(db.supervisor_of(bob), None);
        assert_eq!(db.subordinates_of(bob), vec![alice]);
    }

    #[test]
    fn group_membership() {
        let mut db = UserProfileDb::new();
        let alice = db.add_user("Alice", "researcher");
        let bob = db.add_user("Bob", "professor");
        db.join_group(alice, "cais-staff");
        db.join_group(bob, "cais-staff");
        let mut members = db.members_of("cais-staff");
        members.sort_unstable();
        assert_eq!(members, vec![alice, bob]);
        db.leave_group(alice, "cais-staff");
        assert_eq!(db.members_of("cais-staff"), vec![bob]);
        assert!(db.members_of("nobody").is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let mut db = UserProfileDb::new();
        let alice = db.add_user("Alice", "researcher");
        db.join_group(alice, "g");
        let json = serde_json::to_string(&db).unwrap();
        let back: UserProfileDb = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id_of("Alice"), Some(alice));
        assert_eq!(back.members_of("g"), vec![alice]);
    }
}
