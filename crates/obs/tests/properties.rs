//! Property tests for the histogram and the exposition codec — the
//! observability layer's correctness floor:
//!
//! * **bucket totality**: every `u64` maps to exactly one bucket whose
//!   bounds actually contain it;
//! * **merge associativity/commutativity**: aggregating per-replica
//!   snapshots gives one answer regardless of merge order;
//! * **percentile bounds**: the estimate never leaves `[min, max]` of
//!   what was recorded and is monotone in `p`;
//! * **exposition round-trip**: whatever the registry holds, the
//!   encoded text re-parses, validates duplicate-free, and reproduces
//!   every counter value exactly.

use ltam_obs::{
    bucket_of, bucket_upper_bound, encode_text, validate, Histogram, HistogramSnapshot, BUCKETS,
};
use proptest::prelude::*;

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn bucket_totality(v in any::<u64>()) {
        let i = bucket_of(v);
        prop_assert!(i < BUCKETS);
        // The bucket's bounds contain the value: upper bound of the
        // previous bucket is strictly below, own upper bound at or
        // above.
        prop_assert!(bucket_upper_bound(i) >= v);
        if i > 0 {
            prop_assert!(bucket_upper_bound(i - 1) < v);
        }
    }

    #[test]
    fn bucket_bound_relative_error_is_bounded(v in 1u64..=u64::MAX) {
        let ub = bucket_upper_bound(bucket_of(v));
        // Log-linear with 4 sub-buckets: at most 25% over-estimation.
        prop_assert!(ub as f64 <= v as f64 * 1.25);
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
        c in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        // (a + b) + c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a + (b + c), built by merging into b's copy first
        let mut right_tail = sb.clone();
        right_tail.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);
        // c + b + a
        let mut rev = sc;
        rev.merge(&sb);
        rev.merge(&sa);
        prop_assert_eq!(&left, &rev);
        // And the merge equals recording everything in one histogram.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &snapshot_of(&all));
    }

    #[test]
    fn percentiles_stay_inside_recorded_range(
        samples in prop::collection::vec(any::<u64>(), 1..128),
        p in 0.0f64..=100.0,
    ) {
        let s = snapshot_of(&samples);
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        let est = s.percentile(p);
        prop_assert!(est >= lo, "p{p}: {est} < min {lo}");
        prop_assert!(est <= hi, "p{p}: {est} > max {hi}");
        // Monotone in p.
        prop_assert!(s.percentile(100.0) >= est);
        prop_assert!(est >= s.percentile(0.0));
    }

    #[test]
    fn exposition_reproduces_counters_exactly(
        entries in prop::collection::vec((0usize..8, 0u64..1_000_000), 1..8),
    ) {
        let series: std::collections::BTreeMap<usize, u64> = entries.into_iter().collect();
        // Label every series off one family so repeated test cases
        // reuse (not duplicate) registry entries; values accumulate
        // across cases, which the assertion below accounts for by
        // reading back the live registry, not the inputs.
        const KEYS: [&str; 8] = ["a", "b", "c", "d", "e", "f", "g", "h"];
        for (&idx, &n) in &series {
            ltam_obs::registry()
                .counter("obs_prop_counter_total", &[("k", KEYS[idx])], "prop")
                .inc_by(n);
        }
        let text = encode_text(ltam_obs::registry());
        let expo = validate(&text).expect("encoded registry validates");
        for &idx in series.keys() {
            let live = ltam_obs::counter_value(
                ltam_obs::registry(),
                "obs_prop_counter_total",
                &[("k", KEYS[idx])],
            )
            .unwrap();
            let scraped = expo
                .value("obs_prop_counter_total", &[("k", KEYS[idx])])
                .expect("series present in scrape");
            prop_assert_eq!(scraped, live as f64);
        }
    }
}
