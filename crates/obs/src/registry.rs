//! The process-wide metric [`Registry`] and the static registration
//! macros.
//!
//! Series are interned: the first `counter!`/`gauge!`/`histogram!` hit
//! at a call site registers the series under the global registry and
//! caches a `&'static` handle in a function-local `OnceLock`, so every
//! later hit is a single atomic load plus the metric's own atomics —
//! the registry lock is only ever taken once per call site (and by
//! scrapes). Dynamic-label call sites can fall back to
//! [`Registry::counter`] and friends, which take the lock per call.
//!
//! One registry per process is a deliberate trade: instrumentation
//! points deep in the store and engine don't need a handle threaded
//! through every constructor, and a serving process fronts exactly one
//! store. Tests that assert exact counter values therefore either run
//! one store per process or assert on deltas.

use crate::metric::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How a series' raw `u64` values map to exposition values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Expose the raw number unchanged.
    None,
    /// The series records **microseconds**; expose seconds (name should
    /// end `_seconds`). Chosen over recording float seconds because the
    /// metric primitives are integer atomics.
    SecondsFromMicros,
}

impl Unit {
    /// The exposition-side value of a raw sample.
    pub fn scale(self, raw: u64) -> f64 {
        match self {
            Unit::None => raw as f64,
            Unit::SecondsFromMicros => raw as f64 / 1e6,
        }
    }
}

/// What kind of metric a series is (drives the `# TYPE` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Bucketed histogram.
    Histogram,
}

/// One registered series: a metric plus its identity.
pub struct Series {
    /// The family name (no labels), e.g. `store_fsync_seconds`.
    pub name: &'static str,
    /// Label pairs, sorted by key at registration.
    pub labels: Vec<(&'static str, &'static str)>,
    /// The family's help text (first registration wins).
    pub help: &'static str,
    /// Value scaling for exposition.
    pub unit: Unit,
    /// The live metric.
    pub metric: Metric,
}

/// The metric half of a [`Series`].
pub enum Metric {
    /// A [`Counter`].
    Counter(&'static Counter),
    /// A [`Gauge`].
    Gauge(&'static Gauge),
    /// A [`Histogram`].
    Histogram(&'static Histogram),
}

impl Metric {
    /// The series' kind.
    pub fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// Key identifying one series inside the registry map.
type SeriesKey = (&'static str, Vec<(&'static str, &'static str)>);

/// The process-wide collection of registered series.
///
/// Lives behind [`registry()`]; scraping walks the map in name order so
/// exposition output is deterministic.
#[derive(Default)]
pub struct Registry {
    series: Mutex<BTreeMap<SeriesKey, &'static Series>>,
}

/// A recording handle is `&'static` — metrics are leaked on first
/// registration and live for the process, which is what makes the
/// lock-free fast path possible.
impl Registry {
    fn intern(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
        help: &'static str,
        unit: Unit,
        make: impl FnOnce() -> Metric,
    ) -> &'static Series {
        let mut labels: Vec<_> = labels.to_vec();
        labels.sort_unstable();
        let mut map = self.series.lock().expect("registry lock");
        if let Some(existing) = map.get(&(name, labels.clone())) {
            return existing;
        }
        let series: &'static Series = Box::leak(Box::new(Series {
            name,
            labels: labels.clone(),
            help,
            unit,
            metric: make(),
        }));
        map.insert((name, labels), series);
        series
    }

    /// Register (or fetch) a labeled counter.
    pub fn counter(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
        help: &'static str,
    ) -> &'static Counter {
        let series = self.intern(name, labels, help, Unit::None, || {
            Metric::Counter(Box::leak(Box::new(Counter::new())))
        });
        match series.metric {
            Metric::Counter(c) => c,
            _ => panic!("series {name:?} already registered with a different kind"),
        }
    }

    /// Register (or fetch) a labeled gauge.
    pub fn gauge(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
        help: &'static str,
    ) -> &'static Gauge {
        let series = self.intern(name, labels, help, Unit::None, || {
            Metric::Gauge(Box::leak(Box::new(Gauge::new())))
        });
        match series.metric {
            Metric::Gauge(g) => g,
            _ => panic!("series {name:?} already registered with a different kind"),
        }
    }

    /// Register (or fetch) a labeled histogram with a value unit.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
        help: &'static str,
        unit: Unit,
    ) -> &'static Histogram {
        let series = self.intern(name, labels, help, unit, || {
            Metric::Histogram(Box::leak(Box::new(Histogram::new())))
        });
        match series.metric {
            Metric::Histogram(h) => h,
            _ => panic!("series {name:?} already registered with a different kind"),
        }
    }

    /// Look up an already-registered series by exact name + labels
    /// (label order irrelevant). `None` if nothing recorded there yet —
    /// readers (drill reports, status endpoints) use this so a scrape
    /// never *creates* series.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&'static Series> {
        let mut wanted: Vec<_> = labels.to_vec();
        wanted.sort_unstable();
        let map = self.series.lock().expect("registry lock");
        map.iter()
            .find(|((n, l), _)| {
                *n == name && l.len() == wanted.len() && l.iter().zip(&wanted).all(|(a, b)| a == b)
            })
            .map(|(_, s)| *s)
    }

    /// Run `f` over every registered series, in (name, labels) order.
    pub fn for_each(&self, mut f: impl FnMut(&Series)) {
        let map = self.series.lock().expect("registry lock");
        for series in map.values() {
            f(series);
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.lock().expect("registry lock").len()
    }

    /// True when nothing is registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide registry every macro records into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Global off switch: when disabled, [`crate::timed!`] spans skip the
/// clock reads and recordings entirely. Counters and gauges keep
/// recording (a relaxed `fetch_add` is too cheap to gate); the switch
/// exists so the serve drill can measure the timing overhead of the
/// instrumentation against a no-op run.
static DISABLED: AtomicBool = AtomicBool::new(false);

/// Turn span timing off (`true`) or back on.
pub fn set_disabled(disabled: bool) {
    DISABLED.store(disabled, Ordering::Relaxed);
}

/// Is span timing currently disabled?
#[inline]
pub fn disabled() -> bool {
    DISABLED.load(Ordering::Relaxed)
}

/// A drop-guard that records its lifetime into a histogram, in
/// microseconds — the span half of the `timed!` macro. Holds nothing
/// when timing is disabled.
pub struct Span {
    target: Option<(&'static Histogram, Instant)>,
}

impl Span {
    /// Start a span over `h` (or an inert one if timing is disabled).
    pub fn start(h: &'static Histogram) -> Span {
        Span {
            target: if disabled() {
                None
            } else {
                Some((h, Instant::now()))
            },
        }
    }

    /// Drop without recording (for abandoned operations).
    pub fn cancel(mut self) {
        self.target = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((h, started)) = self.target.take() {
            h.observe(started.elapsed().as_micros() as u64);
        }
    }
}

/// Register-once-then-cache counter handle.
///
/// `counter!("name", "help")` or
/// `counter!("name", "help", key => "value", ...)` — name, help, and
/// label strings must be literals (they are interned `&'static str`s).
#[macro_export]
macro_rules! counter {
    ($name:literal, $help:literal $(, $k:literal => $v:literal)* $(,)?) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| {
            $crate::registry().counter($name, &[$(($k, $v)),*], $help)
        })
    }};
}

/// Register-once-then-cache gauge handle (same shape as [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:literal, $help:literal $(, $k:literal => $v:literal)* $(,)?) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| {
            $crate::registry().gauge($name, &[$(($k, $v)),*], $help)
        })
    }};
}

/// Register-once-then-cache histogram handle. Takes a [`Unit`] after
/// the help text: `histogram!("x_seconds", "help", SecondsFromMicros)`.
#[macro_export]
macro_rules! histogram {
    ($name:literal, $help:literal, $unit:ident $(, $k:literal => $v:literal)* $(,)?) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| {
            $crate::registry().histogram(
                $name,
                &[$(($k, $v)),*],
                $help,
                $crate::Unit::$unit,
            )
        })
    }};
}

/// Time a scope into a histogram series (microseconds recorded,
/// seconds exposed): bind the result to keep the span open.
///
/// ```
/// let _span = ltam_obs::timed!("doc_fsync_seconds", "Example span");
/// // ... the timed work ...
/// drop(_span); // or fall out of scope
/// ```
#[macro_export]
macro_rules! timed {
    ($name:literal, $help:literal $(, $k:literal => $v:literal)* $(,)?) => {
        $crate::Span::start($crate::histogram!(
            $name, $help, SecondsFromMicros $(, $k => $v)*
        ))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_handle() {
        let a = registry().counter("obs_test_intern_total", &[], "test");
        let b = registry().counter("obs_test_intern_total", &[], "test");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn labels_distinguish_series() {
        let a = registry().counter("obs_test_labels_total", &[("k", "a")], "test");
        let b = registry().counter("obs_test_labels_total", &[("k", "b")], "test");
        assert!(!std::ptr::eq(a, b));
        // Label order does not matter.
        let x = registry().counter(
            "obs_test_labels2_total",
            &[("k1", "v"), ("k2", "w")],
            "test",
        );
        let y = registry().counter(
            "obs_test_labels2_total",
            &[("k2", "w"), ("k1", "v")],
            "test",
        );
        assert!(std::ptr::eq(x, y));
    }

    #[test]
    fn macros_cache_per_call_site() {
        let c = crate::counter!("obs_test_macro_total", "test");
        c.inc_by(3);
        assert_eq!(crate::counter!("obs_test_macro_total", "test").get(), 3);
        let g = crate::gauge!("obs_test_macro_gauge", "test", "shard" => "0");
        g.set(-4);
        assert_eq!(g.get(), -4);
    }

    #[test]
    fn spans_record_and_cancel() {
        let h = registry().histogram(
            "obs_test_span_seconds",
            &[],
            "test",
            Unit::SecondsFromMicros,
        );
        drop(Span::start(h));
        assert_eq!(h.count(), 1);
        Span::start(h).cancel();
        assert_eq!(h.count(), 1);
        set_disabled(true);
        drop(Span::start(h));
        assert_eq!(h.count(), 1);
        set_disabled(false);
        drop(Span::start(h));
        assert_eq!(h.count(), 2);
    }
}
