//! Text exposition: encode the registry in the Prometheus text format,
//! and parse that format back.
//!
//! The parser is not vestigial: it is how the serve drill and the CI
//! smoke *validate* a wire scrape (every line parses, no duplicate
//! series, expected series present), and how `repro metrics` turns a
//! remote server's bytes into something greppable. Encoder and parser
//! living together keeps them honest — the round-trip proptest feeds
//! arbitrary registries through both.

use crate::metric::HistogramSnapshot;
use crate::registry::{Metric, MetricKind, Registry, Series};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render `registry` in the Prometheus text exposition format:
/// `# HELP` / `# TYPE` per family, one sample line per series, and for
/// histograms the cumulative `_bucket{le=…}` / `_sum` / `_count`
/// triple. Families appear in name order; output is deterministic for
/// a given registry state.
pub fn encode_text(registry: &Registry) -> String {
    let mut out = String::new();
    let mut described: Option<&str> = None;
    registry.for_each(|series| {
        if described != Some(series.name) {
            let kind = match series.metric.kind() {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", series.name, escape_help(series.help));
            let _ = writeln!(out, "# TYPE {} {}", series.name, kind);
            described = Some(series.name);
        }
        encode_series(&mut out, series);
    });
    out
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Format one `{k="v",…}` block; extra pairs are appended after the
/// series' own labels (used for a histogram's `le`).
fn label_block(labels: &[(&str, &str)], extra: Option<(&str, String)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(&v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Format an exposition value: integers stay integral, everything else
/// gets enough digits to round-trip.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn encode_series(out: &mut String, series: &Series) {
    let labels = &series.labels;
    match &series.metric {
        Metric::Counter(c) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                series.name,
                label_block(labels, None),
                c.get()
            );
        }
        Metric::Gauge(g) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                series.name,
                label_block(labels, None),
                g.get()
            );
        }
        Metric::Histogram(h) => {
            let snap = h.snapshot();
            let mut cumulative = 0u64;
            for (i, &n) in snap.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let le = series.unit.scale(crate::metric::bucket_upper_bound(i));
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    series.name,
                    label_block(labels, Some(("le", fmt_value(le)))),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                series.name,
                label_block(labels, Some(("le", "+Inf".to_string()))),
                snap.count
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                series.name,
                label_block(labels, None),
                fmt_value(series.unit.scale(snap.sum))
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                series.name,
                label_block(labels, None),
                snap.count
            );
        }
    }
}

// --- parsing ---------------------------------------------------------------

/// Why an exposition text failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpoError {
    /// A line matched no production of the grammar.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The same (name, labels) sample appeared twice.
    DuplicateSeries {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The offending sample identity.
        series: String,
    },
}

impl std::fmt::Display for ExpoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpoError::Malformed { line, reason } => {
                write!(f, "exposition line {line}: {reason}")
            }
            ExpoError::DuplicateSeries { line, series } => {
                write!(f, "exposition line {line}: duplicate series {series}")
            }
        }
    }
}

impl std::error::Error for ExpoError {}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name as written (`family`, `family_bucket`, …).
    pub name: String,
    /// Label pairs in written order.
    pub labels: Vec<(String, String)>,
    /// The numeric value (`+Inf` parses as `f64::INFINITY`).
    pub value: f64,
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// `# TYPE` declarations: family name → kind string.
    pub types: BTreeMap<String, String>,
    /// `# HELP` declarations: family name → help text.
    pub helps: BTreeMap<String, String>,
    /// Every sample line, in document order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The value of the sample with exactly `name` and `labels`
    /// (order-insensitive). `None` when absent.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut wanted: Vec<(&str, &str)> = labels.to_vec();
        wanted.sort_unstable();
        self.samples.iter().find_map(|s| {
            if s.name != name || s.labels.len() != wanted.len() {
                return None;
            }
            let mut have: Vec<(&str, &str)> = s
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            have.sort_unstable();
            (have == wanted).then_some(s.value)
        })
    }

    /// Sum of every sample of `name` across all label sets — e.g. the
    /// total of a counter family partitioned by a label.
    pub fn family_sum(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse `label="value",…` (the inside of a label block). `pos` is the
/// line number for errors.
fn parse_labels(body: &str, pos: usize) -> Result<Vec<(String, String)>, ExpoError> {
    let mut labels = Vec::new();
    let mut rest = body;
    loop {
        rest = rest.trim_start_matches(',').trim_start();
        if rest.is_empty() {
            return Ok(labels);
        }
        let eq = rest.find('=').ok_or_else(|| ExpoError::Malformed {
            line: pos,
            reason: format!("label without '=': {rest:?}"),
        })?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(ExpoError::Malformed {
                line: pos,
                reason: format!("bad label name {key:?}"),
            });
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(ExpoError::Malformed {
                line: pos,
                reason: "label value must be quoted".to_string(),
            });
        }
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => {
                        return Err(ExpoError::Malformed {
                            line: pos,
                            reason: "dangling escape in label value".to_string(),
                        })
                    }
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = end.ok_or_else(|| ExpoError::Malformed {
            line: pos,
            reason: "unterminated label value".to_string(),
        })?;
        labels.push((key, value));
        rest = &rest[1 + end + 1..];
    }
}

/// Parse an exposition document, enforcing the grammar but not
/// duplicate-freedom (see [`validate`]).
pub fn parse_text(text: &str) -> Result<Exposition, ExpoError> {
    let mut out = Exposition::default();
    for (i, line) in text.lines().enumerate() {
        let pos = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let (name, kind) = decl.split_once(' ').ok_or_else(|| ExpoError::Malformed {
                    line: pos,
                    reason: "TYPE needs a name and a kind".to_string(),
                })?;
                if !valid_name(name) {
                    return Err(ExpoError::Malformed {
                        line: pos,
                        reason: format!("bad family name {name:?}"),
                    });
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(ExpoError::Malformed {
                        line: pos,
                        reason: format!("unknown metric type {kind:?}"),
                    });
                }
                out.types.insert(name.to_string(), kind.to_string());
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let (name, help) = decl.split_once(' ').unwrap_or((decl, ""));
                if !valid_name(name) {
                    return Err(ExpoError::Malformed {
                        line: pos,
                        reason: format!("bad family name {name:?}"),
                    });
                }
                out.helps.insert(name.to_string(), help.to_string());
            }
            // Other comments are permitted and ignored.
            continue;
        }
        if line.starts_with('#') {
            continue; // bare comment
        }
        // Sample: name[{labels}] value
        let (ident, value_str) = match line.find('{') {
            Some(open) => {
                let close = line.rfind('}').ok_or_else(|| ExpoError::Malformed {
                    line: pos,
                    reason: "unterminated label block".to_string(),
                })?;
                if close < open {
                    return Err(ExpoError::Malformed {
                        line: pos,
                        reason: "'}' before '{'".to_string(),
                    });
                }
                (
                    (&line[..open], Some(&line[open + 1..close])),
                    line[close + 1..].trim(),
                )
            }
            None => {
                let (name, value) =
                    line.split_once(char::is_whitespace)
                        .ok_or_else(|| ExpoError::Malformed {
                            line: pos,
                            reason: "sample needs a value".to_string(),
                        })?;
                ((name, None), value.trim())
            }
        };
        let (name, label_body) = ident;
        if !valid_name(name) {
            return Err(ExpoError::Malformed {
                line: pos,
                reason: format!("bad sample name {name:?}"),
            });
        }
        let labels = match label_body {
            Some(body) => parse_labels(body, pos)?,
            None => Vec::new(),
        };
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            other => other.parse().map_err(|_| ExpoError::Malformed {
                line: pos,
                reason: format!("bad sample value {other:?}"),
            })?,
        };
        out.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(out)
}

/// Parse **and** reject duplicate series — the CI smoke's grammar
/// check. A duplicate is two samples with the same name and the same
/// label set (order-insensitive).
pub fn validate(text: &str) -> Result<Exposition, ExpoError> {
    let expo = parse_text(text)?;
    let mut seen: BTreeMap<(String, Vec<(String, String)>), usize> = BTreeMap::new();
    for (idx, sample) in expo.samples.iter().enumerate() {
        let mut labels = sample.labels.clone();
        labels.sort();
        let key = (sample.name.clone(), labels);
        if seen.insert(key, idx).is_some() {
            // `line` counts samples, not raw lines — close enough to
            // point an operator at the offender.
            return Err(ExpoError::DuplicateSeries {
                line: idx + 1,
                series: format!("{}{:?}", sample.name, sample.labels),
            });
        }
    }
    Ok(expo)
}

/// Percentile of a registered histogram series (raw-unit value, e.g.
/// microseconds for `SecondsFromMicros` series) read straight from the
/// registry — the in-process path drill reports use.
pub fn histogram_snapshot(
    registry: &Registry,
    name: &str,
    labels: &[(&str, &str)],
) -> Option<HistogramSnapshot> {
    registry.find(name, labels).and_then(|s| match &s.metric {
        Metric::Histogram(h) => Some(h.snapshot()),
        _ => None,
    })
}

/// A registered counter's value, or `None` if it never fired.
pub fn counter_value(registry: &Registry, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
    registry.find(name, labels).and_then(|s| match &s.metric {
        Metric::Counter(c) => Some(c.get()),
        _ => None,
    })
}

/// A registered gauge's value, or `None` if it was never set.
pub fn gauge_value(registry: &Registry, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
    registry.find(name, labels).and_then(|s| match &s.metric {
        Metric::Gauge(g) => Some(g.get()),
        _ => None,
    })
}

/// Sum a counter family across every label set (e.g. all `code=` arms
/// of a refusal counter).
pub fn counter_family_sum(registry: &Registry, name: &str) -> u64 {
    let mut total = 0u64;
    registry.for_each(|s| {
        if s.name == name {
            if let Metric::Counter(c) = &s.metric {
                total += c.get();
            }
        }
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{registry, Unit};

    #[test]
    fn encode_then_validate_round_trips() {
        let r = registry();
        r.counter("obs_expo_requests_total", &[("kind", "ingest")], "Requests")
            .inc_by(5);
        r.counter("obs_expo_requests_total", &[("kind", "query")], "Requests")
            .inc_by(2);
        r.gauge("obs_expo_depth", &[], "Depth").set(-3);
        r.histogram(
            "obs_expo_lat_seconds",
            &[],
            "Latency",
            Unit::SecondsFromMicros,
        )
        .observe(1500);
        let text = encode_text(r);
        let expo = validate(&text).expect("validates");
        assert_eq!(
            expo.value("obs_expo_requests_total", &[("kind", "ingest")]),
            Some(5.0)
        );
        assert_eq!(expo.family_sum("obs_expo_requests_total"), 7.0);
        assert_eq!(expo.value("obs_expo_depth", &[]), Some(-3.0));
        assert_eq!(expo.value("obs_expo_lat_seconds_count", &[]), Some(1.0));
        assert_eq!(
            expo.types.get("obs_expo_depth").map(String::as_str),
            Some("gauge")
        );
        // The histogram sum was rescaled micros -> seconds.
        let sum = expo.value("obs_expo_lat_seconds_sum", &[]).unwrap();
        assert!((sum - 0.0015).abs() < 1e-9, "sum {sum}");
        // The +Inf bucket is present.
        assert_eq!(
            expo.value("obs_expo_lat_seconds_bucket", &[("le", "+Inf")]),
            Some(1.0)
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(matches!(
            parse_text("9bad_name 1"),
            Err(ExpoError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            parse_text("name_without_value"),
            Err(ExpoError::Malformed { .. })
        ));
        assert!(matches!(
            parse_text("x{k=\"unterminated} 1"),
            Err(ExpoError::Malformed { .. })
        ));
        assert!(matches!(
            parse_text("x 1.2.3"),
            Err(ExpoError::Malformed { .. })
        ));
        assert!(matches!(
            parse_text("# TYPE x flimsy"),
            Err(ExpoError::Malformed { .. })
        ));
    }

    #[test]
    fn duplicates_are_rejected_order_insensitively() {
        let text = "a{x=\"1\",y=\"2\"} 1\na{y=\"2\",x=\"1\"} 2\n";
        assert!(matches!(
            validate(text),
            Err(ExpoError::DuplicateSeries { .. })
        ));
        // Different label values are distinct series.
        assert!(validate("a{x=\"1\"} 1\na{x=\"2\"} 2\n").is_ok());
    }

    #[test]
    fn escapes_round_trip() {
        let text = format!("m{{k=\"{}\"}} 1\n", "a\\\\b\\\"c\\nd");
        let expo = parse_text(&text).unwrap();
        assert_eq!(expo.samples[0].labels[0].1, "a\\b\"c\nd");
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }
}
