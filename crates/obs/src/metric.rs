//! The three metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! All three are plain clusters of atomics — no locks, no allocation on
//! the hot path — so instrumenting the group-commit thread or a poll
//! loop costs a handful of uncontended `fetch_add`s. Reading is
//! snapshot-based: [`Histogram::snapshot`] copies the bucket array once
//! and every derived statistic (percentiles, mean, merge) is computed
//! on the immutable copy, so scrapes never pause writers.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn inc_by(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move in both directions (queue depths, lags).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Log-linear bucket layout: values 0..3 get exact buckets, then every
/// power-of-two octave is split into 4 sub-buckets, so any recorded
/// value is over-estimated by at most 25% by its bucket's upper bound.
/// 62 octaves × 4 cover the full `u64` range in [`BUCKETS`] slots.
pub const BUCKETS: usize = 252;

/// The bucket a value lands in. Total over all of `u64`: every value
/// maps to exactly one index below [`BUCKETS`].
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        (msb - 2) * 4 + ((v >> (msb - 2)) & 7) as usize
    }
}

/// The largest value that lands in bucket `i` (the bucket's inclusive
/// upper bound) — the "exact bound" percentile estimation quotes.
pub fn bucket_upper_bound(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    if i < 4 {
        i as u64
    } else if i == BUCKETS - 1 {
        // The top bucket's nominal bound (8 << 61) is one past u64.
        u64::MAX
    } else {
        // Bucket i >= 4 covers [(i%4 + 4) << (i/4 - 1), (i%4 + 5) << (i/4 - 1)).
        let (octave, sub) = (i / 4, (i % 4) as u64);
        ((sub + 5) << (octave - 1)) - 1
    }
}

/// A fixed-bucket log-scale histogram of `u64` samples.
///
/// Recording is one relaxed `fetch_add` into the value's bucket plus
/// count/sum/min/max updates; there is no dynamic range configuration
/// to get wrong because the layout covers all of `u64`. Time series
/// record **microseconds** and declare [`crate::Unit::SecondsFromMicros`] at
/// registration so the exposition layer rescales (§ the `expo` module).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for percentile math and merging. Buckets
    /// are read individually (not under a lock), so a snapshot taken
    /// concurrently with writers may be mid-sample — fine for
    /// monitoring, and the totals are self-consistent enough that
    /// `percentile` never indexes out of range.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state: mergeable (for
/// cross-shard or cross-scrape aggregation) and the basis for
/// percentile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples (always the bucket sum).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merge another snapshot into this one. Associative and
    /// commutative: merging per-replica scrapes in any order yields the
    /// same aggregate (the proptests pin this down).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        // Wrapping, matching the atomic `fetch_add` in `observe`: the
        // sum of arbitrary u64 samples can exceed u64 either way.
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at percentile `p` (0–100): the upper bound of the
    /// bucket holding the p-th sample, clamped into `[min, max]` so
    /// the estimate never leaves the recorded range. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of the recorded values (exact — from the true
    /// sum, not the buckets). 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every bucket's upper bound maps back into that bucket, and
        // the value one past it maps into the next.
        for i in 0..BUCKETS {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_of(ub), i, "upper bound of bucket {i}");
            if ub < u64::MAX {
                assert_eq!(bucket_of(ub + 1), i + 1, "successor of bucket {i}");
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bound_overestimates_by_at_most_a_quarter() {
        for v in [4u64, 5, 100, 1000, 12345, 1 << 30, u64::MAX / 3] {
            let ub = bucket_upper_bound(bucket_of(v));
            assert!(ub >= v);
            assert!((ub - v) as f64 <= v as f64 * 0.25, "{v} -> {ub}");
        }
    }

    #[test]
    fn percentiles_land_on_exact_small_values() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            for _ in 0..25 {
                h.observe(v);
            }
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.percentile(25.0), 0);
        assert_eq!(s.percentile(50.0), 1);
        assert_eq!(s.percentile(100.0), 3);
        assert_eq!(s.mean(), 1.5);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(10);
        a.observe(20);
        b.observe(5000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 5030);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 5000);
        assert!(s.percentile(99.0) >= 5000 / 2);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.percentile(50.0), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.inc_by(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }
}
