//! `ltam-obs` — the workspace's observability core.
//!
//! Three lock-free metric primitives ([`Counter`], [`Gauge`],
//! [`Histogram`]), a process-wide [`Registry`] the
//! [`counter!`]/[`gauge!`]/[`histogram!`]/[`timed!`] macros record
//! into, and a Prometheus-style text exposition [encoder](encode_text)
//! plus [parser](parse_text)/[validator](validate) so scrapes can be
//! checked, not just emitted.
//!
//! Built on nothing but `std` atomics: the instrumented code paths —
//! the group-commit thread, the WAL fsync, the poll loop — are the
//! hottest in the workspace, and a metrics layer that needed a lock
//! (or a crate the offline container lacks) would not be allowed
//! there. The design choices, series inventory, and alerting
//! thresholds are documented in `docs/BOOK.md` §12 and
//! `docs/OPERATIONS.md` §7.
//!
//! # Recording
//!
//! ```
//! ltam_obs::counter!("doc_requests_total", "Requests served", "kind" => "ingest").inc();
//! ltam_obs::gauge!("doc_lag_events", "Replication lag").set(3);
//! ltam_obs::histogram!("doc_group_events", "Events per commit group", None).observe(128);
//! {
//!     let _span = ltam_obs::timed!("doc_fsync_seconds", "WAL fsync latency");
//!     // ... the timed work; recorded (in µs, exposed in s) on drop ...
//! }
//! ```
//!
//! # Scraping
//!
//! ```
//! let text = ltam_obs::encode_text(ltam_obs::registry());
//! let expo = ltam_obs::validate(&text).expect("well-formed, duplicate-free");
//! assert!(expo.value("doc_requests_total", &[("kind", "ingest")]).is_none()
//!     || expo.family_sum("doc_requests_total") >= 1.0);
//! ```

mod expo;
mod metric;
mod registry;

pub use expo::{
    counter_family_sum, counter_value, encode_text, gauge_value, histogram_snapshot, parse_text,
    validate, ExpoError, Exposition, Sample,
};
pub use metric::{
    bucket_of, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS,
};
pub use registry::{
    disabled, registry, set_disabled, Metric, MetricKind, Registry, Series, Span, Unit,
};
