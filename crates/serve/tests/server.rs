//! End-to-end serving tests over loopback: the full stack (client →
//! wire → server → durable engine → store) in one process.

use ltam_core::model::{Authorization, EntryLimit};
use ltam_core::subject::SubjectId;
use ltam_engine::batch::{Event, PolicyCore};
use ltam_graph::examples::ntu_campus;
use ltam_graph::LocationId;
use ltam_serve::wire::{self, Request};
use ltam_serve::{ClientError, ErrorCode, LtamClient, Server, ServerConfig, ServerRole};
use ltam_store::{DurableEngine, ScratchDir, StoreConfig};
use ltam_time::{Interval, Time};
use std::io::{Read, Write};
use std::time::Duration;

/// The §3.2 campus policy: Alice may enter CAIS during [5, 40] and
/// must leave during [20, 100], once.
fn campus_core() -> (PolicyCore, SubjectId, LocationId) {
    let ntu = ntu_campus();
    let cais = ntu.cais;
    let mut core = PolicyCore::new(ntu.model);
    let alice = SubjectId(0);
    core.add_authorization(
        Authorization::new(
            Interval::lit(5, 40),
            Interval::lit(20, 100),
            alice,
            cais,
            EntryLimit::Finite(1),
        )
        .unwrap(),
    );
    (core, alice, cais)
}

fn store_config() -> StoreConfig {
    StoreConfig {
        segment_bytes: 64 * 1024,
        snapshot_every: 0,
        fsync: false,
        retention: None,
    }
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(25),
        ..ServerConfig::default()
    }
}

fn start_server(dir: &ScratchDir, config: ServerConfig) -> (Server, SubjectId, LocationId) {
    let (core, alice, cais) = campus_core();
    let (engine, _alerts) = DurableEngine::create(dir.path(), core, 2, store_config()).unwrap();
    let server = Server::start(engine, "127.0.0.1:0", config).unwrap();
    (server, alice, cais)
}

#[test]
fn serves_swipes_ingest_and_queries_end_to_end() {
    let dir = ScratchDir::new("serve-e2e");
    let (server, alice, cais) = start_server(&dir, quick_config());
    let addr = server.local_addr().to_string();
    let mut client = LtamClient::connect(&addr).unwrap();

    // A door swipe inside the entry window is granted...
    assert!(client.check_access(Time(10), alice, cais).unwrap());
    // ...and entering, then leaving before the exit window opens, is a
    // violation the ingest response reports.
    let summary = client
        .ingest(&[
            Event::Enter {
                time: Time(11),
                subject: alice,
                location: cais,
            },
            Event::Exit {
                time: Time(15),
                subject: alice,
                location: cais,
            },
        ])
        .unwrap();
    assert_eq!(summary.processed, 2);
    assert_eq!(summary.violations.len(), 1);

    // History queries answer over the wire.
    assert_eq!(client.whereabouts(alice, Time(12)).unwrap(), Some(cais));
    assert_eq!(client.whereabouts(alice, Time(20)).unwrap(), None);
    let rows = client.present_during(cais, Interval::lit(0, 100)).unwrap();
    assert_eq!(rows, vec![(alice, Interval::lit(11, 15))]);
    assert_eq!(client.violations_in(Interval::ALL).unwrap().len(), 1);

    // The status RPC reports the durable position and this connection.
    let status = client.status().unwrap();
    assert_eq!(status.events_ingested, 3); // swipe + enter + exit
    assert_eq!(status.engine.live_violations, 1);
    assert_eq!(status.connections_active, 1);
    assert_eq!(status.protocol_errors, 0);
    assert_eq!(status.per_connection.len(), 1);
    assert!(status.requests_served >= 6);

    // Graceful shutdown drains and returns the engine, snapshotted.
    let engine = server.shutdown().unwrap();
    assert_eq!(engine.applied(), 3);
    assert_eq!(engine.last_snapshot_seq(), 3);
    assert_eq!(engine.engine().violation_count(), 1);
}

#[test]
fn over_the_connection_limit_is_refused_busy() {
    let dir = ScratchDir::new("serve-busy");
    let (server, alice, cais) = start_server(
        &dir,
        ServerConfig {
            max_connections: 1,
            ..quick_config()
        },
    );
    let addr = server.local_addr().to_string();
    let mut first = LtamClient::connect(&addr).unwrap();
    // Complete one round trip so the slot is definitely taken.
    assert!(first.check_access(Time(10), alice, cais).unwrap());
    // The second connection's first call sees the Busy refusal.
    let mut second = LtamClient::connect(&addr).unwrap();
    // The refusal keeps its typed context across the forced reconnect:
    // code AND which role said no (a Busy primary means back off; a
    // Busy follower would mean "read elsewhere").
    let busy = |r: Result<bool, ClientError>| {
        matches!(
            r,
            Err(ClientError::Server {
                code: ErrorCode::Busy,
                role: Some(ServerRole::Primary),
                ..
            })
        )
    };
    assert!(busy(second.check_access(Time(11), alice, cais)));
    // A retry reconnects and is refused again — a typed Busy, not a
    // spurious transport error on the closed socket.
    assert!(busy(second.check_access(Time(11), alice, cais)));
    // The first connection keeps working; the refusals were counted.
    let status = first.status().unwrap();
    assert_eq!(status.refused_busy, 2);
    assert_eq!(status.connections_active, 1);
    // Once the slot frees (the worker notices the disconnect within
    // its read-timeout poll), the waiting client gets in.
    drop(first);
    let mut admitted = false;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        match second.check_access(Time(12), alice, cais) {
            Ok(_) => {
                admitted = true;
                break;
            }
            Err(ClientError::Server {
                code: ErrorCode::Busy,
                ..
            }) => continue,
            Err(other) => panic!("expected admission or Busy, got {other:?}"),
        }
    }
    assert!(admitted, "freed slot admits the backed-off client");
    server.shutdown().unwrap();
}

#[test]
fn malformed_frames_get_an_error_and_a_clean_disconnect() {
    let dir = ScratchDir::new("serve-malformed");
    let (server, alice, cais) = start_server(&dir, quick_config());
    let addr = server.local_addr();

    // A frame whose CRC does not match its payload.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, &wire::encode_request(&Request::Ingest(vec![]))).unwrap();
    let last = frame.len() - 1;
    frame[last] ^= 0x01;
    raw.write_all(&frame).unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap(); // server answers, then closes
    let payload = wire::read_frame(
        &mut std::io::Cursor::new(reply),
        wire::DEFAULT_MAX_FRAME_BYTES,
    )
    .unwrap();
    match wire::decode_response(&payload).unwrap() {
        wire::Response::Error {
            code: ErrorCode::BadRequest,
            ..
        } => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // A frame announcing an absurd payload size: same treatment.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    raw.write_all(&header).unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap();
    assert!(!reply.is_empty(), "oversized announcement gets an answer");

    // An intact frame whose body is not a request: answered in-band,
    // connection stays usable.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, &[0x7F, 1, 2, 3]).unwrap();
    raw.write_all(&frame).unwrap();
    let payload = wire::read_frame(&mut raw, wire::DEFAULT_MAX_FRAME_BYTES).unwrap();
    assert!(matches!(
        wire::decode_response(&payload).unwrap(),
        wire::Response::Error {
            code: ErrorCode::BadRequest,
            ..
        }
    ));

    // The server survived all three abuses.
    let mut client = LtamClient::connect(&addr.to_string()).unwrap();
    assert!(client.check_access(Time(10), alice, cais).unwrap());
    let status = client.status().unwrap();
    assert!(status.protocol_errors >= 3);
    server.shutdown().unwrap();
}

#[test]
fn idle_connections_are_reaped_and_the_client_reconnects() {
    let dir = ScratchDir::new("serve-idle");
    let (server, alice, cais) = start_server(
        &dir,
        ServerConfig {
            idle_timeout: Duration::from_millis(100),
            read_timeout: Duration::from_millis(25),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr().to_string();
    let mut client = LtamClient::connect(&addr).unwrap();
    assert!(client.check_access(Time(10), alice, cais).unwrap());
    // Go idle past the server's limit: the server frees the slot.
    std::thread::sleep(Duration::from_millis(400));
    // The next call fails (the connection is gone)...
    assert!(client.status().is_err());
    assert!(!client.is_connected());
    // ...and the one after reconnects transparently.
    let status = client.status().unwrap();
    assert_eq!(status.connections_active, 1);
    assert_eq!(status.connections_total, 2);
    server.shutdown().unwrap();
}

#[test]
fn slow_readers_and_mid_frame_stalls_never_block_the_poll_loop() {
    // One poll thread owns *every* connection — if a misbehaving peer
    // could block the loop, nothing else would be served. Both valves
    // are set low so the abuse trips them quickly: a connection with
    // too many requests in flight, or too many unread response bytes,
    // stops being read (never stops the loop).
    let dir = ScratchDir::new("serve-slow-reader");
    let (server, alice, cais) = start_server(
        &dir,
        ServerConfig {
            poll_threads: 1,
            max_pipeline: 8,
            write_buffer_bytes: 1024,
            ..quick_config()
        },
    );
    let addr = server.local_addr();

    // Peer 1 stalls mid-frame: three bytes of header, then silence.
    let mut stalled = std::net::TcpStream::connect(addr).unwrap();
    stalled.write_all(&[0x10, 0x00, 0x00]).unwrap();

    // Peer 2 is a slow reader: it pours ingest requests in and never
    // reads a single response. Responses jam up its socket and the
    // server's write buffer until the valve closes its read side; its
    // own sends then hit WouldBlock (nonblocking, so the test never
    // wedges itself).
    let mut deaf = std::net::TcpStream::connect(addr).unwrap();
    deaf.set_nonblocking(true).unwrap();
    let batch: Vec<Event> = (0..24u64)
        .map(|i| Event::Request {
            time: Time(1_000 + i),
            subject: alice,
            location: cais,
        })
        .collect();
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, &wire::encode_request(&Request::Ingest(batch))).unwrap();
    let mut poured = 0usize;
    'pour: for _ in 0..2048 {
        let mut at = 0usize;
        let mut retries = 0u32;
        while at < frame.len() {
            match deaf.write(&frame[at..]) {
                Ok(0) => break 'pour,
                Ok(n) => at += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if at == 0 || retries > 200 {
                        break 'pour; // jammed: the valve closed
                    }
                    retries += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("unexpected send error: {e:?}"),
            }
        }
        poured += 1;
    }

    // While both peers sit there, a well-behaved client gets full
    // service from the same poll thread, promptly.
    let start = std::time::Instant::now();
    let mut client = LtamClient::connect(&addr.to_string()).unwrap();
    for i in 0..50u64 {
        assert!(client.check_access(Time(10 + i % 20), alice, cais).is_ok());
    }
    let status = client.status().unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "round trips stayed prompt alongside the stalled peers"
    );
    // The abusive peers may by now have been cut off (a valve-closed
    // connection looks like a mid-frame stall and times out) — that is
    // a defense, not a failure. What matters: the loop stayed live.
    assert!(status.connections_active >= 1);
    assert!(
        poured > 8,
        "the slow reader got past the pipeline cap before jamming"
    );
    drop(stalled);
    drop(deaf);
    server.shutdown().unwrap();
}

#[test]
fn ingest_is_all_or_nothing_per_batch_over_the_wire() {
    // A batch the engine refuses to make durable is fully refused: the
    // response is the Error, and the WAL position does not move. (Here
    // the failure is injected by dropping the WAL directory's write
    // permission — the closest portable stand-in for a full disk.)
    let dir = ScratchDir::new("serve-atomic");
    let (server, alice, cais) = start_server(&dir, quick_config());
    let addr = server.local_addr().to_string();
    let mut client = LtamClient::connect(&addr).unwrap();
    assert!(client.check_access(Time(10), alice, cais).unwrap());

    let mut perms = std::fs::metadata(dir.path()).unwrap().permissions();
    let original = perms.clone();
    use std::os::unix::fs::PermissionsExt;
    perms.set_mode(0o555);
    std::fs::set_permissions(dir.path(), perms).unwrap();
    // Rotation-on-append will need to create a segment and fail; large
    // batches force rotation by exceeding the segment threshold.
    let big: Vec<Event> = (0..20_000u64)
        .map(|i| Event::Request {
            time: Time(11 + i),
            subject: alice,
            location: cais,
        })
        .collect();
    let result = client.ingest(&big);
    std::fs::set_permissions(dir.path(), original).unwrap();
    let status = client.status().unwrap();
    match result {
        Err(ClientError::Server {
            code: ErrorCode::Internal,
            ..
        }) => {
            assert_eq!(status.events_ingested, 1, "refused batch left no trace");
        }
        Ok(_) => {
            // The OS let the append through (e.g. running as root, where
            // permission bits don't bind): the batch must then be fully
            // applied — never partially.
            assert_eq!(status.events_ingested, 1 + big.len() as u64);
        }
        Err(other) => panic!("expected a server-reported refusal, got {other:?}"),
    }
    server.shutdown().unwrap();
}
