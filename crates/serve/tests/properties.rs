//! Property tests for the wire layer, held to the same bar as the WAL
//! codec's: round-trips are exact, and damaged bytes — truncations,
//! bit flips, garbage — decode to errors, never panics, and **never a
//! wrong-but-valid message** (the frame CRC is checked before any body
//! is interpreted, and CRC32 catches every single-bit flip of the
//! payload).

use ltam_core::subject::SubjectId;
use ltam_engine::batch::Event;
use ltam_graph::LocationId;
use ltam_serve::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameAssembler, HistoryQuery, Request, Response, DEFAULT_MAX_FRAME_BYTES,
};
use ltam_time::{Interval, Time};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_event() -> impl Strategy<Value = Event> {
    let fields = || (0u64..=u64::MAX, 0u32..=u32::MAX, 0u32..=u32::MAX);
    prop_oneof![
        fields().prop_map(|(t, s, l)| Event::Request {
            time: Time(t),
            subject: SubjectId(s),
            location: LocationId(l),
        }),
        fields().prop_map(|(t, s, l)| Event::Enter {
            time: Time(t),
            subject: SubjectId(s),
            location: LocationId(l),
        }),
        fields().prop_map(|(t, s, l)| Event::Exit {
            time: Time(t),
            subject: SubjectId(s),
            location: LocationId(l),
        }),
        (0u64..=u64::MAX).prop_map(|t| Event::Tick { now: Time(t) }),
    ]
}

fn arb_window() -> impl Strategy<Value = Interval> {
    (0u64..1_000_000, 0u64..1_000_000).prop_map(|(a, b)| Interval::lit(a.min(b), a.max(b)))
}

fn arb_request() -> impl Strategy<Value = Request> {
    let swipe = (0u64..=u64::MAX, 0u32..=u32::MAX, 0u32..=u32::MAX).prop_map(|(t, s, l)| {
        Request::Check(Event::Request {
            time: Time(t),
            subject: SubjectId(s),
            location: LocationId(l),
        })
    });
    prop_oneof![
        prop::collection::vec(arb_event(), 0..24).prop_map(Request::Ingest),
        swipe,
        (0u32..=u32::MAX, 0u64..=u64::MAX).prop_map(|(s, t)| Request::Query(
            HistoryQuery::Whereabouts {
                subject: SubjectId(s),
                at: Time(t),
            }
        )),
        (0u32..=u32::MAX, arb_window()).prop_map(|(l, w)| Request::Query(
            HistoryQuery::PresentDuring {
                location: LocationId(l),
                window: w,
            }
        )),
        (0u32..=u32::MAX, arb_window()).prop_map(|(s, w)| Request::Query(HistoryQuery::Contacts {
            subject: SubjectId(s),
            window: w,
        })),
        arb_window().prop_map(|w| Request::Query(HistoryQuery::ViolationsIn { window: w })),
        Just(Request::Query(HistoryQuery::Status)),
    ]
}

/// Frame a request exactly as the client would put it on the wire.
fn framed(request: &Request) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &encode_request(request)).expect("vec write");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary requests survive the full frame → parse round trip
    /// bit-exactly.
    #[test]
    fn framed_requests_round_trip(request in arb_request()) {
        let bytes = framed(&request);
        let payload = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME_BYTES)
            .expect("intact frames read");
        prop_assert_eq!(decode_request(&payload).expect("intact payloads decode"), request);
    }

    /// Every strict prefix of a framed request fails to read — the
    /// stream can tear anywhere (header, payload, mid-varint) without
    /// a panic or a silent success.
    #[test]
    fn truncated_frames_always_error(request in arb_request(), cut_seed in 0usize..4096) {
        let bytes = framed(&request);
        let cut = cut_seed % bytes.len();
        let result = read_frame(&mut Cursor::new(&bytes[..cut]), DEFAULT_MAX_FRAME_BYTES);
        prop_assert!(result.is_err(), "cut at {} of {}", cut, bytes.len());
    }

    /// A single flipped bit anywhere in the frame is caught: the read
    /// or decode errors, and can never produce a different valid
    /// message. (A payload flip is guaranteed caught by CRC32; a
    /// header flip either breaks the read or breaks the CRC check.)
    #[test]
    fn bit_flipped_frames_never_yield_a_wrong_message(
        request in arb_request(),
        byte_seed in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut bytes = framed(&request);
        let i = byte_seed % bytes.len();
        bytes[i] ^= 1 << bit;
        let outcome = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME_BYTES)
            .map_err(|_| ())
            .and_then(|payload| decode_request(&payload).map_err(|_| ()));
        prop_assert!(outcome.is_err(), "flip at byte {} bit {}", i, bit);
    }

    /// Arbitrary garbage never panics the frame reader or the decoders.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME_BYTES);
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// The incremental assembler is chunking-invariant: TCP may hand
    /// the same framed stream to the poll loop cut at **any** byte
    /// boundaries — mid-header, mid-payload, many frames per chunk —
    /// and the decoded request sequence must be identical to reading
    /// the stream whole.
    #[test]
    fn assembler_decodes_identically_across_arbitrary_splits(
        requests in prop::collection::vec(arb_request(), 1..10),
        cut_seeds in prop::collection::vec(0usize..65536, 0..32),
    ) {
        let mut stream = Vec::new();
        for r in &requests {
            stream.extend_from_slice(&framed(r));
        }
        let mut cuts: Vec<usize> = cut_seeds.iter().map(|c| c % (stream.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME_BYTES);
        let mut decoded = Vec::new();
        let mut at = 0usize;
        for end in cuts.into_iter().chain(std::iter::once(stream.len())) {
            asm.push(&stream[at..end]);
            at = end;
            while let Some(payload) = asm.next_frame().expect("intact stream") {
                decoded.push(decode_request(&payload).expect("intact payload"));
            }
        }
        prop_assert_eq!(decoded, requests);
        prop_assert!(!asm.mid_frame(), "stream fully consumed");
    }

    /// A framed stream of many requests parses back message by message
    /// (connections carry back-to-back frames).
    #[test]
    fn framed_streams_parse_frame_by_frame(requests in prop::collection::vec(arb_request(), 0..12)) {
        let mut stream = Vec::new();
        for r in &requests {
            stream.extend_from_slice(&framed(r));
        }
        let mut cursor = Cursor::new(&stream);
        let mut back = Vec::new();
        while (cursor.position() as usize) < stream.len() {
            let payload = read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES).expect("stream frame");
            back.push(decode_request(&payload).expect("stream payload"));
        }
        prop_assert_eq!(back, requests);
    }

    /// Responses round-trip too (violations and contact rows travel
    /// the other way).
    #[test]
    fn framed_responses_round_trip(granted in any::<bool>(), n in 0usize..8) {
        let response = Response::Ingested {
            processed: n,
            granted: n,
            denied: 0,
            violations: (0..n)
                .map(|i| ltam_engine::Violation::UnauthorizedEntry {
                    time: Time(i as u64),
                    subject: SubjectId(i as u32),
                    location: LocationId(1),
                })
                .collect(),
        };
        let access = Response::Access { granted };
        for r in [&response, &access] {
            let mut bytes = Vec::new();
            write_frame(&mut bytes, &encode_response(r)).unwrap();
            let payload = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME_BYTES).unwrap();
            prop_assert_eq!(&decode_response(&payload).unwrap(), r);
        }
    }
}
