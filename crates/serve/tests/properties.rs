//! Property tests for the wire layer, held to the same bar as the WAL
//! codec's: round-trips are exact, and damaged bytes — truncations,
//! bit flips, garbage — decode to errors, never panics, and **never a
//! wrong-but-valid message** (the frame CRC is checked before any body
//! is interpreted, and CRC32 catches every single-bit flip of the
//! payload).

use ltam_core::capability::{AdminOp, Scope, TokenId};
use ltam_core::subject::SubjectId;
use ltam_engine::batch::Event;
use ltam_graph::LocationId;
use ltam_serve::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameAssembler, HistoryQuery, Request, Response, DEFAULT_MAX_FRAME_BYTES,
};
use ltam_time::{Interval, Time};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_event() -> impl Strategy<Value = Event> {
    let fields = || (0u64..=u64::MAX, 0u32..=u32::MAX, 0u32..=u32::MAX);
    prop_oneof![
        fields().prop_map(|(t, s, l)| Event::Request {
            time: Time(t),
            subject: SubjectId(s),
            location: LocationId(l),
        }),
        fields().prop_map(|(t, s, l)| Event::Enter {
            time: Time(t),
            subject: SubjectId(s),
            location: LocationId(l),
        }),
        fields().prop_map(|(t, s, l)| Event::Exit {
            time: Time(t),
            subject: SubjectId(s),
            location: LocationId(l),
        }),
        (0u64..=u64::MAX).prop_map(|t| Event::Tick { now: Time(t) }),
    ]
}

fn arb_window() -> impl Strategy<Value = Interval> {
    (0u64..1_000_000, 0u64..1_000_000).prop_map(|(a, b)| Interval::lit(a.min(b), a.max(b)))
}

fn arb_scope() -> impl Strategy<Value = Scope> {
    prop_oneof![
        Just(Scope::Query),
        Just(Scope::Replicate),
        Just(Scope::Admin),
        (
            any::<bool>(),
            prop::collection::vec((0u32..=u32::MAX).prop_map(LocationId), 0..4)
        )
            .prop_map(|(all, list)| Scope::Ingest {
                locations: if all { None } else { Some(list) },
            }),
    ]
}

fn arb_admin_op() -> impl Strategy<Value = AdminOp> {
    prop_oneof![
        (
            0u32..=u32::MAX,
            prop::collection::vec(arb_scope(), 0..4),
            arb_window(),
            "[ -~]{0,24}",
        )
            .prop_map(|(s, scopes, validity, secret)| AdminOp::MintToken {
                subject: SubjectId(s),
                scopes,
                validity,
                secret,
            }),
        any::<u64>().prop_map(|id| AdminOp::RevokeToken { id: TokenId(id) }),
        (0u32..=u32::MAX, any::<u8>()).prop_map(|(s, level)| AdminOp::SetTrust {
            subject: SubjectId(s),
            level,
        }),
        any::<u8>().prop_map(|threshold| AdminOp::SetTrustThreshold { threshold }),
        any::<bool>().prop_map(|required| AdminOp::SetAuthRequired { required }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    let swipe = (0u64..=u64::MAX, 0u32..=u32::MAX, 0u32..=u32::MAX).prop_map(|(t, s, l)| {
        Request::Check(Event::Request {
            time: Time(t),
            subject: SubjectId(s),
            location: LocationId(l),
        })
    });
    prop_oneof![
        prop::collection::vec(arb_event(), 0..24).prop_map(Request::Ingest),
        swipe,
        (0u32..=u32::MAX, 0u64..=u64::MAX).prop_map(|(s, t)| Request::Query(
            HistoryQuery::Whereabouts {
                subject: SubjectId(s),
                at: Time(t),
            }
        )),
        (0u32..=u32::MAX, arb_window()).prop_map(|(l, w)| Request::Query(
            HistoryQuery::PresentDuring {
                location: LocationId(l),
                window: w,
            }
        )),
        (0u32..=u32::MAX, arb_window()).prop_map(|(s, w)| Request::Query(HistoryQuery::Contacts {
            subject: SubjectId(s),
            window: w,
        })),
        arb_window().prop_map(|w| Request::Query(HistoryQuery::ViolationsIn { window: w })),
        Just(Request::Query(HistoryQuery::Status)),
        // The metrics scrape frame rides every damage property below:
        // round-trip, truncation totality, bit-flip rejection, and
        // chunking invariance, same as every other kind.
        Just(Request::Metrics),
        // So do the auth frames: arbitrary token secrets (any UTF-8,
        // including empty) and every simple admin RPC. A flipped bit
        // in a Hello or a MintToken must never authenticate as — or
        // mint — something else; the frame CRC plus these decoders
        // guarantee refusal instead.
        "[ -~]{0,32}".prop_map(|token| Request::Hello { token }),
        arb_admin_op().prop_map(Request::Admin),
        (any::<bool>(), 0u32..=u32::MAX, arb_window()).prop_map(|(all, s, window)| {
            Request::Query(HistoryQuery::Quarantine {
                source: if all { None } else { Some(SubjectId(s)) },
                window,
            })
        }),
    ]
}

/// Frame a request exactly as the client would put it on the wire.
fn framed(request: &Request) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &encode_request(request)).expect("vec write");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary requests survive the full frame → parse round trip
    /// bit-exactly.
    #[test]
    fn framed_requests_round_trip(request in arb_request()) {
        let bytes = framed(&request);
        let payload = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME_BYTES)
            .expect("intact frames read");
        prop_assert_eq!(decode_request(&payload).expect("intact payloads decode"), request);
    }

    /// Every strict prefix of a framed request fails to read — the
    /// stream can tear anywhere (header, payload, mid-varint) without
    /// a panic or a silent success.
    #[test]
    fn truncated_frames_always_error(request in arb_request(), cut_seed in 0usize..4096) {
        let bytes = framed(&request);
        let cut = cut_seed % bytes.len();
        let result = read_frame(&mut Cursor::new(&bytes[..cut]), DEFAULT_MAX_FRAME_BYTES);
        prop_assert!(result.is_err(), "cut at {} of {}", cut, bytes.len());
    }

    /// A single flipped bit anywhere in the frame is caught: the read
    /// or decode errors, and can never produce a different valid
    /// message. (A payload flip is guaranteed caught by CRC32; a
    /// header flip either breaks the read or breaks the CRC check.)
    #[test]
    fn bit_flipped_frames_never_yield_a_wrong_message(
        request in arb_request(),
        byte_seed in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut bytes = framed(&request);
        let i = byte_seed % bytes.len();
        bytes[i] ^= 1 << bit;
        let outcome = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME_BYTES)
            .map_err(|_| ())
            .and_then(|payload| decode_request(&payload).map_err(|_| ()));
        prop_assert!(outcome.is_err(), "flip at byte {} bit {}", i, bit);
    }

    /// Arbitrary garbage never panics the frame reader or the decoders.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME_BYTES);
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// The incremental assembler is chunking-invariant: TCP may hand
    /// the same framed stream to the poll loop cut at **any** byte
    /// boundaries — mid-header, mid-payload, many frames per chunk —
    /// and the decoded request sequence must be identical to reading
    /// the stream whole.
    #[test]
    fn assembler_decodes_identically_across_arbitrary_splits(
        requests in prop::collection::vec(arb_request(), 1..10),
        cut_seeds in prop::collection::vec(0usize..65536, 0..32),
    ) {
        let mut stream = Vec::new();
        for r in &requests {
            stream.extend_from_slice(&framed(r));
        }
        let mut cuts: Vec<usize> = cut_seeds.iter().map(|c| c % (stream.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME_BYTES);
        let mut decoded = Vec::new();
        let mut at = 0usize;
        for end in cuts.into_iter().chain(std::iter::once(stream.len())) {
            asm.push(&stream[at..end]);
            at = end;
            while let Some(payload) = asm.next_frame().expect("intact stream") {
                decoded.push(decode_request(&payload).expect("intact payload"));
            }
        }
        prop_assert_eq!(decoded, requests);
        prop_assert!(!asm.mid_frame(), "stream fully consumed");
    }

    /// A framed stream of many requests parses back message by message
    /// (connections carry back-to-back frames).
    #[test]
    fn framed_streams_parse_frame_by_frame(requests in prop::collection::vec(arb_request(), 0..12)) {
        let mut stream = Vec::new();
        for r in &requests {
            stream.extend_from_slice(&framed(r));
        }
        let mut cursor = Cursor::new(&stream);
        let mut back = Vec::new();
        while (cursor.position() as usize) < stream.len() {
            let payload = read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES).expect("stream frame");
            back.push(decode_request(&payload).expect("stream payload"));
        }
        prop_assert_eq!(back, requests);
    }

    /// Responses round-trip too (violations and contact rows travel
    /// the other way).
    #[test]
    fn framed_responses_round_trip(granted in any::<bool>(), n in 0usize..8) {
        let response = Response::Ingested {
            processed: n,
            granted: n,
            denied: 0,
            violations: (0..n)
                .map(|i| ltam_engine::Violation::UnauthorizedEntry {
                    time: Time(i as u64),
                    subject: SubjectId(i as u32),
                    location: LocationId(1),
                })
                .collect(),
        };
        let access = Response::Access { granted };
        for r in [&response, &access] {
            let mut bytes = Vec::new();
            write_frame(&mut bytes, &encode_response(r)).unwrap();
            let payload = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME_BYTES).unwrap();
            prop_assert_eq!(&decode_response(&payload).unwrap(), r);
        }
    }
}

// --- replication: frame codec and the resume protocol ----------------------

mod replication {
    use super::*;
    use ltam_serve::wire::{
        decode_repl_reply, encode_repl_chunk, ReplChunk, ReplChunkMeta, ReplReply, ReplRequest,
    };
    use ltam_store::replica::{wal_segment_ids, ReplFileId, TailBatch};
    use ltam_store::{ScratchDir, TailScanner, Wal, WalConfig};
    use std::path::Path;

    fn arb_file_id() -> impl Strategy<Value = ReplFileId> {
        prop_oneof![
            (any::<u64>(), any::<u64>())
                .prop_map(|(seq, epoch)| ReplFileId::Snapshot { seq, epoch }),
            (any::<u64>(), any::<u64>()).prop_map(|(from, to)| ReplFileId::Archive { from, to }),
            any::<u64>().prop_map(|first_seq| ReplFileId::WalSegment { first_seq }),
            Just(ReplFileId::EpochMarker),
        ]
    }

    fn arb_repl_request() -> impl Strategy<Value = ReplRequest> {
        prop_oneof![
            Just(ReplRequest::Manifest),
            (arb_file_id(), any::<u64>(), any::<u32>())
                .prop_map(|(file, offset, len)| ReplRequest::Fetch { file, offset, len }),
        ]
    }

    fn arb_chunk() -> impl Strategy<Value = ReplChunk> {
        (
            (arb_file_id(), any::<u64>(), any::<u64>(), any::<bool>()),
            (
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                prop::collection::vec(any::<u8>(), 0..256),
            ),
        )
            .prop_map(
                |((file, offset, file_len, sealed), (applied, policy_epoch, rw, bytes))| {
                    ReplChunk {
                        meta: ReplChunkMeta {
                            file,
                            offset,
                            file_len,
                            sealed,
                            applied,
                            policy_epoch,
                            enforcement_epoch: policy_epoch / 2,
                            retention_watermark: rw,
                        },
                        bytes,
                    }
                },
            )
    }

    /// Unwrap plain-event tail batches (these WALs hold no quarantine
    /// records; shipping one here would be a scanner bug).
    fn plain(batches: Vec<TailBatch>) -> Vec<Vec<Event>> {
        batches
            .into_iter()
            .map(|b| match b {
                TailBatch::Events(events) => events,
                TailBatch::Quarantine { .. } | TailBatch::Situation(_) => {
                    panic!("plain WALs hold no quarantine or situation records")
                }
            })
            .collect()
    }

    /// Write `batches` into a WAL (one record per batch), rotating
    /// after every `rotate_every` batches, and return the segment ids.
    fn build_wal(dir: &Path, batches: &[Vec<Event>], rotate_every: usize) -> Vec<u64> {
        let (mut wal, _) = Wal::open(
            dir,
            WalConfig {
                fsync: false,
                ..WalConfig::default()
            },
        )
        .expect("open wal");
        for (i, b) in batches.iter().enumerate() {
            wal.append_batch(b).expect("append");
            if rotate_every > 0 && (i + 1) % rotate_every == 0 {
                wal.rotate().expect("rotate");
            }
        }
        wal_segment_ids(dir).expect("list segments")
    }

    /// Drive a scanner over an intact on-disk WAL to the end,
    /// `chunk`-sized fetches at a time, asserting no faults.
    fn drive_clean(dir: &Path, scanner: &mut TailScanner, chunk: usize) -> Vec<Vec<Event>> {
        let segs = wal_segment_ids(dir).expect("list segments");
        let mut out = Vec::new();
        loop {
            let seg = scanner.segment();
            let sealed = segs.iter().any(|&s| s > seg);
            let path = ReplFileId::WalSegment { first_seq: seg }.path(dir);
            let bytes = std::fs::read(&path).expect("read segment");
            let at = scanner.offset() as usize;
            let end = (at + chunk.max(1)).min(bytes.len());
            let step = scanner.apply(&bytes[at..end], bytes.len() as u64, sealed);
            assert_eq!(step.fault, None, "intact logs never fault");
            out.extend(plain(step.batches));
            if scanner.segment() == seg && scanner.offset() as usize >= bytes.len() && !sealed {
                return out;
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Replication requests ride the ordinary request codec:
        /// exact round trips for arbitrary file ids and cursors.
        #[test]
        fn framed_repl_requests_round_trip(repl in arb_repl_request()) {
            let request = Request::Repl(repl);
            let bytes = framed(&request);
            let payload = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME_BYTES)
                .expect("intact frames read");
            prop_assert_eq!(decode_request(&payload).expect("intact payloads decode"), request);
        }

        /// Chunk frames round-trip bit-exactly (the raw segment bytes
        /// travel unescaped), and one flipped bit anywhere in the
        /// frame — meta or raw bytes — is caught by the frame CRC or
        /// the decoder, never surfacing as a different valid chunk.
        #[test]
        fn repl_chunk_frames_round_trip_and_reject_bit_flips(
            chunk in arb_chunk(),
            byte_seed in 0usize..65536,
            bit in 0u8..8,
        ) {
            let mut bytes = Vec::new();
            write_frame(&mut bytes, &encode_repl_chunk(&chunk)).expect("vec write");
            let payload = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME_BYTES)
                .expect("intact frames read");
            match decode_repl_reply(&payload).expect("intact chunks decode") {
                ReplReply::Chunk(back) => {
                    prop_assert_eq!(back.meta, chunk.meta);
                    prop_assert_eq!(&back.bytes, &chunk.bytes);
                }
                ReplReply::Other(r) => prop_assert!(false, "chunk decoded as {r:?}"),
            }
            let i = byte_seed % bytes.len();
            bytes[i] ^= 1 << bit;
            let outcome = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME_BYTES)
                .map_err(|_| ())
                .and_then(|p| decode_repl_reply(&p).map_err(|_| ()));
            prop_assert!(outcome.is_err(), "flip at byte {} bit {}", i, bit);
        }

        /// Every strict prefix of a framed chunk fails to read: a
        /// connection dying mid-chunk can never deliver one.
        #[test]
        fn truncated_repl_chunk_frames_always_error(
            chunk in arb_chunk(),
            cut_seed in 0usize..65536,
        ) {
            let mut bytes = Vec::new();
            write_frame(&mut bytes, &encode_repl_chunk(&chunk)).expect("vec write");
            let cut = cut_seed % bytes.len();
            prop_assert!(
                read_frame(&mut Cursor::new(&bytes[..cut]), DEFAULT_MAX_FRAME_BYTES).is_err(),
                "cut at {} of {}", cut, bytes.len()
            );
        }

        /// THE replication honesty property: ship a real WAL segment
        /// through the follower's scanner with arbitrary truncation
        /// and an arbitrary bit flip, at arbitrary fetch chunk sizes —
        /// whatever the scanner yields is an exact prefix of the true
        /// batch sequence. Damage can stop replication; it can never
        /// reshape it.
        #[test]
        fn damaged_shipped_segments_never_yield_wrong_records(
            batches in prop::collection::vec(
                prop::collection::vec(arb_event(), 1..4), 1..6),
            cut_seed in 0usize..65536,
            flip in (any::<bool>(), 0usize..65536, 0u8..8),
            chunk in 1usize..512,
            sealed in any::<bool>(),
        ) {
            let dir = ScratchDir::new("serve-prop-damage");
            build_wal(dir.path(), &batches, 0);
            let path = ReplFileId::WalSegment { first_seq: 0 }.path(dir.path());
            let mut bytes = std::fs::read(&path).expect("read segment");
            let cut = cut_seed % (bytes.len() + 1);
            bytes.truncate(cut);
            let (do_flip, flip_seed, flip_bit) = flip;
            if do_flip && !bytes.is_empty() {
                let i = flip_seed % bytes.len();
                bytes[i] ^= 1 << flip_bit;
            }
            let file_len = bytes.len() as u64;
            let mut scanner = TailScanner::start(0, &[0]).expect("segment 0 covers");
            let mut got: Vec<Vec<Event>> = Vec::new();
            loop {
                if scanner.segment() != 0 {
                    break; // consumed the whole (sealed) segment
                }
                let at = scanner.offset() as usize;
                let end = (at + chunk).min(bytes.len());
                let step = scanner.apply(&bytes[at..end], file_len, sealed);
                let fault = step.fault;
                got.extend(plain(step.batches));
                if fault.is_some() || scanner.offset() as usize >= bytes.len() {
                    break;
                }
            }
            prop_assert!(got.len() <= batches.len(), "never more than was written");
            prop_assert_eq!(&got[..], &batches[..got.len()], "exact prefix or nothing");
        }

        /// The resume protocol: a follower that reconnects knowing
        /// only its applied sequence is re-positioned by
        /// `TailScanner::start` to replay exactly the events at and
        /// after that sequence — never a duplicate, never a gap —
        /// across segment boundaries and for every possible floor.
        #[test]
        fn resume_from_any_applied_floor_replays_exactly_the_suffix(
            batches in prop::collection::vec(
                prop::collection::vec(arb_event(), 1..4), 1..8),
            rotate_every in 1usize..4,
            floor_seed in 0usize..65536,
            chunk in 1usize..256,
        ) {
            let dir = ScratchDir::new("serve-prop-resume");
            let segs = build_wal(dir.path(), &batches, rotate_every);
            let all: Vec<Event> = batches.iter().flatten().cloned().collect();
            let floor = floor_seed % (all.len() + 1);
            let mut scanner = TailScanner::start(floor as u64, &segs)
                .expect("floor within the retained log");
            let got: Vec<Event> = drive_clean(dir.path(), &mut scanner, chunk)
                .into_iter()
                .flatten()
                .collect();
            prop_assert_eq!(&got[..], &all[floor..], "floor {}", floor);
        }
    }
}
