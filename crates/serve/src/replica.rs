//! The follower side of replication: snapshot bootstrap and the WAL
//! tailing loop.
//!
//! ## Protocol
//!
//! Replication is **pull**: a follower polls its primary over the
//! ordinary framed wire protocol
//! ([`ReplRequest::Manifest`](crate::wire::ReplRequest::Manifest) /
//! [`ReplRequest::Fetch`](crate::wire::ReplRequest::Fetch)), so the
//! primary keeps no per-follower state at all — a follower that dies
//! costs it nothing, and any number may tail the same primary.
//!
//! [`bootstrap_follower`] copies the primary's newest snapshot, archive
//! chain and policy-epoch marker into a fresh directory and opens it
//! with the normal [`DurableEngine::open`] path — every CRC, version
//! and epoch check crash recovery performs runs against the shipped
//! bytes too. From there the replication loop (spawned by
//! `Server::start_follower`) tails the primary's WAL with a
//! [`TailScanner`]: verified record batches are replayed through the
//! follower's own group-commit thread — **normal ingest**, so the
//! follower WAL-logs, snapshots and enforces exactly like a primary —
//! and the published watermark rises to the applied sequence.
//!
//! ## The never-diverge contract
//!
//! The loop only ever applies bytes that verified (CRC + total event
//! decoding) at the correct cursor, with a policy epoch matching its
//! own. Everything else parks it: an epoch swap or compacted-away
//! segment sets [`ReplicaState::NeedsBootstrap`]; persistent
//! verification faults do the same after a bounded retry (one poll's
//! worth of patience covers an append caught mid-write); transport
//! errors set [`ReplicaState::Disconnected`] and retry forever. A
//! parked or lagging follower keeps serving reads at its watermark —
//! stale is a state, wrong is a bug.
//!
//! The watermark is **monotone**: it starts at the floor the follower
//! was started with (a re-bootstrap passes the previous instance's
//! watermark) and only ever rises with applied events. Until the
//! engine catches back up to the floor, history queries are refused
//! with [`ErrorCode::Stale`] rather
//! than answered from a state older than one this follower already
//! served.

use crate::client::{ClientError, LtamClient};
use crate::wire::{ErrorCode, ReplManifest, ReplicaState, ReplicaStatus};
use ltam_store::replica::{ReplFile, ReplFileId, TailBatch, TailScanner};
use ltam_store::{CommitHandle, DurableEngine, ReadView, StoreConfig};
use parking_lot::Mutex;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Tunables for a follower's replication loop.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The primary's address (e.g. `"127.0.0.1:4774"`).
    pub primary_addr: String,
    /// How long to sleep once caught up (and between reconnect
    /// attempts). The staleness lag floor.
    pub poll_interval: Duration,
    /// Max WAL bytes fetched per request.
    pub chunk_bytes: u32,
    /// The watermark this follower has already served reads at (0 for
    /// a first bootstrap; a re-bootstrap passes the previous
    /// instance's watermark). History queries are refused with
    /// [`ErrorCode::Stale`] until the
    /// engine catches up to it, and the published watermark never
    /// drops below it.
    pub watermark_floor: u64,
    /// The capability-token secret this follower authenticates its
    /// replication connection with (`None` for an open-wire primary).
    /// A revocation mid-tail surfaces as the primary refusing fetches:
    /// the loop parks [`ReplicaState::Disconnected`] — its *position*
    /// is still good — and resumes monotonically once the operator
    /// re-mints the secret.
    pub token: Option<String>,
}

impl ReplicaConfig {
    /// Defaults against `primary_addr`: 20ms polls, 1MiB chunks, no
    /// floor.
    pub fn new(primary_addr: &str) -> ReplicaConfig {
        ReplicaConfig {
            primary_addr: primary_addr.to_string(),
            poll_interval: Duration::from_millis(20),
            chunk_bytes: 1 << 20,
            watermark_floor: 0,
            token: None,
        }
    }
}

/// Re-fetches of the same faulty cursor before the loop gives up and
/// parks. A chunk read can race an in-flight append (or a rotation)
/// into a transient torn look; a real corruption never heals.
const MAX_FAULT_RETRIES: u32 = 8;

const STATE_CATCHING_UP: u8 = 0;
const STATE_STREAMING: u8 = 1;
const STATE_DISCONNECTED: u8 = 2;
const STATE_NEEDS_BOOTSTRAP: u8 = 3;

/// The replication loop's shared, atomically-published face: the
/// serving threads read it for status and staleness gating.
#[derive(Debug)]
pub(crate) struct ReplicaShared {
    primary_addr: String,
    floor: u64,
    watermark: AtomicU64,
    primary_applied: AtomicU64,
    primary_epoch: AtomicU64,
    state: AtomicU8,
    last_error: Mutex<Option<String>>,
}

impl ReplicaShared {
    pub(crate) fn new(config: &ReplicaConfig, applied: u64) -> ReplicaShared {
        ReplicaShared {
            primary_addr: config.primary_addr.clone(),
            floor: config.watermark_floor,
            watermark: AtomicU64::new(config.watermark_floor.max(applied)),
            primary_applied: AtomicU64::new(0),
            primary_epoch: AtomicU64::new(0),
            state: AtomicU8::new(STATE_CATCHING_UP),
            last_error: Mutex::new(None),
        }
    }

    /// The watermark floor: reads below it are refused, never served.
    pub(crate) fn floor(&self) -> u64 {
        self.floor
    }

    /// The primary this follower tails (for redirect errors).
    pub(crate) fn primary_addr(&self) -> &str {
        &self.primary_addr
    }

    /// Raise the published watermark to `applied` (never lowers it —
    /// `fetch_max`, so monotonicity survives any interleaving).
    fn publish(&self, applied: u64) {
        self.watermark.fetch_max(applied, Ordering::AcqRel);
        self.publish_lag();
    }

    /// Refresh the `repl_lag_events` gauge from the two published
    /// counters. Called from both sides of the race (watermark rises,
    /// primary advances) so the gauge tracks whichever moved last.
    fn publish_lag(&self) {
        let primary = self.primary_applied.load(Ordering::Acquire);
        let applied = self.watermark.load(Ordering::Acquire);
        let lag = primary.saturating_sub(applied).min(i64::MAX as u64) as i64;
        ltam_obs::gauge!(
            "repl_lag_events",
            "Events the primary has applied that this follower has not (its replication lag)"
        )
        .set(lag);
    }

    fn set_state(&self, state: u8, error: Option<String>) {
        let prev = self.state.swap(state, Ordering::AcqRel);
        if prev != state {
            let name = match state {
                STATE_STREAMING => "streaming",
                STATE_DISCONNECTED => "disconnected",
                STATE_NEEDS_BOOTSTRAP => "needs_bootstrap",
                _ => "catching_up",
            };
            // Transitions are rare; the per-call registry lock is fine.
            ltam_obs::registry()
                .counter(
                    "repl_state_transitions_total",
                    &[("state", name)],
                    "Replication-loop state transitions, by the state entered",
                )
                .inc();
        }
        if error.is_some() || state == STATE_STREAMING || state == STATE_CATCHING_UP {
            *self.last_error.lock() = error;
        }
    }

    pub(crate) fn status(&self, applied: u64) -> ReplicaStatus {
        ReplicaStatus {
            primary_addr: self.primary_addr.clone(),
            watermark: self.watermark.load(Ordering::Acquire),
            applied,
            primary_applied: self.primary_applied.load(Ordering::Acquire),
            primary_epoch: self.primary_epoch.load(Ordering::Acquire),
            state: match self.state.load(Ordering::Acquire) {
                STATE_STREAMING => ReplicaState::Streaming,
                STATE_DISCONNECTED => ReplicaState::Disconnected,
                STATE_NEEDS_BOOTSTRAP => ReplicaState::NeedsBootstrap,
                _ => ReplicaState::CatchingUp,
            },
            last_error: self.last_error.lock().clone(),
        }
    }
}

fn replication_error(e: ClientError) -> io::Error {
    io::Error::other(format!("replication: {e}"))
}

/// Fetch one immutable store file from the primary into `dir`,
/// written to a temp name and renamed only once complete — a killed
/// bootstrap leaves no half-file a later open could mistake for the
/// real thing.
fn fetch_file(
    client: &mut LtamClient,
    dir: &Path,
    file: ReplFile,
    chunk_bytes: u32,
) -> io::Result<()> {
    let path = file.file.path(dir);
    let tmp = dir.join(format!("{}.fetch", file.file.file_name()));
    let mut out = fs::File::create(&tmp)?;
    let mut offset = 0u64;
    loop {
        let chunk = client
            .repl_fetch(file.file, offset, chunk_bytes)
            .map_err(replication_error)?;
        if chunk.bytes.is_empty() {
            break;
        }
        out.write_all(&chunk.bytes)?;
        offset += chunk.bytes.len() as u64;
    }
    if offset < file.len {
        return Err(io::Error::other(format!(
            "short transfer of {}: got {offset} of {} bytes",
            file.file.file_name(),
            file.len
        )));
    }
    out.sync_data()?;
    drop(out);
    fs::rename(&tmp, &path)?;
    Ok(())
}

/// Bootstrap a follower store in `dir` from the primary at
/// `primary_addr`: fetch the newest snapshot, the archive chain and
/// the policy-epoch marker, then open the directory through the
/// normal recovery path (which re-verifies every shipped byte — CRCs,
/// versions, the epoch marker — and positions the WAL at the snapshot
/// sequence). The returned engine is ready for
/// `Server::start_follower`.
///
/// `dir` must not already hold a store; the store config's shard
/// count is irrelevant — the follower inherits the shard count baked
/// into the snapshot.
pub fn bootstrap_follower(
    dir: &Path,
    primary_addr: &str,
    config: StoreConfig,
) -> io::Result<DurableEngine> {
    bootstrap_follower_as(dir, primary_addr, None, config)
}

/// [`bootstrap_follower`] with a replication capability token: the
/// fetch connection authenticates with `token`'s secret before asking
/// for the manifest — required against a primary whose wire demands
/// auth. The same secret then goes in [`ReplicaConfig::token`] for the
/// tailing loop.
pub fn bootstrap_follower_as(
    dir: &Path,
    primary_addr: &str,
    token: Option<&str>,
    config: StoreConfig,
) -> io::Result<DurableEngine> {
    fs::create_dir_all(dir)?;
    if ltam_store::replica::newest_snapshot(dir)?.is_some()
        || !ltam_store::replica::wal_segment_ids(dir)?.is_empty()
    {
        return Err(io::Error::other(format!(
            "{} already holds a store; bootstrap wants a fresh directory",
            dir.display()
        )));
    }
    let mut client = LtamClient::connect(primary_addr)?;
    if let Some(token) = token {
        client.hello(token).map_err(replication_error)?;
    }
    let manifest = client.repl_manifest().map_err(replication_error)?;
    let Some(snapshot) = manifest.snapshot else {
        return Err(io::Error::other(
            "primary has no snapshot to bootstrap from",
        ));
    };
    let chunk_bytes = 1 << 20;
    for archive in &manifest.archives {
        fetch_file(&mut client, dir, *archive, chunk_bytes)?;
    }
    fetch_file(&mut client, dir, snapshot, chunk_bytes)?;
    // The marker last: it must never claim an epoch newer than the
    // fetched snapshot's (open refuses that as a policy revert), and
    // fetching it after the snapshot can only make it *older* if the
    // primary bumps concurrently — wait, older is the safe direction;
    // a *newer* marker surfaces as a loud open refusal and the
    // bootstrap is retried.
    if let Some(marker) = manifest.epoch_marker {
        fetch_file(&mut client, dir, marker, chunk_bytes)?;
    }
    let (engine, _alerts, report) = DurableEngine::open(dir, config)?;
    if let Some(e) = report.archive_error {
        return Err(io::Error::other(format!(
            "bootstrapped archive chain does not scan: {e}"
        )));
    }
    ltam_obs::counter!(
        "repl_bootstraps_total",
        "Successful follower bootstraps performed by this process"
    )
    .inc();
    Ok(engine)
}

/// Sleep up to `d`, waking early when `stop` trips.
fn sleep_while(stop: &impl Fn() -> bool, d: Duration) {
    let deadline = Instant::now() + d;
    while !stop() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The follower's replication thread body (spawned by
/// `Server::start_follower`). Polls the primary, verifies and applies
/// WAL records through `commit`, publishes the watermark in `shared`.
/// Returns when `stop` trips.
pub(crate) fn replicate_loop(
    stop: impl Fn() -> bool,
    view: ReadView,
    commit: CommitHandle,
    shared: &ReplicaShared,
    config: &ReplicaConfig,
) {
    let mut client: Option<LtamClient> = None;
    let mut scanner: Option<TailScanner> = None;
    let mut faults = 0u32;
    shared.publish(view.applied());
    while !stop() {
        // Connect (or reuse the live connection).
        let mut c = match client.take() {
            Some(c) => c,
            None => match LtamClient::connect(&config.primary_addr) {
                Ok(mut c) => {
                    // A bounded read timeout keeps shutdown prompt even
                    // against a hung primary.
                    c.set_read_timeout(Some(Duration::from_secs(1)));
                    if let Some(token) = &config.token {
                        // Authenticate before the first manifest poll.
                        // A refusal (revoked, expired, not yet minted)
                        // is a *connection* problem, not a position
                        // problem: park Disconnected and retry — once
                        // the operator re-mints the secret, tailing
                        // resumes from the same monotone cursor.
                        if let Err(e) = c.hello(token) {
                            shared
                                .set_state(STATE_DISCONNECTED, Some(format!("authenticate: {e}")));
                            sleep_while(&stop, config.poll_interval);
                            continue;
                        }
                    }
                    c
                }
                Err(e) => {
                    shared.set_state(STATE_DISCONNECTED, Some(format!("connect: {e}")));
                    sleep_while(&stop, config.poll_interval);
                    continue;
                }
            },
        };
        // One manifest poll positions (or re-positions) the tail.
        let manifest: ReplManifest = match c.repl_manifest() {
            Ok(m) => m,
            Err(e) => {
                shared.set_state(STATE_DISCONNECTED, Some(format!("manifest: {e}")));
                sleep_while(&stop, config.poll_interval);
                continue; // client dropped; reconnect next pass
            }
        };
        shared
            .primary_applied
            .fetch_max(manifest.applied, Ordering::AcqRel);
        shared.publish_lag();
        shared
            .primary_epoch
            .store(manifest.enforcement_epoch, Ordering::Release);
        if manifest.enforcement_epoch != view.enforcement_epoch() {
            // Enforcement-relevant policy edits are not WAL records:
            // tailing cannot carry such a swap across. Park — apply
            // nothing — until an operator re-bootstraps from a
            // post-swap snapshot. (Wire-auth-only edits — token mints,
            // trust tweaks — bump the *policy* epoch but not this one:
            // they do not change how events are judged, so the tail
            // keeps flowing through them.)
            shared.set_state(
                STATE_NEEDS_BOOTSTRAP,
                Some(format!(
                    "primary is on enforcement epoch {}, this follower on {}; \
                     re-bootstrap required",
                    manifest.enforcement_epoch,
                    view.enforcement_epoch()
                )),
            );
            client = Some(c);
            sleep_while(&stop, config.poll_interval.max(Duration::from_millis(50)));
            continue;
        }
        if scanner.is_none() {
            scanner = TailScanner::start(view.applied(), &manifest.wal_segments);
            if scanner.is_none() {
                shared.set_state(
                    STATE_NEEDS_BOOTSTRAP,
                    Some(format!(
                        "primary's WAL no longer covers sequence {} (compacted); re-bootstrap required",
                        view.applied()
                    )),
                );
                client = Some(c);
                sleep_while(&stop, config.poll_interval.max(Duration::from_millis(50)));
                continue;
            }
        }
        // Tail until caught up to the primary's tail (or a fault
        // parks us), then sleep one poll and re-poll the manifest.
        // The breaks say whether the connection survives the pause.
        let keep_client = loop {
            if stop() {
                break false;
            }
            let (segment, offset) = {
                let s = scanner.as_ref().expect("scanner positioned above");
                (s.segment(), s.offset())
            };
            let fetched = {
                let _span = ltam_obs::timed!(
                    "repl_fetch_seconds",
                    "Round-trip time of one WAL chunk fetch from the primary"
                );
                c.repl_fetch(
                    ReplFileId::WalSegment { first_seq: segment },
                    offset,
                    config.chunk_bytes,
                )
            };
            let chunk = match fetched {
                Ok(chunk) => chunk,
                Err(ClientError::Server {
                    code: ErrorCode::Gone,
                    message,
                    ..
                }) => {
                    // The segment vanished under us (compaction). Try to
                    // re-position off the next manifest; if nothing
                    // covers our sequence anymore, that pass parks us.
                    scanner = None;
                    shared.set_state(STATE_CATCHING_UP, Some(format!("segment gone: {message}")));
                    break true;
                }
                Err(e) => {
                    shared.set_state(STATE_DISCONNECTED, Some(format!("fetch: {e}")));
                    sleep_while(&stop, config.poll_interval);
                    break false; // reconnect via the outer loop
                }
            };
            if chunk.meta.enforcement_epoch != view.enforcement_epoch() {
                // The enforcement epoch moved while this chunk was in
                // flight; its bytes may straddle the swap. Apply
                // nothing.
                shared.set_state(
                    STATE_NEEDS_BOOTSTRAP,
                    Some(format!(
                        "primary moved to enforcement epoch {} mid-stream; re-bootstrap required",
                        chunk.meta.enforcement_epoch
                    )),
                );
                break true;
            }
            shared
                .primary_applied
                .fetch_max(chunk.meta.applied, Ordering::AcqRel);
            shared.publish_lag();
            let step = scanner.as_mut().expect("scanner positioned above").apply(
                &chunk.bytes,
                chunk.meta.file_len,
                chunk.meta.sealed,
            );
            let mut commit_failed = false;
            for batch in step.batches {
                if batch.events().is_empty() && !matches!(batch, TailBatch::Situation(_)) {
                    continue;
                }
                // Replay each shipped record as what it *was*: trusted
                // batches through enforcement, quarantine records onto
                // the follower's own quarantine ledger, situation ops
                // through the follower's own durable situation path (so
                // it judges every later record exactly as the primary
                // did, with its own WAL record and snapshot) — so a
                // follower's answers flag exactly what the primary's
                // do.
                let committed = match batch {
                    TailBatch::Events(events) => commit.commit(events).map(|_| ()),
                    TailBatch::Quarantine {
                        source,
                        level,
                        events,
                    } => commit.commit_quarantine(source, level, events).map(|_| ()),
                    TailBatch::Situation(op) => commit.situation(op).map(|_| ()),
                };
                if let Err(e) = committed {
                    // The *follower's* own store failed — nothing wrong
                    // with the shipped bytes. The scanner cursor is now
                    // ahead of the applied state, so it must be rebuilt.
                    shared.set_state(STATE_DISCONNECTED, Some(format!("local commit: {e}")));
                    scanner = None;
                    commit_failed = true;
                    break;
                }
                shared.publish(view.applied());
            }
            if commit_failed {
                sleep_while(&stop, config.poll_interval);
                break true;
            }
            if let Some(fault) = step.fault {
                faults += 1;
                if faults > MAX_FAULT_RETRIES {
                    shared.set_state(
                        STATE_NEEDS_BOOTSTRAP,
                        Some(format!(
                            "shipped WAL bytes fail verification persistently ({fault}); refusing to apply"
                        )),
                    );
                    break true;
                }
                // Transient torn look (append or rotation in flight):
                // re-fetch the same cursor after a beat.
                sleep_while(&stop, config.poll_interval.min(Duration::from_millis(10)));
                continue;
            }
            faults = 0;
            if view.applied() >= chunk.meta.applied {
                shared.set_state(STATE_STREAMING, None);
            } else {
                shared.set_state(STATE_CATCHING_UP, None);
            }
            let at_tail = !chunk.meta.sealed
                && scanner
                    .as_ref()
                    .is_some_and(|s| s.offset() >= chunk.meta.file_len);
            if at_tail {
                sleep_while(&stop, config.poll_interval);
                break true;
            }
        };
        if keep_client {
            client = Some(c);
        }
        // A parked follower (NeedsBootstrap) re-polls slowly; it still
        // reports status, it just cannot make progress on its own.
        if shared.state.load(Ordering::Acquire) == STATE_NEEDS_BOOTSTRAP {
            sleep_while(&stop, config.poll_interval.max(Duration::from_millis(50)));
        }
    }
}
