//! [`LtamClient`] — a blocking, reconnecting client for the LTAM wire
//! protocol.
//!
//! One request is in flight at a time (closed loop). After a transport
//! error the connection is dropped and the **next** call transparently
//! reconnects; the failed call itself is *not* retried, because the
//! server may or may not have applied it — an ingest resent blindly
//! could double-apply. Callers that need exactly-once must make their
//! retries idempotent (or compare end state, as the load generator
//! does).

use crate::wire::{
    self, ErrorCode, FrameError, HistoryQuery, ReplChunk, ReplManifest, ReplReply, ReplRequest,
    Request, Response, ServerRole, ServerStatus, WireError,
};
use ltam_core::capability::{AdminOp, AdminOutcome, Scope, TokenId};
use ltam_core::subject::SubjectId;
use ltam_engine::batch::{Event, QuarantinedEvent};
use ltam_engine::movement::Contact;
use ltam_engine::Violation;
use ltam_graph::LocationId;
use ltam_situate::{SituationOp, SituationOutcome};
use ltam_store::replica::ReplFileId;
use ltam_time::{Interval, Time};
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, send, or receive). The client
    /// reconnects on the next call.
    Io(io::Error),
    /// The server's bytes were not a valid response frame.
    Wire(WireError),
    /// The server answered with an error response.
    Server {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Which role refused — primary or follower. Before this field,
        /// a `Busy` refusal followed by the reconnect erased *who* said
        /// no, which a client failing over between a primary and its
        /// replicas cannot afford: `Busy` from a follower means "try
        /// another replica", `NotPrimary` means "writes go to the
        /// primary named in the message". `None` when the server
        /// redacted it: an auth-required server reveals its role only
        /// to authenticated connections.
        role: Option<ServerRole>,
    },
    /// The server answered with a response of the wrong shape for the
    /// request (a server bug; surfaced, never silently coerced).
    UnexpectedResponse(Box<Response>),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Wire(e) => write!(f, "protocol: {e}"),
            ClientError::Server {
                code,
                message,
                role,
            } => match role {
                Some(role) => write!(f, "{role:?} server ({code:?}): {message}"),
                None => write!(f, "server ({code:?}): {message}"),
            },
            ClientError::UnexpectedResponse(r) => write!(f, "unexpected response shape: {r:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Protocol(e) => ClientError::Wire(e),
        }
    }
}

/// Summary of one served ingest batch (the fields of
/// [`Response::Ingested`]).
#[derive(Debug, Clone, PartialEq)]
pub struct IngestSummary {
    /// Events in the batch.
    pub processed: usize,
    /// Access requests granted.
    pub granted: usize,
    /// Access requests denied.
    pub denied: usize,
    /// Violations the batch raised.
    pub violations: Vec<Violation>,
}

/// How the server disposed of an ingest batch (see
/// [`LtamClient::ingest_flagged`]).
#[derive(Debug, Clone, PartialEq)]
pub enum IngestReply {
    /// The batch entered trusted history through enforcement.
    Ingested(IngestSummary),
    /// The batch came from a below-trust source and was durably held
    /// on the quarantine ledger instead.
    Quarantined {
        /// Events held.
        held: usize,
    },
}

/// A blocking LTAM protocol client. See the [module docs](self) for
/// the reconnect contract.
#[derive(Debug)]
pub struct LtamClient {
    addr: String,
    stream: Option<TcpStream>,
    read_timeout: Option<Duration>,
    max_frame_bytes: u32,
    /// The capability-token secret presented in a `Hello` on every
    /// (re)connect, once [`LtamClient::hello`] or
    /// [`LtamClient::set_token`] has been called. Re-authentication is
    /// transparent: a reconnect after a transport error replays the
    /// handshake before the next request frame.
    token: Option<String>,
}

impl LtamClient {
    /// Connect to `addr` (e.g. `"127.0.0.1:4774"`) eagerly.
    pub fn connect(addr: &str) -> io::Result<LtamClient> {
        let mut client = LtamClient {
            addr: addr.to_string(),
            stream: None,
            read_timeout: Some(Duration::from_secs(30)),
            max_frame_bytes: wire::DEFAULT_MAX_FRAME_BYTES,
            token: None,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Override how long a call waits for the server's response frame
    /// (`None` blocks forever).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
        if let Some(stream) = &self.stream {
            let _ = stream.set_read_timeout(self.read_timeout);
        }
    }

    /// True while a TCP connection is established.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Set (or clear) the token presented on every (re)connect without
    /// performing a handshake now. The next connection establishment
    /// sends the `Hello`; an already-live connection is left as is —
    /// call [`LtamClient::hello`] to re-authenticate in place.
    pub fn set_token(&mut self, token: Option<String>) {
        self.token = token;
    }

    fn ensure_connected(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(self.read_timeout)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Connect if needed, replaying the `Hello` handshake on a fresh
    /// connection when a token is configured.
    fn ensure_ready(&mut self) -> Result<(), ClientError> {
        let fresh = self.stream.is_none();
        self.ensure_connected()?;
        if fresh {
            if let Some(token) = self.token.clone() {
                if let Err(e) = self.hello_frame(&token) {
                    // An unusable identity poisons the connection: drop
                    // it so the caller's retry re-handshakes (possibly
                    // after the operator re-minted the secret).
                    self.stream = None;
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Send one `Hello` on the live connection and read its answer.
    fn hello_frame(
        &mut self,
        token: &str,
    ) -> Result<(TokenId, SubjectId, Vec<Scope>), ClientError> {
        let stream = self.stream.as_mut().expect("caller connected first");
        wire::write_frame(
            stream,
            &wire::encode_request(&Request::Hello {
                token: token.to_string(),
            }),
        )
        .map_err(ClientError::Io)?;
        let payload = wire::read_frame(stream, self.max_frame_bytes)?;
        match wire::decode_response(&payload).map_err(ClientError::Wire)? {
            Response::Welcome {
                token,
                subject,
                scopes,
            } => Ok((token, subject, scopes)),
            Response::Error {
                code,
                message,
                role,
            } => Err(ClientError::Server {
                code,
                message,
                role,
            }),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Authenticate this connection (and every future reconnect) with
    /// `token`'s secret. Returns the identity the server welcomed: the
    /// token id, the LTAM subject it authenticates as, and its scopes.
    pub fn hello(&mut self, token: &str) -> Result<(TokenId, SubjectId, Vec<Scope>), ClientError> {
        self.token = Some(token.to_string());
        let result = (|| {
            self.ensure_connected()?;
            self.hello_frame(token)
        })();
        if matches!(result, Err(ClientError::Io(_)) | Err(ClientError::Wire(_))) {
            self.stream = None; // desynchronized; refusals keep the stream
        }
        result
    }

    /// Send one request and block for its response. On a transport or
    /// framing error the connection is dropped (the next call
    /// reconnects) and the error is returned.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let max_frame_bytes = self.max_frame_bytes;
        let result = (|| {
            self.ensure_ready()?;
            let stream = self.stream.as_mut().expect("just ensured");
            wire::write_frame(stream, &wire::encode_request(request)).map_err(ClientError::Io)?;
            let payload = wire::read_frame(stream, max_frame_bytes)?;
            wire::decode_response(&payload).map_err(ClientError::Wire)
        })();
        if result.is_err() {
            // The stream may be desynchronized; reconnect lazily.
            self.stream = None;
        }
        match result {
            Ok(Response::Error {
                code,
                message,
                role,
            }) => {
                if code == ErrorCode::Busy {
                    // The server closes a refused connection after the
                    // Busy frame; keeping the stream would turn the
                    // documented back-off-and-retry into a spurious
                    // transport error. Drop it so the retry reconnects.
                    self.stream = None;
                }
                Err(ClientError::Server {
                    code,
                    message,
                    role,
                })
            }
            other => other,
        }
    }

    // --- typed helpers -----------------------------------------------------

    /// Durably ingest a batch of events.
    pub fn ingest(&mut self, events: &[Event]) -> Result<IngestSummary, ClientError> {
        match self.call(&Request::Ingest(events.to_vec()))? {
            Response::Ingested {
                processed,
                granted,
                denied,
                violations,
            } => Ok(IngestSummary {
                processed,
                granted,
                denied,
                violations,
            }),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Durably ingest several batches **pipelined**: every `Ingest`
    /// frame is sent back-to-back before any response is read, then
    /// the responses are collected in order. With a server that
    /// group-commits, N pipelined batches typically share one `fsync`
    /// instead of paying N — this is the client half of closing the
    /// wire gap.
    ///
    /// The reconnect contract is the same **at-least-once** shape as
    /// [`LtamClient::ingest`], with a wider window: on any error, an
    /// unknown *prefix* of the batches may already be durable (the
    /// server applies them in send order and never skips one in the
    /// middle), the connection is dropped, and nothing is retried
    /// here. Callers that resend after an error must tolerate a
    /// replayed prefix — idempotent events, or end-state comparison as
    /// the load generator does.
    pub fn ingest_pipelined(
        &mut self,
        batches: &[&[Event]],
    ) -> Result<Vec<IngestSummary>, ClientError> {
        let max_frame_bytes = self.max_frame_bytes;
        let result = (|| {
            self.ensure_ready()?;
            let stream = self.stream.as_mut().expect("just ensured");
            let mut frames = Vec::new();
            for batch in batches {
                wire::write_frame(
                    &mut frames,
                    &wire::encode_request(&Request::Ingest(batch.to_vec())),
                )
                .map_err(ClientError::Io)?;
            }
            use std::io::Write as _;
            stream.write_all(&frames).map_err(ClientError::Io)?;
            let mut summaries = Vec::with_capacity(batches.len());
            for _ in batches {
                let payload = wire::read_frame(stream, max_frame_bytes)?;
                match wire::decode_response(&payload).map_err(ClientError::Wire)? {
                    Response::Ingested {
                        processed,
                        granted,
                        denied,
                        violations,
                    } => summaries.push(IngestSummary {
                        processed,
                        granted,
                        denied,
                        violations,
                    }),
                    Response::Error {
                        code,
                        message,
                        role,
                    } => {
                        return Err(ClientError::Server {
                            code,
                            message,
                            role,
                        })
                    }
                    other => return Err(ClientError::UnexpectedResponse(Box::new(other))),
                }
            }
            Ok(summaries)
        })();
        if result.is_err() {
            // Responses may still be in flight for frames we sent:
            // the stream is desynchronized either way. Reconnect lazily.
            self.stream = None;
        }
        result
    }

    /// One door swipe: was access granted?
    pub fn check_access(
        &mut self,
        time: Time,
        subject: SubjectId,
        location: LocationId,
    ) -> Result<bool, ClientError> {
        let event = Event::Request {
            time,
            subject,
            location,
        };
        match self.call(&Request::Check(event))? {
            Response::Access { granted } => Ok(granted),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Where was `subject` at `at`?
    pub fn whereabouts(
        &mut self,
        subject: SubjectId,
        at: Time,
    ) -> Result<Option<LocationId>, ClientError> {
        match self.call(&Request::Query(HistoryQuery::Whereabouts { subject, at }))? {
            Response::Whereabouts { location } => Ok(location),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Who was in `location` during `window`?
    pub fn present_during(
        &mut self,
        location: LocationId,
        window: Interval,
    ) -> Result<Vec<(SubjectId, Interval)>, ClientError> {
        match self.call(&Request::Query(HistoryQuery::PresentDuring {
            location,
            window,
        }))? {
            Response::Present { rows } => Ok(rows),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Contact tracing for `subject` over `window`.
    pub fn contacts(
        &mut self,
        subject: SubjectId,
        window: Interval,
    ) -> Result<Vec<Contact>, ClientError> {
        match self.call(&Request::Query(HistoryQuery::Contacts { subject, window }))? {
            Response::Contacts { contacts, .. } => Ok(contacts),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Contact tracing for `subject` over `window`, with the quarantine
    /// flag: any below-trust sensor claims involving the subject in the
    /// window ride along, so an analyst sees what trusted history
    /// *excludes* as well as what it holds.
    pub fn contacts_flagged(
        &mut self,
        subject: SubjectId,
        window: Interval,
    ) -> Result<(Vec<Contact>, Vec<QuarantinedEvent>), ClientError> {
        match self.call(&Request::Query(HistoryQuery::Contacts { subject, window }))? {
            Response::Contacts {
                contacts,
                quarantined,
            } => Ok((contacts, quarantined)),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// The quarantine ledger: events held from below-trust sensors,
    /// optionally filtered to one `source`, intersecting `window`.
    pub fn quarantined(
        &mut self,
        source: Option<SubjectId>,
        window: Interval,
    ) -> Result<Vec<QuarantinedEvent>, ClientError> {
        match self.call(&Request::Query(HistoryQuery::Quarantine { source, window }))? {
            Response::Quarantine { events } => Ok(events),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Send one admin RPC (token mint/revoke, trust edits,
    /// authorization grants…). The connection must be authenticated
    /// with an admin-scoped token (or the server's root token).
    pub fn admin(&mut self, op: AdminOp) -> Result<AdminOutcome, ClientError> {
        match self.call(&Request::Admin(op))? {
            Response::Admin { outcome } => Ok(outcome),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Send one situation RPC (declare/clear an emergency or lockdown,
    /// register responders, pin authorizations, edit workflow
    /// constraints). Admin-gated like [`LtamClient::admin`]; only a
    /// primary accepts it — followers pick the op up from the
    /// replicated WAL.
    pub fn situation(&mut self, op: SituationOp) -> Result<SituationOutcome, ClientError> {
        match self.call(&Request::Situation(op))? {
            Response::Situation { outcome } => Ok(outcome),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Like [`LtamClient::ingest`], but surfacing trust routing: a
    /// below-trust sensor's batch is durably quarantined rather than
    /// ingested, and this returns [`IngestReply::Quarantined`] instead
    /// of treating the response as unexpected.
    pub fn ingest_flagged(&mut self, events: &[Event]) -> Result<IngestReply, ClientError> {
        match self.call(&Request::Ingest(events.to_vec()))? {
            Response::Ingested {
                processed,
                granted,
                denied,
                violations,
            } => Ok(IngestReply::Ingested(IngestSummary {
                processed,
                granted,
                denied,
                violations,
            })),
            Response::Quarantined { held } => Ok(IngestReply::Quarantined { held }),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Violations detected inside `window`.
    pub fn violations_in(&mut self, window: Interval) -> Result<Vec<Violation>, ClientError> {
        match self.call(&Request::Query(HistoryQuery::ViolationsIn { window }))? {
            Response::Violations { violations } => Ok(violations),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// The server's operational counters.
    pub fn status(&mut self) -> Result<ServerStatus, ClientError> {
        match self.call(&Request::Query(HistoryQuery::Status))? {
            Response::Status { status } => Ok(status),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Scrape the server's metric registry: the Prometheus-style text
    /// exposition of every series the process has registered (parse it
    /// with `ltam_obs::parse_text`, or check it with
    /// `ltam_obs::validate`).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    // --- watermark awareness ------------------------------------------------

    /// The server's read watermark: the WAL sequence its answers cover.
    /// On a primary that is simply everything ingested; on a follower
    /// it is the *published* replication watermark (monotone across
    /// reconnects and re-bootstraps), which may trail the primary by
    /// the staleness lag.
    pub fn watermark(&mut self) -> Result<u64, ClientError> {
        let status = self.status()?;
        Ok(match status.replica {
            Some(replica) => replica.watermark,
            None => status.events_ingested,
        })
    }

    /// Poll [`LtamClient::watermark`] until it reaches `min` or
    /// `timeout` elapses — the read-your-writes primitive: a client
    /// that wrote through the primary at sequence `s` waits for a
    /// follower's watermark to reach `s` before trusting its answers.
    pub fn wait_for_watermark(&mut self, min: u64, timeout: Duration) -> Result<u64, ClientError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let seen = self.watermark()?;
            if seen >= min {
                return Ok(seen);
            }
            if std::time::Instant::now() >= deadline {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("watermark stalled at {seen}, wanted {min}"),
                )));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // --- replication --------------------------------------------------------

    /// The primary's replication manifest (inventory + positions).
    pub fn repl_manifest(&mut self) -> Result<ReplManifest, ClientError> {
        match self.call(&Request::Repl(ReplRequest::Manifest))? {
            Response::ReplManifest { manifest } => Ok(manifest),
            other => Err(ClientError::UnexpectedResponse(Box::new(other))),
        }
    }

    /// Fetch up to `len` bytes of a shippable store file at `offset`.
    /// A vanished file surfaces as [`ErrorCode::Gone`].
    pub fn repl_fetch(
        &mut self,
        file: ReplFileId,
        offset: u64,
        len: u32,
    ) -> Result<ReplChunk, ClientError> {
        let max_frame_bytes = self.max_frame_bytes;
        let request = Request::Repl(ReplRequest::Fetch { file, offset, len });
        let result = (|| {
            self.ensure_ready()?;
            let stream = self.stream.as_mut().expect("just ensured");
            wire::write_frame(stream, &wire::encode_request(&request)).map_err(ClientError::Io)?;
            let payload = wire::read_frame(stream, max_frame_bytes)?;
            wire::decode_repl_reply(&payload).map_err(ClientError::Wire)
        })();
        if result.is_err() {
            self.stream = None;
        }
        match result? {
            ReplReply::Chunk(chunk) => Ok(chunk),
            ReplReply::Other(other) => match *other {
                Response::Error {
                    code,
                    message,
                    role,
                } => Err(ClientError::Server {
                    code,
                    message,
                    role,
                }),
                other => Err(ClientError::UnexpectedResponse(Box::new(other))),
            },
        }
    }
}
