//! The serving tier: a readiness-driven `epoll` event loop fronting a
//! [`DurableEngine`] through group commit.
//!
//! ## Threading model
//!
//! A small pool of **poll threads** ([`ServerConfig::poll_threads`],
//! default 1) each owns an epoll instance and a disjoint set of
//! nonblocking connections. Thread 0 also owns the listener; accepted
//! connections are assigned round-robin and handed to their owner
//! through a per-thread inbox + [`mio::Waker`]. There is no thread per
//! connection: a poll thread sleeps in `epoll_wait` until some socket
//! has bytes (or a commit completion arrives), reads whatever the
//! kernel has, and reassembles frames incrementally
//! ([`wire::FrameAssembler`]) — so ten thousand idle connections cost
//! ten thousand fds, not ten thousand stacks.
//!
//! ## Pipelining
//!
//! A connection may have many request frames in flight
//! ([`ServerConfig::max_pipeline`]); responses always return in
//! request order. Each parsed request takes a slot in the connection's
//! response FIFO: read-only queries are answered inline by the poll
//! thread and fill their slot immediately; writes fill theirs when the
//! commit thread acks. The FIFO's ready prefix is what gets flushed.
//!
//! ## The write path: group commit
//!
//! Writes ([`Request::Ingest`], [`Request::Check`]) are **submitted**,
//! not executed, by poll threads: the events go to `ltam-store`'s
//! [`GroupCommit`] thread, which drains every batch queued while the
//! previous `fsync` ran, appends them all under **one** WAL write +
//! one `fsync`, applies them in submission order, and then completes
//! each waiter — the completion re-enters the owning poll thread via
//! its inbox and wakes it. Durability semantics are unchanged: a batch
//! is acked only after its bytes are synced, and it stays
//! all-or-nothing across a crash (its own WAL record). What changed is
//! the *sharing*: N connections' batches cost one flush, not N.
//!
//! ## The read path: around the write lock
//!
//! Read-only queries never touch the commit thread. Poll threads hold
//! a [`ReadView`] — shared handles onto the engine's shards, the
//! archive, and published status counters — and answer
//! [`Request::Query`] inline, concurrent with in-flight ingest (shard
//! mutexes interleave; there is no engine-wide lock anywhere on the
//! serving path).
//!
//! ## Backpressure
//!
//! Three independent valves, all per connection, none blocking a poll
//! thread:
//!
//! * past [`ServerConfig::max_connections`], accepts are answered with
//!   one [`ErrorCode::Busy`] frame and closed;
//! * a connection at its pipeline cap stops being *read* (its readable
//!   interest is dropped) until responses drain — the bytes wait in
//!   the kernel and eventually in the peer's send buffer;
//! * a peer that stops **reading** accumulates output until
//!   [`ServerConfig::write_buffer_bytes`], then likewise stops being
//!   read. A slow reader therefore wedges only itself: its responses
//!   sit in its own buffer while every other connection proceeds.
//!
//! ## Timeouts and shutdown
//!
//! `epoll_wait` runs with a short tick ([`ServerConfig::read_timeout`])
//! so each loop pass can reap: idle connections past
//! [`ServerConfig::idle_timeout`], and peers stalled *mid-frame* past
//! the read timeout (a torn frame, like a torn WAL record, never
//! blocks the server).
//!
//! [`Server::shutdown`] stops accepting, lets every connection's
//! in-flight requests complete and flush, joins the poll threads,
//! drains the commit queue, takes a final snapshot, and hands the
//! engine back. [`Server::abort`] skips the snapshot — recovery then
//! replays the WAL, exactly as after a crash.

use crate::replica::{replicate_loop, ReplicaConfig, ReplicaShared};
use crate::wire::{
    self, ErrorCode, FrameAssembler, HistoryQuery, ReplChunk, ReplChunkMeta, ReplManifest,
    ReplRequest, Request, Response, ServerRole, ServerStatus,
};
use ltam_core::capability::{AdminOutcome, AuthRefusal, Capability, Scope, TokenId, WireAuth};
use ltam_core::subject::SubjectId;
use ltam_engine::batch::{BatchOutcome, Event};
use ltam_situate::SituationOutcome;
use ltam_store::replica::{
    archive_files, epoch_marker_file, newest_snapshot, read_file_chunk, wal_segment_ids, ReplFileId,
};
use ltam_store::{
    CommitHandle, DurableEngine, GroupCommit, GroupCommitConfig, HistoryError, ReadView,
};
use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Served connections beyond this are refused with
    /// [`ErrorCode::Busy`].
    pub max_connections: usize,
    /// A connection idle (no frame started, nothing in flight) past
    /// this is closed.
    pub idle_timeout: Duration,
    /// How long a peer may stall *mid-frame* before being cut off —
    /// also the poll loop's tick for idle checks and shutdown.
    pub read_timeout: Duration,
    /// Per-frame payload cap (see [`wire::DEFAULT_MAX_FRAME_BYTES`]).
    pub max_frame_bytes: u32,
    /// Poll threads sharing the connection set. One is right for one
    /// core; more only helps when query work saturates a thread.
    pub poll_threads: usize,
    /// Requests one connection may have in flight before the server
    /// stops reading it (responses still flow).
    pub max_pipeline: usize,
    /// Buffered response bytes at which a connection stops being read
    /// (the slow-reader valve).
    pub write_buffer_bytes: usize,
    /// Group-commit drain cap, in events (see
    /// [`GroupCommitConfig::max_group_events`]).
    pub max_group_events: usize,
    /// A locally configured secret that authenticates with every
    /// capability, outside the durable token registry — the lockout
    /// recovery path: an operator who revoked (or let expire) every
    /// admin-scoped token restarts the server with a root token and
    /// mints fresh ones over the wire. `None` (the default) disables
    /// it; it never appears in snapshots or the WAL.
    pub root_token: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_millis(200),
            max_frame_bytes: wire::DEFAULT_MAX_FRAME_BYTES,
            poll_threads: 1,
            max_pipeline: 128,
            write_buffer_bytes: 1 << 20,
            max_group_events: GroupCommitConfig::default().max_group_events,
            root_token: None,
        }
    }
}

/// Counters and connection registry shared by every thread.
#[derive(Debug, Default)]
struct Stats {
    connections_total: AtomicU64,
    refused_busy: AtomicU64,
    requests_served: AtomicU64,
    protocol_errors: AtomicU64,
    active: AtomicUsize,
    /// Requests served per live connection, by connection id.
    per_connection: Mutex<BTreeMap<u64, u64>>,
}

/// Was the in-flight write a batch ingest or a single swipe? (Decides
/// the response shape when its commit completes.)
#[derive(Debug, Clone, Copy)]
enum WriteKind {
    Ingest,
    Check,
}

/// What a commit-thread job finished as (decides the response shape).
enum Done {
    /// An ingest or swipe batch committed through enforcement.
    Write {
        kind: WriteKind,
        result: io::Result<BatchOutcome>,
    },
    /// A below-trust sensor's batch, durably held on the quarantine
    /// ledger instead of entering trusted history.
    Quarantine(io::Result<usize>),
    /// An admin RPC applied as a durable policy edit.
    Admin(io::Result<AdminOutcome>),
    /// A situation RPC applied as a durable, WAL-logged policy edit.
    Situation(io::Result<SituationOutcome>),
}

/// A commit completion routed back to the poll thread that owns the
/// connection.
struct Completion {
    conn: u64,
    slot: u64,
    done: Done,
}

/// Work posted to a poll thread from outside its loop.
#[derive(Default)]
struct Inbox {
    /// Freshly accepted connections assigned to this thread.
    conns: Vec<(TcpStream, u64)>,
    /// Commit completions for this thread's connections.
    done: Vec<Completion>,
}

/// One poll thread's externally visible half: post to the inbox, then
/// wake it out of `epoll_wait`.
struct ThreadHandle {
    waker: Waker,
    inbox: Mutex<Inbox>,
}

struct Shared {
    view: ReadView,
    config: ServerConfig,
    shutdown: AtomicBool,
    stats: Stats,
    threads: Vec<ThreadHandle>,
    /// Which role every error frame and status report carries.
    role: ServerRole,
    /// Present iff this server is a follower: the replication loop's
    /// published face (watermark, lag, state).
    replica: Option<Arc<ReplicaShared>>,
    /// When `start_inner` ran — the zero of `uptime_chronons` in
    /// status reports.
    started: Instant,
}

/// A running LTAM server. Dropping it without calling
/// [`Server::shutdown`] or [`Server::abort`] aborts ungracefully.
pub struct Server {
    addr: SocketAddr,
    /// `Some` while running; taken by `stop()`.
    shared: Option<Arc<Shared>>,
    polls: Vec<JoinHandle<()>>,
    /// The replication thread, when running as a follower.
    repl: Option<JoinHandle<()>>,
    commit: Option<GroupCommit>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `engine` as a primary: writes accepted, and the
    /// replication stream ([`ReplRequest`]) served to any follower
    /// that asks.
    pub fn start(engine: DurableEngine, addr: &str, config: ServerConfig) -> io::Result<Server> {
        Server::start_inner(engine, addr, config, None)
    }

    /// Bind `addr` and serve `engine` as a **read-only follower** of
    /// the primary named in `replica`: a replication thread tails the
    /// primary's WAL and replays it through this server's own group
    /// commit, while the poll threads serve history queries at the
    /// published watermark. Writes are refused with
    /// [`ErrorCode::NotPrimary`] (the error names the primary);
    /// history queries are refused with [`ErrorCode::Stale`] until the
    /// engine has caught up to `replica.watermark_floor`. `engine`
    /// normally comes from
    /// [`bootstrap_follower`](crate::replica::bootstrap_follower), or
    /// from re-opening a previous follower directory.
    pub fn start_follower(
        engine: DurableEngine,
        addr: &str,
        config: ServerConfig,
        replica: ReplicaConfig,
    ) -> io::Result<Server> {
        Server::start_inner(engine, addr, config, Some(replica))
    }

    fn start_inner(
        engine: DurableEngine,
        addr: &str,
        config: ServerConfig,
        replica: Option<ReplicaConfig>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let view = engine.read_view();
        let (commit, commit_handle) = GroupCommit::start(
            engine,
            GroupCommitConfig {
                max_group_events: config.max_group_events.max(1),
            },
        );
        let threads = config.poll_threads.max(1);
        // Build every thread's poller + waker up front so the shared
        // handle table is complete before any loop runs.
        let mut pollers = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let poll = Poll::new()?;
            let waker = Waker::new(poll.registry(), WAKER)?;
            handles.push(ThreadHandle {
                waker,
                inbox: Mutex::new(Inbox::default()),
            });
            pollers.push(poll);
        }
        let replica_shared = replica
            .as_ref()
            .map(|r| Arc::new(ReplicaShared::new(r, view.applied())));
        let shared = Arc::new(Shared {
            view,
            config,
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
            threads: handles,
            role: if replica.is_some() {
                ServerRole::Follower
            } else {
                ServerRole::Primary
            },
            replica: replica_shared.clone(),
            started: Instant::now(),
        });
        let polls = pollers
            .into_iter()
            .enumerate()
            .map(|(index, poll)| {
                let shared = Arc::clone(&shared);
                let commit = commit_handle.clone();
                let listener = if index == 0 {
                    Some(listener.try_clone()).transpose()
                } else {
                    Ok(None)
                };
                let listener = listener.expect("clone listener for poll thread 0");
                std::thread::Builder::new()
                    .name(format!("ltam-poll-{index}"))
                    .spawn(move || poll_loop(poll, index, listener, shared, commit))
                    .expect("spawn poll thread")
            })
            .collect();
        let repl = match (replica, replica_shared) {
            (Some(replica_config), Some(replica_shared)) => {
                let stop_flag = Arc::clone(&shared);
                let view = shared.view.clone();
                let commit = commit_handle.clone();
                Some(
                    std::thread::Builder::new()
                        .name("ltam-replicate".into())
                        .spawn(move || {
                            replicate_loop(
                                move || stop_flag.shutdown.load(Ordering::SeqCst),
                                view,
                                commit,
                                &replica_shared,
                                &replica_config,
                            )
                        })
                        .expect("spawn replication thread"),
                )
            }
            _ => None,
        };
        drop(commit_handle);
        Ok(Server {
            addr: local,
            shared: Some(shared),
            polls,
            repl,
            commit: Some(commit),
        })
    }

    /// The address the server is listening on (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully stop: refuse new connections, complete and flush
    /// in-flight requests, join every thread, snapshot, and return the
    /// engine.
    pub fn shutdown(mut self) -> io::Result<DurableEngine> {
        let mut engine = self.stop()?;
        engine.snapshot()?;
        Ok(engine)
    }

    /// Hard-stop without the final snapshot — the closest an in-process
    /// test can get to `kill -9`: whatever the WAL holds is what
    /// recovery will see. The engine comes back for inspection; drop it
    /// to complete the "crash".
    pub fn abort(mut self) -> io::Result<DurableEngine> {
        self.stop()
    }

    fn stop(&mut self) -> io::Result<DurableEngine> {
        let shared = self
            .shared
            .take()
            .ok_or_else(|| io::Error::other("server already stopped"))?;
        shared.shutdown.store(true, Ordering::SeqCst);
        for t in &shared.threads {
            let _ = t.waker.wake();
        }
        for h in self.polls.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.repl.take() {
            // The replication thread holds a commit handle too; it must
            // exit before commit shutdown can drain.
            let _ = h.join();
        }
        // Poll threads are gone (their commit handles dropped with
        // them); draining the commit queue hands the engine back.
        self.commit
            .take()
            .ok_or_else(|| io::Error::other("server already stopped"))?
            .shutdown()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.shared.is_some() {
            let _ = self.stop(); // ungraceful: no final snapshot
        }
    }
}

// --- the poll loop ---------------------------------------------------------

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// Connection tokens are `slab index + CONN_BASE`.
const CONN_BASE: usize = 2;

/// A response slot in a connection's in-order FIFO.
enum SlotState {
    /// A write submitted to the commit thread; identified so the
    /// completion can find it.
    Waiting(u64),
    /// An encoded response frame, ready to flush once everything ahead
    /// of it is.
    Ready(Vec<u8>),
}

/// Who a connection has authenticated as. Only the *identity* is held
/// here — every frame re-resolves the token against the live policy,
/// so a revocation or expiry bites on the very next frame without the
/// connection being torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnAuth {
    /// No `Hello` yet (or the wire is open and none was required).
    Anonymous,
    /// Authenticated by a registry token; capabilities are whatever the
    /// token grants *at each frame's check*, not at handshake time.
    Token(TokenId),
    /// Authenticated by the server's configured
    /// [`ServerConfig::root_token`]: every capability, no expiry, not
    /// revocable over the wire (it lives in local config, not policy).
    Root,
}

/// One nonblocking connection owned by a poll loop.
struct Conn {
    stream: TcpStream,
    id: u64,
    token: Token,
    /// The connection's authenticated identity (see [`ConnAuth`]).
    auth: ConnAuth,
    assembler: FrameAssembler,
    /// Response FIFO: one slot per in-flight request, request order.
    pending: VecDeque<SlotState>,
    next_slot: u64,
    /// Encoded-but-unsent output; `out[out_pos..]` remains to write.
    out: Vec<u8>,
    out_pos: usize,
    /// What the fd is currently registered for (`None` = deregistered,
    /// e.g. fully backpressured).
    registered: Option<Interest>,
    /// Stop reading requests; close once the FIFO and buffer drain.
    closing: bool,
    last_activity: Instant,
}

impl Conn {
    fn out_backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn drained(&self) -> bool {
        self.pending.is_empty() && self.out_backlog() == 0
    }
}

fn poll_loop(
    mut poll: Poll,
    index: usize,
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    commit: CommitHandle,
) {
    let mut events = Events::with_capacity(256);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut by_id: HashMap<u64, usize> = HashMap::new();
    let mut next_conn_id = index as u64;
    let mut accepting = listener.is_some();
    let mut draining: Option<Instant> = None;
    if let Some(l) = &listener {
        if poll
            .registry()
            .register(l, LISTENER, Interest::READABLE)
            .is_err()
        {
            return;
        }
    }
    let tick = shared.config.read_timeout.min(Duration::from_millis(100));
    // One registry lookup per poll thread, before the hot loop.
    let wakeups = ltam_obs::counter!(
        "serve_poll_wakeups_total",
        "Poll-loop passes (epoll returns, timer ticks, and waker pokes)"
    );
    let iteration = ltam_obs::histogram!(
        "serve_poll_iteration_seconds",
        "Work done per poll-loop pass, from epoll return to going back to sleep",
        SecondsFromMicros
    );
    loop {
        let _ = poll.poll(&mut events, Some(tick));
        let now = Instant::now();
        wakeups.inc();
        let shutting = shared.shutdown.load(Ordering::SeqCst);

        // 1. Inbox first: handed-off connections and commit
        //    completions (the waker may be why we woke).
        let inbox = std::mem::take(&mut *shared.threads[index].inbox.lock());
        for (stream, id) in inbox.conns {
            admit(stream, id, &mut conns, &mut by_id, &poll, &shared, now);
        }
        for completion in inbox.done {
            let Some(&slot) = by_id.get(&completion.conn) else {
                continue; // connection died before its commit finished
            };
            if let Some(conn) = conns[slot].as_mut() {
                apply_completion(conn, completion, shared.role);
                if !flush(conn, now) || !update_interest(conn, &poll, &shared.config) {
                    close_conn(&mut conns, &mut by_id, slot, &poll, &shared);
                }
            }
        }

        // 2. Readiness events.
        let mut accept_ready = false;
        for ev in events.iter() {
            match ev.token() {
                LISTENER => accept_ready = true,
                WAKER => {} // inbox already drained above
                Token(t) => {
                    let slot = t - CONN_BASE;
                    let keep = match conns.get_mut(slot).and_then(Option::as_mut) {
                        // A stale event for a slot reused this pass is
                        // harmless: reads just hit WouldBlock.
                        Some(conn) => {
                            let mut keep = true;
                            if ev.is_writable() {
                                keep = flush(conn, now);
                            }
                            if keep && ev.is_readable() {
                                keep = read_input(conn, index, &shared, &commit, now);
                            }
                            if keep && ev.is_error() && conn.drained() {
                                keep = false;
                            }
                            keep && update_interest(conn, &poll, &shared.config)
                        }
                        None => continue,
                    };
                    if !keep {
                        close_conn(&mut conns, &mut by_id, slot, &poll, &shared);
                    }
                }
            }
        }

        // 3. Accept (thread 0 only; level-triggered, so a backlog left
        //    unaccepted re-notifies next pass).
        if accept_ready && accepting && !shutting {
            accept_all(
                listener.as_ref().expect("accept event implies listener"),
                index,
                &mut next_conn_id,
                &mut conns,
                &mut by_id,
                &poll,
                &shared,
                now,
            );
        }

        // 4. Reaping: mid-frame stalls and idle connections.
        for slot in 0..conns.len() {
            let Some(conn) = conns[slot].as_ref() else {
                continue;
            };
            let stalled = conn.assembler.mid_frame()
                && now.duration_since(conn.last_activity) >= shared.config.read_timeout;
            let idle = !conn.assembler.mid_frame()
                && conn.drained()
                && now.duration_since(conn.last_activity) >= shared.config.idle_timeout;
            if stalled || idle {
                close_conn(&mut conns, &mut by_id, slot, &poll, &shared);
            }
        }

        // 5. Shutdown drain: stop accepting and reading, answer what
        //    is in flight, then leave. A bounded deadline covers peers
        //    that never read their last responses.
        if shutting {
            if accepting {
                let _ = poll
                    .registry()
                    .deregister(listener.as_ref().expect("accepting implies listener"));
                accepting = false;
            }
            let deadline = *draining.get_or_insert_with(|| {
                now + shared.config.idle_timeout.min(Duration::from_secs(5))
            });
            for slot in 0..conns.len() {
                let Some(conn) = conns[slot].as_mut() else {
                    continue;
                };
                conn.closing = true;
                if conn.drained()
                    || now >= deadline
                    || !update_interest(conn, &poll, &shared.config)
                {
                    close_conn(&mut conns, &mut by_id, slot, &poll, &shared);
                }
            }
            if by_id.is_empty() {
                return;
            }
        }
        // `now` was stamped right after the poll returned, so its age
        // here is this pass's working time (sleep excluded).
        if !ltam_obs::disabled() {
            iteration.observe(now.elapsed().as_micros() as u64);
        }
    }
}

/// Take ownership of an accepted connection: nonblocking, registered,
/// slotted.
fn admit(
    stream: TcpStream,
    id: u64,
    conns: &mut Vec<Option<Conn>>,
    by_id: &mut HashMap<u64, usize>,
    poll: &Poll,
    shared: &Arc<Shared>,
    now: Instant,
) {
    // Closed-loop clients round-trip constantly: Nagle + delayed ACK
    // would add tens of milliseconds per request.
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(true).is_err() {
        forget_conn(id, shared);
        return;
    }
    let slot = match conns.iter().position(Option::is_none) {
        Some(s) => s,
        None => {
            conns.push(None);
            conns.len() - 1
        }
    };
    let token = Token(slot + CONN_BASE);
    if poll
        .registry()
        .register(&stream, token, Interest::READABLE)
        .is_err()
    {
        forget_conn(id, shared);
        return;
    }
    by_id.insert(id, slot);
    conns[slot] = Some(Conn {
        stream,
        id,
        token,
        auth: ConnAuth::Anonymous,
        assembler: FrameAssembler::new(shared.config.max_frame_bytes),
        pending: VecDeque::new(),
        next_slot: 0,
        out: Vec::new(),
        out_pos: 0,
        registered: Some(Interest::READABLE),
        closing: false,
        last_activity: now,
    });
}

/// Drop a connection's registry entries without ever having served it.
fn forget_conn(id: u64, shared: &Shared) {
    shared.stats.per_connection.lock().remove(&id);
    shared.stats.active.fetch_sub(1, Ordering::SeqCst);
}

fn close_conn(
    conns: &mut [Option<Conn>],
    by_id: &mut HashMap<u64, usize>,
    slot: usize,
    poll: &Poll,
    shared: &Shared,
) {
    if let Some(conn) = conns[slot].take() {
        if conn.registered.is_some() {
            let _ = poll.registry().deregister(&conn.stream);
        }
        by_id.remove(&conn.id);
        forget_conn(conn.id, shared);
    }
}

/// Accept until the backlog is dry, refusing over the limit and
/// handing off round-robin.
#[allow(clippy::too_many_arguments)]
fn accept_all(
    listener: &TcpListener,
    index: usize,
    next_conn_id: &mut u64,
    conns: &mut Vec<Option<Conn>>,
    by_id: &mut HashMap<u64, usize>,
    poll: &Poll,
    shared: &Arc<Shared>,
    now: Instant,
) {
    let threads = shared.threads.len();
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // Transient accept failures (ECONNABORTED storms, fd
            // pressure): the level-triggered listener re-notifies, so
            // just yield this pass rather than busy-spinning.
            Err(_) => return,
        };
        if shared.stats.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            refuse_busy(stream, shared);
            continue;
        }
        shared.stats.active.fetch_add(1, Ordering::SeqCst);
        shared
            .stats
            .connections_total
            .fetch_add(1, Ordering::SeqCst);
        ltam_obs::counter!(
            "serve_connections_total",
            "Connections accepted and admitted (refusals are counted separately)"
        )
        .inc();
        let id = *next_conn_id;
        *next_conn_id += 1;
        shared.stats.per_connection.lock().insert(id, 0);
        let target = (id as usize) % threads;
        if target == index {
            admit(stream, id, conns, by_id, poll, shared, now);
        } else {
            let t = &shared.threads[target];
            t.inbox.lock().conns.push((stream, id));
            let _ = t.waker.wake();
        }
    }
}

/// Over the connection limit: answer one `Busy` error and close. The
/// accepted socket is still blocking (accept does not inherit
/// O_NONBLOCK), so a bounded write timeout keeps a non-reading peer
/// from wedging the accept pass.
fn refuse_busy(mut stream: TcpStream, shared: &Shared) {
    shared.stats.refused_busy.fetch_add(1, Ordering::SeqCst);
    refused("busy").inc();
    let _ = stream.set_write_timeout(Some(
        shared.config.read_timeout.max(Duration::from_millis(50)),
    ));
    let response = Response::Error {
        code: ErrorCode::Busy,
        // A refused accept never authenticated: on an auth-required
        // wire the role is redacted like every other pre-handshake
        // status field.
        role: anonymous_role(shared),
        message: format!(
            "serving {} connections (the configured limit); retry later",
            shared.config.max_connections
        ),
    };
    let _ = wire::write_frame(&mut stream, &wire::encode_response(&response));
}

/// The role field an **unauthenticated** connection may see: the real
/// role on an open wire, redacted (`None`) when authentication is
/// required — a pre-handshake error frame must not leak whether it is
/// talking to a primary or a follower.
fn anonymous_role(shared: &Shared) -> Option<ServerRole> {
    if shared.view.engine().policy().wire().required {
        None
    } else {
        Some(shared.role)
    }
}

/// The role field `conn` may see in an error frame right now.
fn visible_role(conn: &Conn, shared: &Shared) -> Option<ServerRole> {
    if conn.auth == ConnAuth::Anonymous {
        anonymous_role(shared)
    } else {
        Some(shared.role)
    }
}

/// The `serve_refused_total{code=...}` counter. Refusals are error
/// paths, so the per-call registry lock is acceptable; `code` names
/// the [`ErrorCode`] sent back, snake_cased.
fn refused(code: &'static str) -> &'static ltam_obs::Counter {
    ltam_obs::registry().counter(
        "serve_refused_total",
        &[("code", code)],
        "Requests refused with an error frame, by error code",
    )
}

/// Is this connection refusing further input? (Pipeline or write
/// buffer at cap, or closing.)
fn read_paused(conn: &Conn, config: &ServerConfig) -> bool {
    conn.closing
        || conn.pending.len() >= config.max_pipeline
        || conn.out_backlog() >= config.write_buffer_bytes
}

/// Drain the socket's readable bytes into frames and dispatch them.
/// Returns false when the connection should close now.
fn read_input(
    conn: &mut Conn,
    index: usize,
    shared: &Arc<Shared>,
    commit: &CommitHandle,
    now: Instant,
) -> bool {
    let mut scratch = [0u8; 32 * 1024];
    loop {
        if read_paused(conn, &shared.config) {
            return true;
        }
        let n = match conn.stream.read(&mut scratch) {
            Ok(0) => {
                // EOF: the peer is done sending. Answer everything in
                // flight, then close — pipelined clients half-close
                // after their last frame and read the tail.
                conn.closing = true;
                return !conn.drained();
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        };
        conn.last_activity = now;
        conn.assembler.push(&scratch[..n]);
        loop {
            match conn.assembler.next_frame() {
                Ok(Some(payload)) => dispatch(conn, &payload, index, shared, commit),
                Ok(None) => break,
                Err(e) => {
                    // Unreadable framing: the stream cannot resync.
                    // Answer once (after anything already in flight),
                    // then close.
                    shared.stats.protocol_errors.fetch_add(1, Ordering::SeqCst);
                    refused("bad_request").inc();
                    let role = visible_role(conn, shared);
                    push_response(
                        conn,
                        &Response::Error {
                            code: ErrorCode::BadRequest,
                            role,
                            message: format!("unreadable frame: {e}"),
                        },
                    );
                    conn.closing = true;
                    return flush(conn, now);
                }
            }
        }
        if !flush(conn, now) {
            return false;
        }
        if n < scratch.len() {
            // Likely drained; if not, level-triggered epoll re-notifies.
            return true;
        }
    }
}

/// Decode one frame's request and either answer it inline (queries,
/// errors) or submit it to the commit thread (writes).
/// Which capability a request needs ([`Request::Hello`] needs none —
/// it is how a connection *acquires* one).
fn needed_capability(request: &Request) -> Option<Capability> {
    match request {
        Request::Hello { .. } => None,
        Request::Ingest(_) | Request::Check(_) => Some(Capability::Ingest),
        Request::Query(_) | Request::Metrics => Some(Capability::Query),
        Request::Repl(_) => Some(Capability::Replicate),
        Request::Admin(_) | Request::Situation(_) => Some(Capability::Admin),
    }
}

/// Map a capability refusal to its wire error code: a token outside
/// its validity window means the *identity* is no longer established
/// ([`ErrorCode::Unauthenticated`] — re-`Hello` with a fresh token);
/// a live identity lacking the right grant is
/// [`ErrorCode::PermissionDenied`] (revoked, missing scope, or an
/// ingest scope not covering a batch's location).
fn refusal_code(refusal: &AuthRefusal) -> ErrorCode {
    match refusal {
        AuthRefusal::Expired { .. } => ErrorCode::Unauthenticated,
        AuthRefusal::Revoked
        | AuthRefusal::MissingScope { .. }
        | AuthRefusal::LocationNotCovered { .. } => ErrorCode::PermissionDenied,
    }
}

/// Every location a write batch touches (for ingest-scope coverage).
fn batch_locations(events: &[Event]) -> Vec<ltam_graph::LocationId> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Request { location, .. }
            | Event::Enter { location, .. }
            | Event::Exit { location, .. } => Some(*location),
            Event::Tick { .. } => None,
        })
        .collect()
}

/// The outcome of the per-frame capability gate.
enum Gate {
    /// Frame allowed; `source` names the authenticated sensor subject
    /// and its trust level when the frame came over a registry token
    /// (root and anonymous-on-an-open-wire carry no trust routing).
    Allow { source: Option<(SubjectId, u8)> },
    /// Frame refused with this error code and message.
    Refuse { code: ErrorCode, message: String },
}

/// Gate one decoded request against the **live** wire-auth policy: the
/// check runs against the policy as of this frame (not handshake
/// time), at the engine's current monitoring clock — so a revocation,
/// an expiry crossed by a `Tick`, or a policy-epoch swap all bite on
/// the next frame of an already-authenticated connection.
fn gate_request(conn: &Conn, request: &Request, wire_auth: &WireAuth, shared: &Shared) -> Gate {
    let Some(needed) = needed_capability(request) else {
        return Gate::Allow { source: None }; // Hello gates itself
    };
    // Admin RPCs are always gated; everything else only when the wire
    // requires auth — but a token *presented* on an open wire is still
    // held to its scopes (it asked to be identified; identity has
    // consequences, like trust routing).
    let must_check =
        wire_auth.required || needed == Capability::Admin || conn.auth != ConnAuth::Anonymous;
    if !must_check {
        return Gate::Allow { source: None };
    }
    let token = match conn.auth {
        ConnAuth::Root => return Gate::Allow { source: None },
        ConnAuth::Anonymous => {
            return Gate::Refuse {
                code: ErrorCode::Unauthenticated,
                message: "this request requires authentication; send a Hello frame with a \
                          capability token first"
                    .into(),
            };
        }
        ConnAuth::Token(id) => match wire_auth.token(id) {
            Some(token) => token,
            // Tokens are never removed from the registry, but a
            // follower re-bootstrap can swap in a policy that predates
            // this id. Treat the vanished identity as unauthenticated.
            None => {
                return Gate::Refuse {
                    code: ErrorCode::Unauthenticated,
                    message: "the authenticated token no longer exists in policy; \
                              re-authenticate"
                        .into(),
                };
            }
        },
    };
    let now = shared.view.clock();
    if let Err(refusal) = token.permits(needed, now) {
        return Gate::Refuse {
            code: refusal_code(&refusal),
            message: format!("refusing {needed:?} frame: {refusal}"),
        };
    }
    if needed == Capability::Ingest {
        let locations = match request {
            Request::Ingest(events) => batch_locations(events),
            Request::Check(event) => batch_locations(std::slice::from_ref(event)),
            _ => Vec::new(),
        };
        if let Err(refusal) = token.permits_locations(locations.iter()) {
            return Gate::Refuse {
                code: refusal_code(&refusal),
                message: format!("refusing Ingest frame: {refusal}"),
            };
        }
    }
    Gate::Allow {
        source: Some((token.subject, wire_auth.trust.level_of(token.subject))),
    }
}

/// Answer a `Hello` handshake: resolve the secret, stamp the
/// connection's identity, and welcome (or refuse without changing the
/// connection's current identity — a failed re-`Hello` does not
/// de-authenticate).
fn answer_hello(conn: &mut Conn, secret: &str, wire_auth: &WireAuth, shared: &Shared) {
    if !secret.is_empty() && shared.config.root_token.as_deref() == Some(secret) {
        conn.auth = ConnAuth::Root;
        push_response(
            conn,
            &Response::Welcome {
                token: TokenId(u64::MAX),
                subject: SubjectId(u32::MAX),
                scopes: vec![
                    Scope::Ingest { locations: None },
                    Scope::Query,
                    Scope::Replicate,
                    Scope::Admin,
                ],
            },
        );
        return;
    }
    match wire_auth.authenticate(secret) {
        Some(token) => {
            let now = shared.view.clock();
            if !token.validity.contains(now) {
                refused("unauthenticated").inc();
                let role = visible_role(conn, shared);
                push_response(
                    conn,
                    &Response::Error {
                        code: ErrorCode::Unauthenticated,
                        role,
                        message: format!("token not valid at monitoring time {}", now.0),
                    },
                );
                return;
            }
            conn.auth = ConnAuth::Token(token.id);
            push_response(
                conn,
                &Response::Welcome {
                    token: token.id,
                    subject: token.subject,
                    scopes: token.scopes.clone(),
                },
            );
        }
        None => {
            refused("unauthenticated").inc();
            let role = visible_role(conn, shared);
            push_response(
                conn,
                &Response::Error {
                    code: ErrorCode::Unauthenticated,
                    role,
                    message: "unknown or revoked token".into(),
                },
            );
        }
    }
}

fn dispatch(
    conn: &mut Conn,
    payload: &[u8],
    index: usize,
    shared: &Arc<Shared>,
    commit: &CommitHandle,
) {
    let request = match wire::decode_request(payload) {
        Ok(r) => r,
        Err(e) => {
            // Framing was intact (CRC passed) but the body is not a
            // request: answer in-band and stay in sync.
            shared.stats.protocol_errors.fetch_add(1, Ordering::SeqCst);
            refused("bad_request").inc();
            count_served(conn, shared);
            let role = visible_role(conn, shared);
            push_response(
                conn,
                &Response::Error {
                    code: ErrorCode::BadRequest,
                    role,
                    message: e.to_string(),
                },
            );
            return;
        }
    };
    count_served(conn, shared);
    ltam_obs::histogram!(
        "serve_pipeline_depth",
        "Response slots already in flight on the connection when a request arrives",
        None
    )
    .observe(conn.pending.len() as u64);
    // --- the capability gate, against the live policy ---------------------
    let policy = shared.view.engine().policy();
    let wire_auth = policy.wire();
    if let Request::Hello { token } = &request {
        answer_hello(conn, token, wire_auth, shared);
        return;
    }
    let source = match gate_request(conn, &request, wire_auth, shared) {
        Gate::Allow { source } => source,
        Gate::Refuse { code, message } => {
            refused(match code {
                ErrorCode::Unauthenticated => "unauthenticated",
                _ => "permission_denied",
            })
            .inc();
            let role = visible_role(conn, shared);
            push_response(
                conn,
                &Response::Error {
                    code,
                    role,
                    message,
                },
            );
            return;
        }
    };
    let (events, kind) = match request {
        Request::Query(query) => {
            let _span = ltam_obs::timed!(
                "serve_request_seconds",
                "Server-side request latency by request kind (queries: decode to encoded \
                 response; writes: decode to durable)",
                "kind" => "query"
            );
            push_response(conn, &answer_query(query, shared));
            return;
        }
        Request::Repl(repl) => {
            let _span = ltam_obs::timed!(
                "serve_request_seconds",
                "Server-side request latency by request kind (queries: decode to encoded \
                 response; writes: decode to durable)",
                "kind" => "repl"
            );
            answer_repl(conn, repl, shared);
            return;
        }
        Request::Metrics => {
            let _span = ltam_obs::timed!(
                "serve_request_seconds",
                "Server-side request latency by request kind (queries: decode to encoded \
                 response; writes: decode to durable)",
                "kind" => "metrics"
            );
            push_response(
                conn,
                &Response::Metrics {
                    text: ltam_obs::encode_text(ltam_obs::registry()),
                },
            );
            return;
        }
        Request::Hello { .. } => unreachable!("Hello answered before the gate"),
        Request::Admin(op) => {
            if let Some(replica) = &shared.replica {
                // A follower's policy is a bootstrap-time copy of the
                // primary's; editing it here would fork the two.
                refused("not_primary").inc();
                push_response(
                    conn,
                    &Response::Error {
                        code: ErrorCode::NotPrimary,
                        role: Some(shared.role),
                        message: format!(
                            "admin RPCs edit policy on the primary at {}; followers pick the \
                             edit up at their next bootstrap",
                            replica.primary_addr()
                        ),
                    },
                );
                return;
            }
            let slot = conn.next_slot;
            conn.next_slot += 1;
            conn.pending.push_back(SlotState::Waiting(slot));
            let done = {
                let shared = Arc::clone(shared);
                let conn_id = conn.id;
                move |result: io::Result<AdminOutcome>| {
                    let t = &shared.threads[index];
                    t.inbox.lock().done.push(Completion {
                        conn: conn_id,
                        slot,
                        done: Done::Admin(result),
                    });
                    let _ = t.waker.wake();
                }
            };
            if commit.submit_admin(op, done).is_err() {
                let frame = response_frame(&Response::Error {
                    code: ErrorCode::Internal,
                    role: Some(shared.role),
                    message: "server is shutting down".into(),
                });
                *conn.pending.back_mut().expect("slot just pushed") = SlotState::Ready(frame);
            }
            return;
        }
        Request::Situation(op) => {
            if let Some(replica) = &shared.replica {
                // Followers receive situation ops through the replicated
                // WAL — at the exact stream position the primary applied
                // them — so a direct declaration here would double-apply
                // or, worse, fork the judging order.
                refused("not_primary").inc();
                push_response(
                    conn,
                    &Response::Error {
                        code: ErrorCode::NotPrimary,
                        role: Some(shared.role),
                        message: format!(
                            "situations are declared on the primary at {}; followers replay \
                             them from the replicated WAL",
                            replica.primary_addr()
                        ),
                    },
                );
                return;
            }
            let slot = conn.next_slot;
            conn.next_slot += 1;
            conn.pending.push_back(SlotState::Waiting(slot));
            let done = {
                let shared = Arc::clone(shared);
                let conn_id = conn.id;
                move |result: io::Result<SituationOutcome>| {
                    let t = &shared.threads[index];
                    t.inbox.lock().done.push(Completion {
                        conn: conn_id,
                        slot,
                        done: Done::Situation(result),
                    });
                    let _ = t.waker.wake();
                }
            };
            if commit.submit_situation(op, done).is_err() {
                let frame = response_frame(&Response::Error {
                    code: ErrorCode::Internal,
                    role: Some(shared.role),
                    message: "server is shutting down".into(),
                });
                *conn.pending.back_mut().expect("slot just pushed") = SlotState::Ready(frame);
            }
            return;
        }
        Request::Ingest(events) => (events, WriteKind::Ingest),
        Request::Check(event) => (vec![event], WriteKind::Check),
    };
    if let Some(replica) = &shared.replica {
        // Followers are read-only: a write acked here would fork
        // history from the primary's. Refuse loudly, naming where
        // writes go.
        refused("not_primary").inc();
        push_response(
            conn,
            &Response::Error {
                code: ErrorCode::NotPrimary,
                role: Some(shared.role),
                message: format!(
                    "this server is a read-only follower; send writes to the primary at {}",
                    replica.primary_addr()
                ),
            },
        );
        return;
    }
    // Trust routing: an authenticated source below the trust threshold
    // has its events durably *quarantined* — never entering trusted
    // history, never advancing the monitoring clock — and is told so.
    if let Some((subject, level)) = source {
        if !wire_auth.trust.trusted(subject) {
            let slot = conn.next_slot;
            conn.next_slot += 1;
            conn.pending.push_back(SlotState::Waiting(slot));
            let done = {
                let shared = Arc::clone(shared);
                let conn_id = conn.id;
                move |result: io::Result<usize>| {
                    let t = &shared.threads[index];
                    t.inbox.lock().done.push(Completion {
                        conn: conn_id,
                        slot,
                        done: Done::Quarantine(result),
                    });
                    let _ = t.waker.wake();
                }
            };
            if commit
                .submit_quarantine(subject, level, events, done)
                .is_err()
            {
                let frame = response_frame(&Response::Error {
                    code: ErrorCode::Internal,
                    role: Some(shared.role),
                    message: "server is shutting down".into(),
                });
                *conn.pending.back_mut().expect("slot just pushed") = SlotState::Ready(frame);
            }
            return;
        }
    }
    let slot = conn.next_slot;
    conn.next_slot += 1;
    conn.pending.push_back(SlotState::Waiting(slot));
    // Write latency spans the submit-to-durable window: the span ends
    // on the commit thread, right after this batch's fsync returned.
    let submitted = (!ltam_obs::disabled()).then(Instant::now);
    let done = {
        let shared = Arc::clone(shared);
        let conn_id = conn.id;
        move |result: io::Result<BatchOutcome>| {
            if let Some(t) = submitted {
                let latency = match kind {
                    WriteKind::Ingest => ltam_obs::histogram!(
                        "serve_request_seconds",
                        "Server-side request latency by request kind (queries: decode to \
                         encoded response; writes: decode to durable)",
                        SecondsFromMicros,
                        "kind" => "ingest"
                    ),
                    WriteKind::Check => ltam_obs::histogram!(
                        "serve_request_seconds",
                        "Server-side request latency by request kind (queries: decode to \
                         encoded response; writes: decode to durable)",
                        SecondsFromMicros,
                        "kind" => "check"
                    ),
                };
                latency.observe(t.elapsed().as_micros() as u64);
            }
            let t = &shared.threads[index];
            t.inbox.lock().done.push(Completion {
                conn: conn_id,
                slot,
                done: Done::Write { kind, result },
            });
            let _ = t.waker.wake();
        }
    };
    if commit.submit(events, done).is_err() {
        // Commit thread already gone (shutdown race): fail the slot
        // in place.
        let frame = response_frame(&Response::Error {
            code: ErrorCode::Internal,
            role: Some(shared.role),
            message: "server is shutting down".into(),
        });
        *conn.pending.back_mut().expect("slot just pushed") = SlotState::Ready(frame);
    }
}

/// Turn a commit completion into its slot's ready response. Every
/// completion is for a frame that passed the capability gate, so its
/// error frames carry the unredacted role.
fn apply_completion(conn: &mut Conn, completion: Completion, role: ServerRole) {
    let role = Some(role);
    let response = match completion.done {
        Done::Write {
            kind: WriteKind::Ingest,
            result: Ok(outcome),
        } => Response::Ingested {
            processed: outcome.processed,
            granted: outcome.granted,
            denied: outcome.denied,
            violations: outcome.violations,
        },
        Done::Write {
            kind: WriteKind::Check,
            result: Ok(outcome),
        } => Response::Access {
            granted: outcome.granted == 1,
        },
        Done::Write {
            kind: WriteKind::Ingest,
            result: Err(e),
        } => Response::Error {
            code: ErrorCode::Internal,
            role,
            message: format!("batch not durable: {e}"),
        },
        Done::Write {
            kind: WriteKind::Check,
            result: Err(e),
        } => Response::Error {
            code: ErrorCode::Internal,
            role,
            message: format!("swipe not durable: {e}"),
        },
        Done::Quarantine(Ok(held)) => Response::Quarantined { held },
        Done::Quarantine(Err(e)) => Response::Error {
            code: ErrorCode::Internal,
            role,
            message: format!("quarantine batch not durable: {e}"),
        },
        Done::Admin(Ok(outcome)) => Response::Admin { outcome },
        Done::Admin(Err(e)) => Response::Error {
            code: ErrorCode::Internal,
            role,
            message: format!("admin edit not durable: {e}"),
        },
        Done::Situation(Ok(outcome)) => Response::Situation { outcome },
        Done::Situation(Err(e)) => Response::Error {
            code: ErrorCode::Internal,
            role,
            message: format!("situation edit not durable: {e}"),
        },
    };
    let frame = response_frame(&response);
    let filled = conn.pending.iter_mut().find_map(|s| match s {
        SlotState::Waiting(id) if *id == completion.slot => Some(s),
        _ => None,
    });
    match filled {
        Some(slot) => *slot = SlotState::Ready(frame),
        None => {
            // A slot can only vanish with the whole connection; a
            // present connection always holds its waiting slots.
            debug_assert!(false, "completion for unknown slot");
        }
    }
}

fn count_served(conn: &Conn, shared: &Shared) {
    shared.stats.requests_served.fetch_add(1, Ordering::SeqCst);
    if let Some(n) = shared.stats.per_connection.lock().get_mut(&conn.id) {
        *n += 1;
    }
}

/// Append an inline (already-answerable) response to the FIFO.
fn push_response(conn: &mut Conn, response: &Response) {
    conn.pending
        .push_back(SlotState::Ready(response_frame(response)));
}

fn response_frame(response: &Response) -> Vec<u8> {
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, &wire::encode_response(response))
        .expect("writing to a Vec cannot fail");
    frame
}

/// Move the FIFO's ready prefix into the output buffer and write as
/// much as the socket takes. Returns false when the connection should
/// close (write failure, or `closing` and fully drained).
fn flush(conn: &mut Conn, now: Instant) -> bool {
    loop {
        if conn.out_backlog() == 0 {
            conn.out.clear();
            conn.out_pos = 0;
            while matches!(conn.pending.front(), Some(SlotState::Ready(_))) {
                let Some(SlotState::Ready(frame)) = conn.pending.pop_front() else {
                    unreachable!("front checked to be Ready");
                };
                conn.out.extend_from_slice(&frame);
            }
            if conn.out.is_empty() {
                break;
            }
        }
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return false,
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = now;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    !(conn.closing && conn.drained())
}

/// Reconcile the fd's epoll registration with what the connection
/// currently wants. Returns false on a registry failure (close it).
fn update_interest(conn: &mut Conn, poll: &Poll, config: &ServerConfig) -> bool {
    let want_read = !read_paused(conn, config);
    // A read-interest drop that is not the connection closing is a
    // backpressure valve engaging: count the edge (not the paused
    // passes), named for which cap tripped.
    let was_reading = conn.registered.is_some_and(|i| i.is_readable());
    if was_reading && !want_read && !conn.closing {
        let valve = if conn.pending.len() >= config.max_pipeline {
            ltam_obs::counter!(
                "serve_backpressure_total",
                "Connections paused (read interest dropped) by which valve tripped",
                "valve" => "pipeline"
            )
        } else {
            ltam_obs::counter!(
                "serve_backpressure_total",
                "Connections paused (read interest dropped) by which valve tripped",
                "valve" => "write_buffer"
            )
        };
        valve.inc();
    }
    let want_write =
        conn.out_backlog() > 0 || matches!(conn.pending.front(), Some(SlotState::Ready(_)));
    let desired = match (want_read, want_write) {
        (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
        (true, false) => Some(Interest::READABLE),
        (false, true) => Some(Interest::WRITABLE),
        // Fully backpressured (or closing while a write commits):
        // deregister — level-triggered readiness on bytes we refuse to
        // read would otherwise spin the loop. Completions re-arm us
        // through the inbox, not through epoll.
        (false, false) => None,
    };
    let ok = match (conn.registered, desired) {
        (Some(cur), Some(want)) if cur != want => poll
            .registry()
            .reregister(&conn.stream, conn.token, want)
            .is_ok(),
        (None, Some(want)) => poll
            .registry()
            .register(&conn.stream, conn.token, want)
            .is_ok(),
        (Some(_), None) => poll.registry().deregister(&conn.stream).is_ok(),
        _ => true,
    };
    if ok {
        conn.registered = desired;
    }
    ok
}

/// Answer a read-only query from the poll thread via the shared
/// [`ReadView`] — never touching the commit thread.
fn answer_query(query: HistoryQuery, shared: &Shared) -> Response {
    let view = &shared.view;
    // Queries reach here only after the capability gate, so the role
    // is never redacted on this path.
    let role = Some(shared.role);
    // A freshly (re-)started follower may hold state older than the
    // watermark its predecessor already served reads at. Answering
    // from it would show time running backward; refuse until caught
    // up. `Status` stays answerable — it is how operators watch the
    // catch-up.
    if !matches!(query, HistoryQuery::Status) {
        if let Some(replica) = &shared.replica {
            let applied = view.applied();
            if applied < replica.floor() {
                refused("stale").inc();
                return Response::Error {
                    code: ErrorCode::Stale,
                    role,
                    message: format!(
                        "follower at sequence {applied}, behind its served watermark {}; \
                         retry once caught up",
                        replica.floor()
                    ),
                };
            }
        }
    }
    match query {
        HistoryQuery::Whereabouts { subject, at } => view
            .whereabouts(subject, at)
            .map(|location| Response::Whereabouts { location })
            .unwrap_or_else(|e| history_error(e, role)),
        HistoryQuery::PresentDuring { location, window } => view
            .present_during(location, window)
            .map(|rows| Response::Present { rows })
            .unwrap_or_else(|e| history_error(e, role)),
        HistoryQuery::Contacts { subject, window } => view
            .contacts(subject, window)
            .map(|contacts| Response::Contacts {
                contacts,
                // Contact-tracing answers flag what quarantine holds:
                // an analyst must see that an untrusted sensor claimed
                // more contact than trusted history shows.
                quarantined: view.engine().quarantined_involving(subject, window),
            })
            .unwrap_or_else(|e| history_error(e, role)),
        HistoryQuery::ViolationsIn { window } => view
            .violations_in(window)
            .map(|violations| Response::Violations { violations })
            .unwrap_or_else(|e| history_error(e, role)),
        HistoryQuery::Quarantine { source, window } => Response::Quarantine {
            events: view.engine().quarantined_in(source, window),
        },
        HistoryQuery::Status => Response::Status {
            status: status_of(shared),
        },
    }
}

/// Answer one replication request. Manifests and chunks are served
/// from the primary's store directory through the shared [`ReadView`];
/// a follower refuses them (replication chains from the primary only).
fn answer_repl(conn: &mut Conn, request: ReplRequest, shared: &Shared) {
    if shared.role != ServerRole::Primary {
        refused("bad_request").inc();
        push_response(
            conn,
            &Response::Error {
                code: ErrorCode::BadRequest,
                role: Some(shared.role),
                message: "replication is served by the primary, not a follower".into(),
            },
        );
        return;
    }
    let view = &shared.view;
    let dir = view.dir();
    match request {
        ReplRequest::Manifest => {
            let inventory = (|| {
                io::Result::Ok((
                    newest_snapshot(dir)?,
                    archive_files(dir)?,
                    wal_segment_ids(dir)?,
                    epoch_marker_file(dir)?,
                ))
            })();
            let response = match inventory {
                Ok((snapshot, archives, wal_segments, epoch_marker)) => Response::ReplManifest {
                    manifest: ReplManifest {
                        // Counters after the listing: `applied` must
                        // never overstate what the listed files hold.
                        applied: view.applied(),
                        policy_epoch: view.policy_epoch(),
                        enforcement_epoch: view.enforcement_epoch(),
                        retention_watermark: view.retention_watermark().get(),
                        snapshot,
                        archives,
                        wal_segments,
                        epoch_marker,
                    },
                },
                Err(e) => Response::Error {
                    code: ErrorCode::Internal,
                    role: Some(shared.role),
                    message: format!("listing store files: {e}"),
                },
            };
            push_response(conn, &response);
        }
        ReplRequest::Fetch { file, offset, len } => {
            // Leave room in the frame for the chunk meta and headers.
            let cap = shared.config.max_frame_bytes.saturating_sub(4096).max(1);
            match read_file_chunk(dir, file, offset, len.min(cap)) {
                Ok(Some(read)) => {
                    // Bytes were read BEFORE these counters: everything
                    // in them is at-or-before `applied`, and a chunk
                    // carrying a stale epoch can never pass the
                    // follower's epoch check after a swap.
                    let sealed = match file {
                        ReplFileId::WalSegment { first_seq } => wal_segment_ids(dir)
                            .map(|ids| ids.iter().any(|&id| id > first_seq))
                            .unwrap_or(false),
                        _ => true,
                    };
                    let chunk = ReplChunk {
                        meta: ReplChunkMeta {
                            file,
                            offset,
                            file_len: read.file_len,
                            sealed,
                            applied: view.applied(),
                            policy_epoch: view.policy_epoch(),
                            enforcement_epoch: view.enforcement_epoch(),
                            retention_watermark: view.retention_watermark().get(),
                        },
                        bytes: read.bytes,
                    };
                    let mut frame = Vec::new();
                    wire::write_frame(&mut frame, &wire::encode_repl_chunk(&chunk))
                        .expect("writing to a Vec cannot fail");
                    conn.pending.push_back(SlotState::Ready(frame));
                }
                Ok(None) => {
                    refused("gone").inc();
                    push_response(
                        conn,
                        &Response::Error {
                            code: ErrorCode::Gone,
                            role: Some(shared.role),
                            message: format!(
                                "{} is gone (pruned or compacted); re-list the manifest",
                                file.file_name()
                            ),
                        },
                    );
                }
                Err(e) => push_response(
                    conn,
                    &Response::Error {
                        code: ErrorCode::Internal,
                        role: Some(shared.role),
                        message: format!("reading {}: {e}", file.file_name()),
                    },
                ),
            }
        }
    }
}

fn history_error(e: HistoryError, role: Option<ServerRole>) -> Response {
    let code = match e {
        HistoryError::Unarchived { .. } => ErrorCode::Unarchived,
        HistoryError::Io(_) => ErrorCode::Internal,
    };
    Response::Error {
        code,
        role,
        message: e.to_string(),
    }
}

fn status_of(shared: &Shared) -> ServerStatus {
    let view = &shared.view;
    let (archive_covered_to, archive_error) = match view.archive_covered_to() {
        Ok(covered) => (covered, None),
        // An unreadable archive must not masquerade as the healthy
        // "nothing archived yet" zero.
        Err(e) => (0, Some(e.to_string())),
    };
    ServerStatus {
        role: shared.role,
        state_digest: view.engine().state_digest(),
        replica: shared.replica.as_ref().map(|r| r.status(view.applied())),
        events_ingested: view.applied(),
        snapshot_seq: view.last_snapshot_seq(),
        policy_epoch: view.policy_epoch(),
        enforcement_epoch: view.enforcement_epoch(),
        auth_required: view.engine().policy().wire().required,
        quarantined_events: view.engine().quarantine_len(),
        retention_watermark: view.retention_watermark().get(),
        archive_covered_to,
        archive_error,
        archive_segments_loaded: view.archive_segments_loaded(),
        wal_fsyncs: view.wal_fsyncs(),
        engine: view.engine().status(),
        connections_active: shared.stats.active.load(Ordering::SeqCst),
        connections_total: shared.stats.connections_total.load(Ordering::SeqCst),
        refused_busy: shared.stats.refused_busy.load(Ordering::SeqCst),
        requests_served: shared.stats.requests_served.load(Ordering::SeqCst),
        protocol_errors: shared.stats.protocol_errors.load(Ordering::SeqCst),
        per_connection: shared
            .stats
            .per_connection
            .lock()
            .iter()
            .map(|(&id, &n)| (id, n))
            .collect(),
        uptime_chronons: shared.started.elapsed().as_secs(),
        snapshot_format_version: ltam_store::SNAPSHOT_VERSION,
    }
}
