//! The serving tier: a threaded `std::net` TCP server fronting a
//! [`DurableEngine`].
//!
//! ## Threading model
//!
//! One **acceptor** thread owns the listener; every accepted connection
//! gets a dedicated **worker** thread (worker-per-connection — the same
//! trade the sharded engine makes: real OS threads, no async runtime,
//! nothing to vendor). Workers share the engine behind one
//! `parking_lot::RwLock`:
//!
//! * **writes** ([`Request::Ingest`], [`Request::Check`]) take the
//!   write lock and funnel through [`DurableEngine::ingest`] — the WAL
//!   append, shard-order merge, snapshot cadence and retention
//!   maintenance all run exactly as they do in-process, so durability
//!   and determinism are preserved per batch;
//! * **reads** ([`Request::Query`]) take the read lock and run
//!   concurrently with each other (the tier-aware queries are `&self`;
//!   the lazy archive cache has its own interior lock).
//!
//! ## Backpressure
//!
//! Past [`ServerConfig::max_connections`] the acceptor answers a
//! single [`Response::Error`] with [`ErrorCode::Busy`] and closes —
//! the client sees it as the response to its first request and can
//! back off. Within a connection, backpressure is the closed loop
//! itself: one request is in flight per connection, and a slow engine
//! slows every client's next send.
//!
//! ## Timeouts and shutdown
//!
//! Workers poll for the first byte of each frame with a short read
//! timeout so an idle connection holds no lock and notices shutdown;
//! a connection idle past [`ServerConfig::idle_timeout`] is closed
//! (its slot is the scarce resource). A peer that starts a frame and
//! stalls mid-way is cut off after the read timeout — a torn frame,
//! like a torn WAL record, never blocks the server.
//!
//! [`Server::shutdown`] stops accepting, lets every worker finish the
//! request it is processing (in-flight requests drain; idle workers
//! notice the flag at their next poll), joins all threads, takes a
//! final snapshot, and hands the engine back. [`Server::abort`] skips
//! the snapshot and drops the engine where it stands — recovery then
//! replays the WAL tail, exactly as after a crash.

use crate::wire::{
    self, ErrorCode, FrameError, HistoryQuery, Request, Response, ServerStatus, FRAME_HEADER_LEN,
};
use ltam_store::{DurableEngine, HistoryError};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Served connections beyond this are refused with
    /// [`ErrorCode::Busy`].
    pub max_connections: usize,
    /// A connection idle (no frame started) past this is closed.
    pub idle_timeout: Duration,
    /// How long a peer may stall *mid-frame* before being cut off —
    /// also the worker's poll tick for shutdown and idle checks.
    pub read_timeout: Duration,
    /// Per-frame payload cap (see [`wire::DEFAULT_MAX_FRAME_BYTES`]).
    pub max_frame_bytes: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_millis(200),
            max_frame_bytes: wire::DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// Counters and connection registry shared by every thread.
#[derive(Debug, Default)]
struct Stats {
    connections_total: AtomicU64,
    refused_busy: AtomicU64,
    requests_served: AtomicU64,
    protocol_errors: AtomicU64,
    active: AtomicUsize,
    /// Requests served per live connection, by connection id.
    per_connection: Mutex<BTreeMap<u64, u64>>,
}

struct Shared {
    engine: RwLock<DurableEngine>,
    config: ServerConfig,
    shutdown: AtomicBool,
    stats: Stats,
}

/// A running LTAM server. Dropping it without calling
/// [`Server::shutdown`] or [`Server::abort`] aborts ungracefully.
pub struct Server {
    addr: SocketAddr,
    /// `Some` while running; taken by `stop()`.
    shared: Option<Arc<Shared>>,
    acceptor: Option<JoinHandle<()>>,
    /// Worker handles, registered by the acceptor as connections come
    /// in; joined on shutdown (finished workers join instantly).
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `engine`.
    pub fn start(engine: DurableEngine, addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: RwLock::new(engine),
            config,
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
        });
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            std::thread::spawn(move || acceptor_loop(listener, shared, workers))
        };
        Ok(Server {
            addr: local,
            shared: Some(shared),
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address the server is listening on (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully stop: refuse new connections, drain in-flight
    /// requests, join every thread, snapshot, and return the engine.
    pub fn shutdown(mut self) -> io::Result<DurableEngine> {
        let mut engine = self.stop()?;
        engine.snapshot()?;
        Ok(engine)
    }

    /// Hard-stop without the final snapshot — the closest an in-process
    /// test can get to `kill -9`: whatever the WAL holds is what
    /// recovery will see.
    pub fn abort(mut self) -> io::Result<()> {
        self.stop().map(drop)
    }

    fn stop(&mut self) -> io::Result<DurableEngine> {
        let shared = self
            .shared
            .take()
            .ok_or_else(|| io::Error::other("server already stopped"))?;
        shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            let _ = h.join();
        }
        match Arc::try_unwrap(shared) {
            Ok(shared) => Ok(shared.engine.into_inner()),
            Err(_) => Err(io::Error::other(
                "a worker thread still holds the engine after join",
            )),
        }
    }
}

fn acceptor_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn_id = 0u64;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => {
                // Persistent accept failures (EMFILE under fd pressure,
                // ECONNABORTED storms) must not busy-spin the acceptor;
                // back off briefly and retry. Shutdown still lands: the
                // flag is checked every iteration.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        // Reap finished workers so the handle list tracks *live*
        // connections, not every connection ever accepted.
        {
            let mut guard = workers.lock();
            let (done, live): (Vec<_>, Vec<_>) = guard.drain(..).partition(|h| h.is_finished());
            *guard = live;
            drop(guard);
            for h in done {
                let _ = h.join();
            }
        }
        let active = shared.stats.active.load(Ordering::SeqCst);
        if active >= shared.config.max_connections {
            refuse_busy(stream, &shared);
            continue;
        }
        shared.stats.active.fetch_add(1, Ordering::SeqCst);
        shared
            .stats
            .connections_total
            .fetch_add(1, Ordering::SeqCst);
        let id = next_conn_id;
        next_conn_id += 1;
        shared.stats.per_connection.lock().insert(id, 0);
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let _ = serve_connection(stream, id, &shared);
                shared.stats.per_connection.lock().remove(&id);
                shared.stats.active.fetch_sub(1, Ordering::SeqCst);
            })
        };
        workers.lock().push(worker);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.shared.is_some() {
            let _ = self.stop(); // ungraceful: no final snapshot
        }
    }
}

/// Over the connection limit: answer one `Busy` error and close.
fn refuse_busy(mut stream: TcpStream, shared: &Shared) {
    shared.stats.refused_busy.fetch_add(1, Ordering::SeqCst);
    // A refused peer not reading must not wedge the acceptor either.
    let _ = stream.set_write_timeout(Some(shared.config.idle_timeout));
    let response = Response::Error {
        code: ErrorCode::Busy,
        message: format!(
            "serving {} connections (the configured limit); retry later",
            shared.config.max_connections
        ),
    };
    let _ = wire::write_frame(&mut stream, &wire::encode_response(&response));
}

/// One worker: read frames, dispatch, respond, until disconnect,
/// protocol violation, idle timeout, or shutdown.
fn serve_connection(mut stream: TcpStream, conn_id: u64, shared: &Shared) -> io::Result<()> {
    // Closed-loop request/response: Nagle + delayed ACK would add tens
    // of milliseconds per round trip.
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    // A peer that stops *reading* is as dead as one that stops
    // writing: without this, a full kernel send buffer would block
    // `write_all` forever, pin the connection slot, and stall
    // `Server::shutdown` at the join.
    stream.set_write_timeout(Some(shared.config.idle_timeout))?;
    let mut last_activity = Instant::now();
    loop {
        // Phase 1: poll for the first header byte, so idleness (no
        // frame started) is distinguishable from a mid-frame stall.
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return Ok(()), // clean disconnect between frames
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                if last_activity.elapsed() >= shared.config.idle_timeout {
                    return Ok(()); // idle: free the slot
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        // Phase 2: the peer committed to a frame; finish it or cut off.
        let mut header = [0u8; FRAME_HEADER_LEN];
        header[0] = first[0];
        let payload = stream
            .read_exact(&mut header[1..])
            .map_err(FrameError::Io)
            .and_then(|()| {
                wire::read_frame_after_header(&mut stream, header, shared.config.max_frame_bytes)
            });
        let payload = match payload {
            Ok(p) => p,
            Err(FrameError::Protocol(e)) => {
                // Malformed frame: report, answer once, disconnect (the
                // stream is no longer in sync).
                shared.stats.protocol_errors.fetch_add(1, Ordering::SeqCst);
                let response = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("unreadable frame: {e}"),
                };
                let _ = wire::write_frame(&mut stream, &wire::encode_response(&response));
                return Ok(());
            }
            Err(FrameError::Io(_)) => return Ok(()), // torn frame / dead peer
        };
        last_activity = Instant::now();
        let response = match wire::decode_request(&payload) {
            Ok(request) => dispatch(shared, request),
            Err(e) => {
                // Framing was intact (CRC passed) but the body is not a
                // request: answer the error and stay in sync.
                shared.stats.protocol_errors.fetch_add(1, Ordering::SeqCst);
                Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                }
            }
        };
        wire::write_frame(&mut stream, &wire::encode_response(&response))?;
        shared.stats.requests_served.fetch_add(1, Ordering::SeqCst);
        if let Some(n) = shared.stats.per_connection.lock().get_mut(&conn_id) {
            *n += 1;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain semantics: the in-flight request was answered;
            // close before starting another.
            return Ok(());
        }
    }
}

fn dispatch(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Ingest(events) => match shared.engine.write().ingest(&events) {
            Ok(outcome) => Response::Ingested {
                processed: outcome.processed,
                granted: outcome.granted,
                denied: outcome.denied,
                violations: outcome.violations,
            },
            Err(e) => Response::Error {
                code: ErrorCode::Internal,
                message: format!("batch not durable: {e}"),
            },
        },
        Request::Check(event) => match shared.engine.write().ingest(&[event]) {
            Ok(outcome) => Response::Access {
                granted: outcome.granted == 1,
            },
            Err(e) => Response::Error {
                code: ErrorCode::Internal,
                message: format!("swipe not durable: {e}"),
            },
        },
        Request::Query(query) => {
            let engine = shared.engine.read();
            match query {
                HistoryQuery::Whereabouts { subject, at } => engine
                    .whereabouts(subject, at)
                    .map(|location| Response::Whereabouts { location })
                    .unwrap_or_else(history_error),
                HistoryQuery::PresentDuring { location, window } => engine
                    .present_during(location, window)
                    .map(|rows| Response::Present { rows })
                    .unwrap_or_else(history_error),
                HistoryQuery::Contacts { subject, window } => engine
                    .contacts(subject, window)
                    .map(|contacts| Response::Contacts { contacts })
                    .unwrap_or_else(history_error),
                HistoryQuery::ViolationsIn { window } => engine
                    .violations_in(window)
                    .map(|violations| Response::Violations { violations })
                    .unwrap_or_else(history_error),
                HistoryQuery::Status => Response::Status {
                    status: status_of(shared, &engine),
                },
            }
        }
    }
}

fn history_error(e: HistoryError) -> Response {
    let code = match e {
        HistoryError::Unarchived { .. } => ErrorCode::Unarchived,
        HistoryError::Io(_) => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

fn status_of(shared: &Shared, engine: &DurableEngine) -> ServerStatus {
    let (archive_covered_to, archive_error) = match engine.archive_covered_to() {
        Ok(covered) => (covered, None),
        // An unreadable archive must not masquerade as the healthy
        // "nothing archived yet" zero.
        Err(e) => (0, Some(e.to_string())),
    };
    ServerStatus {
        events_ingested: engine.applied(),
        snapshot_seq: engine.last_snapshot_seq(),
        policy_epoch: engine.policy_epoch(),
        retention_watermark: engine.retention_watermark().get(),
        archive_covered_to,
        archive_error,
        archive_segments_loaded: engine.archive_segments_loaded(),
        engine: engine.engine().status(),
        connections_active: shared.stats.active.load(Ordering::SeqCst),
        connections_total: shared.stats.connections_total.load(Ordering::SeqCst),
        refused_busy: shared.stats.refused_busy.load(Ordering::SeqCst),
        requests_served: shared.stats.requests_served.load(Ordering::SeqCst),
        protocol_errors: shared.stats.protocol_errors.load(Ordering::SeqCst),
        per_connection: shared
            .stats
            .per_connection
            .lock()
            .iter()
            .map(|(&id, &n)| (id, n))
            .collect(),
    }
}
