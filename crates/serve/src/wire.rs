//! The LTAM wire protocol (version 1): length-prefixed, CRC32-framed
//! request/response messages over any byte stream.
//!
//! ## Frame layout
//!
//! ```text
//! ┌──────── frame header (8 bytes) ────────┬──────────────────────────┐
//! │ len u32 LE │ crc32 u32 LE              │ payload (len bytes)      │
//! └────────────┴───────────────────────────┴──────────────────────────┘
//! payload = [ kind u8 ][ body ]
//! ```
//!
//! The framing deliberately mirrors the WAL record format
//! (`ltam-store`'s `wal.rs`): the CRC covers the payload, and the
//! integer encodings are the same LEB128 varints
//! ([`ltam_store::put_varint`]). Bodies come in two shapes:
//!
//! * **binary** — the hot ingest path ([`Request::Ingest`],
//!   [`Request::Check`]) carries events in the WAL event codec
//!   ([`ltam_store::encode_event`]), so a sensor batch costs the same
//!   bytes on the wire as it does in the log;
//! * **JSON** — queries and every response, exactly like archive
//!   segments pair a binary events block with a JSON records block.
//!
//! Decoding is **total**: arbitrary bytes either decode to a message or
//! return a [`WireError`] — never a panic — and a corrupted frame can
//! never decode to a *wrong-but-valid* message, because the CRC is
//! checked before the body is looked at (CRC32 catches every single-bit
//! flip in the payload). The workspace's serve property tests assert
//! all of this the same way the codec's do.

use ltam_core::capability::{AdminOp, AdminOutcome, Scope, TokenId};
use ltam_core::subject::SubjectId;
use ltam_engine::batch::{EngineStatus, Event, QuarantinedEvent};
use ltam_engine::movement::Contact;
use ltam_engine::Violation;
use ltam_graph::LocationId;
use ltam_situate::{SituationOp, SituationOutcome};
use ltam_store::codec::{decode_event, encode_event, get_varint, put_varint, DecodeError};
use ltam_store::crc32;
use ltam_store::replica::{ReplFile, ReplFileId};
use ltam_time::{Interval, Time};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};

/// Bytes of the frame header (length + CRC).
pub const FRAME_HEADER_LEN: usize = 8;

/// Default cap on a frame's payload size. A peer announcing a larger
/// frame is protocol-violating (or malicious): the reader refuses
/// before allocating.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Payload kind tags (version 1).
const KIND_INGEST: u8 = 0x01;
const KIND_CHECK: u8 = 0x02;
const KIND_QUERY: u8 = 0x03;
const KIND_RESPONSE: u8 = 0x04;
const KIND_REPL: u8 = 0x05;
const KIND_REPL_CHUNK: u8 = 0x06;
const KIND_METRICS: u8 = 0x07;
const KIND_HELLO: u8 = 0x08;
const KIND_ADMIN: u8 = 0x09;
const KIND_SITUATION: u8 = 0x0A;

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame announced a payload larger than the reader's cap.
    FrameTooLarge {
        /// The announced payload length.
        len: u32,
        /// The reader's cap.
        max: u32,
    },
    /// An empty payload (every payload carries at least a kind byte).
    EmptyPayload,
    /// The payload's CRC32 does not match the header's.
    CrcMismatch,
    /// The leading kind byte is not a known payload kind.
    BadKind(u8),
    /// A binary body failed to decode as events.
    Codec(DecodeError),
    /// A binary body decoded cleanly but bytes remained.
    TrailingBytes,
    /// The event count of an ingest body is implausible for the body's
    /// size (refused before allocating).
    BadCount(u64),
    /// A `Check` body must be a `Request` event (a door swipe).
    NotARequest,
    /// A JSON body failed to parse as the expected message.
    BadJson(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::EmptyPayload => write!(f, "empty frame payload"),
            WireError::CrcMismatch => write!(f, "frame CRC mismatch"),
            WireError::BadKind(k) => write!(f, "unknown payload kind {k:#04x}"),
            WireError::Codec(e) => write!(f, "event codec error: {e}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after the message body"),
            WireError::BadCount(n) => write!(f, "implausible event count {n} for the body size"),
            WireError::NotARequest => write!(f, "Check body must be a Request event"),
            WireError::BadJson(e) => write!(f, "bad JSON body: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Codec(e)
    }
}

/// What [`read_frame`] can fail with: a transport error (timeout,
/// disconnect, torn read) or a protocol violation by the peer.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (includes timeouts and EOF).
    Io(io::Error),
    /// The peer sent bytes that are not a valid frame.
    Protocol(WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// A request from a client to the serving tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Durably ingest a batch of sensor events (the write path; the
    /// server funnels it through `DurableEngine::ingest`, so the whole
    /// batch is WAL-durable before the response — or none of it is).
    Ingest(Vec<Event>),
    /// A single door swipe: the event must be [`Event::Request`]. The
    /// response reports the decision.
    Check(Event),
    /// A read-only historical or status query.
    Query(HistoryQuery),
    /// A replication request from a follower (only a primary answers;
    /// a follower refuses with [`ErrorCode::BadRequest`] so replication
    /// chains never form by accident).
    Repl(ReplRequest),
    /// Scrape the server's metric registry (tag `0x07`, empty body).
    /// Answered with [`Response::Metrics`]: the full Prometheus-style
    /// text exposition, including every `ltam-obs` series the process
    /// has registered.
    Metrics,
    /// The authentication handshake (tag `0x08`): present a capability
    /// token's secret. Answered with [`Response::Welcome`] (mapping the
    /// connection to the token's subject and scopes) or an
    /// [`ErrorCode::Unauthenticated`] refusal. May be re-sent on a live
    /// connection to switch tokens.
    Hello {
        /// The token secret minted by an admin.
        token: String,
    },
    /// A policy/token administration operation (tag `0x09`, JSON body).
    /// Requires an authenticated connection whose token carries
    /// [`Scope::Admin`] (or the server's root token), regardless of
    /// whether auth is otherwise required. Answered with
    /// [`Response::Admin`].
    Admin(AdminOp),
    /// A situation operation — declare/clear an emergency or lockdown,
    /// edit responders/pins, or install a workflow constraint (tag
    /// `0x0A`, JSON body). Admin-gated like [`Request::Admin`]; only a
    /// primary accepts it (followers receive the op through the
    /// replicated WAL instead). Answered with [`Response::Situation`].
    Situation(SituationOp),
}

/// What a follower asks its primary for (JSON-bodied, tag `0x05`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplRequest {
    /// The primary's current shippable-file inventory and positions
    /// (answered with [`Response::ReplManifest`]).
    Manifest,
    /// Up to `len` bytes of `file` starting at `offset` (answered with
    /// a binary [`ReplChunk`] frame, or [`ErrorCode::Gone`] if the file
    /// has been rotated, compacted or pruned away).
    Fetch {
        /// Which store file.
        file: ReplFileId,
        /// Byte offset to read from.
        offset: u64,
        /// Maximum bytes wanted (the primary also caps by its own
        /// frame limit).
        len: u32,
    },
}

/// The primary's replication manifest: every file a follower may fetch
/// plus the durability positions that let it pick a bootstrap plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplManifest {
    /// Events durably applied on the primary (the WAL sequence).
    pub applied: u64,
    /// The primary's current policy epoch. A follower whose engine is
    /// on a different epoch must re-bootstrap — policy edits are not
    /// WAL records, so tailing cannot carry them across.
    pub policy_epoch: u64,
    /// The primary's enforcement epoch — the epoch followers actually
    /// compare: wire-auth edits (token mint/revoke, trust changes) bump
    /// `policy_epoch` without touching this, and must not park a
    /// follower in `NeedsBootstrap`.
    pub enforcement_epoch: u64,
    /// The primary's movement-retention watermark (chronons; 0 = never
    /// pruned).
    pub retention_watermark: u64,
    /// The newest snapshot, if any — the bootstrap anchor.
    pub snapshot: Option<ReplFile>,
    /// The archive chain, in coverage order.
    pub archives: Vec<ReplFile>,
    /// First sequence of every WAL segment, ascending; all but the
    /// last are sealed.
    pub wal_segments: Vec<u64>,
    /// The policy-epoch marker file, if one has been written.
    pub epoch_marker: Option<ReplFile>,
}

/// Metadata riding with every shipped chunk of file bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplChunkMeta {
    /// The file the bytes came from.
    pub file: ReplFileId,
    /// Byte offset of the first shipped byte.
    pub offset: u64,
    /// The file's total length when the chunk was read.
    pub file_len: u64,
    /// For WAL segments: was another, later segment present when this
    /// chunk was read (so this one is sealed and must end on a record
    /// boundary)? Always `true` for immutable files.
    pub sealed: bool,
    /// The primary's applied sequence, read **after** the bytes — so a
    /// chunk can never carry post-epoch-bump records under a
    /// pre-bump epoch stamp.
    pub applied: u64,
    /// The primary's policy epoch, read after the bytes (same ordering
    /// guarantee).
    pub policy_epoch: u64,
    /// The primary's enforcement epoch, read after the bytes — the one
    /// the follower compares (see [`ReplManifest::enforcement_epoch`]).
    pub enforcement_epoch: u64,
    /// The primary's retention watermark (chronons).
    pub retention_watermark: u64,
}

/// A shipped chunk: metadata plus the raw file bytes (binary frame,
/// tag `0x06` — the bytes travel uncopied next to a small JSON header,
/// mirroring how archive segments pair a JSON block with binary
/// events).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplChunk {
    /// The chunk's provenance and the primary's positions.
    pub meta: ReplChunkMeta,
    /// The raw file bytes at `[meta.offset, meta.offset + bytes.len())`.
    pub bytes: Vec<u8>,
}

/// What a replication exchange can answer with: a binary chunk or an
/// ordinary JSON response (manifest, error).
#[derive(Debug, Clone, PartialEq)]
pub enum ReplReply {
    /// A shipped chunk of file bytes.
    Chunk(ReplChunk),
    /// A JSON response (a manifest or a refusal).
    Other(Box<Response>),
}

/// The read-only queries the serving tier answers (tier-aware: they
/// transparently merge the archive when the window reaches below the
/// retention watermark).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HistoryQuery {
    /// Where was `subject` at `at`?
    Whereabouts {
        /// The subject to locate.
        subject: SubjectId,
        /// The chronon to locate them at.
        at: Time,
    },
    /// Who was in `location` during `window`?
    PresentDuring {
        /// The location of interest.
        location: LocationId,
        /// The presence window.
        window: Interval,
    },
    /// The paper's SARS query: who overlapped with `subject`?
    Contacts {
        /// The diagnosed subject.
        subject: SubjectId,
        /// The exposure window.
        window: Interval,
    },
    /// Violations detected inside `window`.
    ViolationsIn {
        /// The report window.
        window: Interval,
    },
    /// The quarantine triage query: events held off enforcement because
    /// their sensor's trust level was below the threshold, optionally
    /// filtered by source sensor.
    Quarantine {
        /// Only events from this sensor (`None` = all sources).
        source: Option<SubjectId>,
        /// The report window.
        window: Interval,
    },
    /// Operational counters (see [`ServerStatus`]).
    Status,
}

/// Machine-readable classes of server-reported errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The server is at its connection limit; retry later.
    Busy,
    /// The request decoded but was semantically invalid.
    BadRequest,
    /// The query needs history that was discarded without archiving
    /// (see `ltam_store::HistoryError::Unarchived`).
    Unarchived,
    /// The server failed internally (I/O on the store, archive rot).
    Internal,
    /// A write was sent to a read-only follower; the message names the
    /// primary to redirect to.
    NotPrimary,
    /// The requested replication file no longer exists (rotated,
    /// compacted or pruned) — the follower must re-plan or
    /// re-bootstrap.
    Gone,
    /// A follower still catching up to its watermark floor refused a
    /// history query rather than serve an answer older than what it
    /// already acknowledged serving.
    Stale,
    /// The connection has not presented a valid token (no handshake,
    /// unknown secret, or the token expired/was revoked) and the server
    /// requires one. Re-handshake with a live token to continue.
    Unauthenticated,
    /// The connection's token is live but does not carry the capability
    /// this frame needs (wrong scope, or a location outside the token's
    /// ingest grant).
    PermissionDenied,
}

/// Which role a server is running in (stamped on status and on every
/// refusal, so clients that fail over between boxes always know *who*
/// refused them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerRole {
    /// The single writer: accepts ingest, serves queries, ships
    /// replication.
    #[default]
    Primary,
    /// A read replica: tails a primary, refuses writes with
    /// [`ErrorCode::NotPrimary`].
    Follower,
}

/// A response from the serving tier. Always JSON-bodied (tag
/// `0x04`): responses carry structured query results, which is
/// exactly the shape the archive's JSON block already serializes.
///
/// `Status` is much larger than its siblings; responses are
/// transient (encoded or consumed immediately), so boxing it would
/// buy nothing but indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Outcome of an [`Request::Ingest`] batch.
    Ingested {
        /// Events in the batch.
        processed: usize,
        /// Access requests granted.
        granted: usize,
        /// Access requests denied.
        denied: usize,
        /// Violations the batch raised, in shard-merge order.
        violations: Vec<Violation>,
    },
    /// Outcome of a [`Request::Check`] swipe.
    Access {
        /// Was the request granted?
        granted: bool,
    },
    /// Answer to [`HistoryQuery::Whereabouts`].
    Whereabouts {
        /// The location, if the subject was anywhere known.
        location: Option<LocationId>,
    },
    /// Answer to [`HistoryQuery::PresentDuring`].
    Present {
        /// `(subject, clipped overlap)` rows.
        rows: Vec<(SubjectId, Interval)>,
    },
    /// Answer to [`HistoryQuery::Contacts`].
    Contacts {
        /// The contact rows (trusted history only).
        contacts: Vec<Contact>,
        /// Quarantined events involving the subject inside the window —
        /// kept separate so an answer built on untrusted sensor data is
        /// *flagged*, never silently merged into `contacts`.
        quarantined: Vec<QuarantinedEvent>,
    },
    /// Answer to [`HistoryQuery::ViolationsIn`].
    Violations {
        /// The violations inside the window.
        violations: Vec<Violation>,
    },
    /// Answer to [`HistoryQuery::Quarantine`].
    Quarantine {
        /// The held events, with their source and its trust level.
        events: Vec<QuarantinedEvent>,
    },
    /// Answer to [`Request::Hello`]: the connection is now authenticated.
    Welcome {
        /// The token's id (for audit lines; never the secret).
        token: TokenId,
        /// The LTAM subject the connection now acts as.
        subject: SubjectId,
        /// The scopes the token grants.
        scopes: Vec<Scope>,
    },
    /// Answer to [`Request::Admin`].
    Admin {
        /// What the operation did.
        outcome: AdminOutcome,
    },
    /// Answer to [`Request::Situation`].
    Situation {
        /// What the operation did.
        outcome: SituationOutcome,
    },
    /// Outcome of an ingest batch that was **quarantined**: the events
    /// are durable on the quarantine ledger but were not enforced,
    /// because the sending sensor's trust level is below the threshold.
    Quarantined {
        /// Events held on the ledger.
        held: usize,
    },
    /// Answer to [`HistoryQuery::Status`].
    Status {
        /// The counters.
        status: ServerStatus,
    },
    /// Answer to [`ReplRequest::Manifest`].
    ReplManifest {
        /// The primary's shippable-file inventory.
        manifest: ReplManifest,
    },
    /// Answer to [`Request::Metrics`].
    Metrics {
        /// The Prometheus-style text exposition of every registered
        /// series (see `ltam_obs::encode_text`).
        text: String,
    },
    /// The request could not be served.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Who refused: primary or follower (so a client holding
        /// several addresses knows whether to redirect). `None` on
        /// refusals to **unauthenticated** connections: before a valid
        /// handshake the server discloses nothing about itself, not
        /// even its role (an unauthenticated scanner must not be able
        /// to map which box is the primary).
        role: Option<ServerRole>,
    },
}

/// Operational counters exposed by the `Status` RPC: store-level
/// durability positions, the engine's [`EngineStatus`], and the serving
/// tier's connection/request accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerStatus {
    /// Events durably applied (the WAL sequence).
    pub events_ingested: u64,
    /// WAL sequence the newest snapshot covers.
    pub snapshot_seq: u64,
    /// Policy epoch (bumped by every durable policy edit).
    pub policy_epoch: u64,
    /// Enforcement epoch (bumped only by edits that change what
    /// enforcement means — the replication barrier; wire-auth edits
    /// bump `policy_epoch` alone).
    pub enforcement_epoch: u64,
    /// Is a valid token required on this server's wire?
    pub auth_required: bool,
    /// Events held on the quarantine ledger (from sensors below the
    /// trust threshold).
    pub quarantined_events: usize,
    /// Movement-history retention watermark (0 = never pruned).
    pub retention_watermark: u64,
    /// Archive chain coverage end (0 = no archive).
    pub archive_covered_to: u64,
    /// `Some(message)` when the archive chain could not be scanned
    /// (unreadable directory, gappy or corrupt segments). Never fold
    /// this into a healthy-looking `archive_covered_to: 0` — operators
    /// alert on it (`OPERATIONS.md` §8).
    pub archive_error: Option<String>,
    /// Archive segments whose payloads are cached in memory.
    pub archive_segments_loaded: usize,
    /// WAL `fsync`s issued since the store opened. Against
    /// `events_ingested`, this is the group-commit amortization ratio:
    /// far fewer fsyncs than batches means coalescing is working.
    pub wal_fsyncs: u64,
    /// Engine-level counters, per shard and aggregated.
    pub engine: EngineStatus,
    /// Connections currently being served.
    pub connections_active: usize,
    /// Connections accepted since the server started.
    pub connections_total: u64,
    /// Connections refused with `Busy` (over the limit).
    pub refused_busy: u64,
    /// Requests answered since the server started.
    pub requests_served: u64,
    /// Frames or bodies that failed to decode.
    pub protocol_errors: u64,
    /// Per-connection request counts for live connections, as
    /// `(connection id, requests served)` rows.
    pub per_connection: Vec<(u64, u64)>,
    /// Which role this server runs in.
    pub role: ServerRole,
    /// Deterministic digest of the engine's enforcement state (see
    /// `EngineReadView::state_digest`): equal digests at an equal
    /// watermark mean a primary and follower agree on every violation,
    /// entry total and retention mark.
    pub state_digest: u64,
    /// Replication health — `Some` only on a follower.
    pub replica: Option<ReplicaStatus>,
    /// Whole seconds since this server process started serving (the
    /// serving tier's chronon is one second).
    pub uptime_chronons: u64,
    /// The snapshot format version this store writes
    /// (`ltam_store::SNAPSHOT_VERSION`) — operators check it before a
    /// rolling upgrade, since a follower cannot bootstrap from a
    /// snapshot format newer than its own binary understands.
    pub snapshot_format_version: u16,
}

/// A follower's replication position and health (inside
/// [`ServerStatus::replica`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplicaStatus {
    /// The primary this follower tails.
    pub primary_addr: String,
    /// The published read watermark: monotone, never below the
    /// watermark floor the follower was (re)started with.
    pub watermark: u64,
    /// Events actually applied to the follower's engine (equals
    /// `watermark` once caught up to the floor).
    pub applied: u64,
    /// The primary's applied sequence as of the last successful poll —
    /// `primary_applied - watermark` is the staleness lag in events.
    pub primary_applied: u64,
    /// The primary's policy epoch as of the last successful poll.
    pub primary_epoch: u64,
    /// Where the replication loop currently stands.
    pub state: ReplicaState,
    /// The most recent replication error, if any (sticky until the
    /// next successful poll).
    pub last_error: Option<String>,
}

/// The replication loop's state machine, as surfaced to operators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicaState {
    /// Applying shipped records, still below the primary's position.
    #[default]
    CatchingUp,
    /// At the primary's position; polling for new records.
    Streaming,
    /// Cannot reach the primary; retrying.
    Disconnected,
    /// Parked: tailing cannot continue (epoch swap, compacted-away
    /// segment, or persistent corruption). Only a fresh bootstrap —
    /// with the current watermark as the floor — resumes reads.
    NeedsBootstrap,
}

// --- framing ---------------------------------------------------------------

/// Write one frame: header (payload length + CRC32 of the payload),
/// then the payload, as a single `write_all`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)
}

/// Read one frame's payload, verifying length cap and CRC. A short
/// read surfaces as [`FrameError::Io`]; an oversized announcement,
/// empty payload, or CRC mismatch as [`FrameError::Protocol`].
pub fn read_frame(r: &mut impl Read, max_bytes: u32) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    read_frame_after_header(r, header, max_bytes)
}

/// Finish reading a frame whose 8-byte header was already consumed
/// (the server reads the first byte separately to distinguish idle
/// timeouts from mid-frame stalls).
pub fn read_frame_after_header(
    r: &mut impl Read,
    header: [u8; FRAME_HEADER_LEN],
    max_bytes: u32,
) -> Result<Vec<u8>, FrameError> {
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > max_bytes {
        return Err(FrameError::Protocol(WireError::FrameTooLarge {
            len,
            max: max_bytes,
        }));
    }
    if len == 0 {
        return Err(FrameError::Protocol(WireError::EmptyPayload));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(FrameError::Protocol(WireError::CrcMismatch));
    }
    Ok(payload)
}

/// Incremental frame reassembly for a nonblocking byte stream.
///
/// The readiness-driven server cannot use [`read_frame`] (which blocks
/// until a whole frame arrives): a `read()` on a nonblocking socket
/// returns whatever bytes the kernel has — possibly half a header, or
/// three frames and a quarter. Feed every chunk to [`push`], then
/// drain complete frames with [`next_frame`]. Byte boundaries are
/// immaterial: any split of the same stream yields the same frames
/// (the serve property tests pin this).
///
/// A protocol error (oversized announcement, empty payload, CRC
/// mismatch) poisons the stream — framing is byte-positional, so there
/// is no way to resynchronize. Callers should answer the error and
/// close, exactly like the blocking reader's contract.
///
/// [`push`]: FrameAssembler::push
/// [`next_frame`]: FrameAssembler::next_frame
#[derive(Debug)]
pub struct FrameAssembler {
    max_bytes: u32,
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily, so draining many
    /// small frames from one chunk does not memmove per frame).
    start: usize,
}

impl FrameAssembler {
    /// An empty assembler refusing payloads over `max_bytes`.
    pub fn new(max_bytes: u32) -> FrameAssembler {
        FrameAssembler {
            max_bytes,
            buf: Vec::new(),
            start: 0,
        }
    }

    /// Append bytes read from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a frame (a partial frame
    /// in flight).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Is a frame currently arriving? (Some bytes buffered, but not a
    /// whole frame.) Distinguishes an *idle* peer from one *stalled
    /// mid-frame* — the server cuts the latter off much sooner.
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// Extract the next complete frame's payload, `Ok(None)` if more
    /// bytes are needed, or the protocol error that poisons the stream.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(avail[4..8].try_into().expect("4 bytes"));
        if len > self.max_bytes {
            return Err(WireError::FrameTooLarge {
                len,
                max: self.max_bytes,
            });
        }
        if len == 0 {
            return Err(WireError::EmptyPayload);
        }
        let total = FRAME_HEADER_LEN + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[FRAME_HEADER_LEN..total].to_vec();
        if crc32(&payload) != crc {
            return Err(WireError::CrcMismatch);
        }
        self.start += total;
        // Compact once the dead prefix dominates, so the buffer does
        // not grow without bound on a long-lived chatty connection.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(payload))
    }
}

// --- request encoding ------------------------------------------------------

/// Encode a request payload (frame it with [`write_frame`]).
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match request {
        Request::Ingest(events) => {
            out.push(KIND_INGEST);
            put_varint(&mut out, events.len() as u64);
            for e in events {
                encode_event(e, &mut out);
            }
        }
        Request::Check(event) => {
            out.push(KIND_CHECK);
            encode_event(event, &mut out);
        }
        Request::Query(query) => {
            out.push(KIND_QUERY);
            out.extend_from_slice(
                serde_json::to_string(query)
                    .expect("queries serialize")
                    .as_bytes(),
            );
        }
        Request::Repl(repl) => {
            out.push(KIND_REPL);
            out.extend_from_slice(
                serde_json::to_string(repl)
                    .expect("repl requests serialize")
                    .as_bytes(),
            );
        }
        Request::Metrics => out.push(KIND_METRICS),
        Request::Hello { token } => {
            out.push(KIND_HELLO);
            out.extend_from_slice(token.as_bytes());
        }
        Request::Admin(op) => {
            out.push(KIND_ADMIN);
            out.extend_from_slice(
                serde_json::to_string(op)
                    .expect("admin ops serialize")
                    .as_bytes(),
            );
        }
        Request::Situation(op) => {
            out.push(KIND_SITUATION);
            out.extend_from_slice(
                serde_json::to_string(op)
                    .expect("situation ops serialize")
                    .as_bytes(),
            );
        }
    }
    out
}

/// Decode a request payload. Total: arbitrary bytes yield a request or
/// a [`WireError`], never a panic.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let (&kind, body) = payload.split_first().ok_or(WireError::EmptyPayload)?;
    match kind {
        KIND_INGEST => {
            let mut at = 0usize;
            let count = get_varint(body, &mut at)?;
            // The smallest event (a Tick) is 2 bytes: any larger count
            // lies about the body and must not drive an allocation.
            if count > ((body.len() - at) / 2 + 1) as u64 {
                return Err(WireError::BadCount(count));
            }
            let mut events = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let (event, used) = decode_event(&body[at..])?;
                at += used;
                events.push(event);
            }
            if at != body.len() {
                return Err(WireError::TrailingBytes);
            }
            Ok(Request::Ingest(events))
        }
        KIND_CHECK => {
            let (event, used) = decode_event(body)?;
            if used != body.len() {
                return Err(WireError::TrailingBytes);
            }
            if !matches!(event, Event::Request { .. }) {
                return Err(WireError::NotARequest);
            }
            Ok(Request::Check(event))
        }
        KIND_QUERY => {
            let text = std::str::from_utf8(body).map_err(|e| WireError::BadJson(e.to_string()))?;
            let query =
                serde_json::from_str(text).map_err(|e| WireError::BadJson(e.to_string()))?;
            Ok(Request::Query(query))
        }
        KIND_REPL => {
            let text = std::str::from_utf8(body).map_err(|e| WireError::BadJson(e.to_string()))?;
            let repl = serde_json::from_str(text).map_err(|e| WireError::BadJson(e.to_string()))?;
            Ok(Request::Repl(repl))
        }
        KIND_METRICS => {
            if !body.is_empty() {
                return Err(WireError::TrailingBytes);
            }
            Ok(Request::Metrics)
        }
        KIND_HELLO => {
            let token = std::str::from_utf8(body)
                .map_err(|e| WireError::BadJson(e.to_string()))?
                .to_string();
            Ok(Request::Hello { token })
        }
        KIND_ADMIN => {
            let text = std::str::from_utf8(body).map_err(|e| WireError::BadJson(e.to_string()))?;
            let op = serde_json::from_str(text).map_err(|e| WireError::BadJson(e.to_string()))?;
            Ok(Request::Admin(op))
        }
        KIND_SITUATION => {
            let text = std::str::from_utf8(body).map_err(|e| WireError::BadJson(e.to_string()))?;
            let op = serde_json::from_str(text).map_err(|e| WireError::BadJson(e.to_string()))?;
            Ok(Request::Situation(op))
        }
        other => Err(WireError::BadKind(other)),
    }
}

// --- response encoding -----------------------------------------------------

/// Encode a response payload (frame it with [`write_frame`]).
pub fn encode_response(response: &Response) -> Vec<u8> {
    let json = serde_json::to_string(response).expect("responses serialize");
    let mut out = Vec::with_capacity(1 + json.len());
    out.push(KIND_RESPONSE);
    out.extend_from_slice(json.as_bytes());
    out
}

/// Decode a response payload. Total, like [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let (&kind, body) = payload.split_first().ok_or(WireError::EmptyPayload)?;
    if kind != KIND_RESPONSE {
        return Err(WireError::BadKind(kind));
    }
    let text = std::str::from_utf8(body).map_err(|e| WireError::BadJson(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| WireError::BadJson(e.to_string()))
}

// --- replication chunk encoding --------------------------------------------

/// Encode a shipped chunk: `[kind 0x06][varint meta_len][meta JSON]
/// [raw file bytes]` — the only binary *response* in the protocol,
/// because base64-ing megabytes of WAL through JSON would double the
/// bytes on the replication path for nothing.
pub fn encode_repl_chunk(chunk: &ReplChunk) -> Vec<u8> {
    let meta = serde_json::to_string(&chunk.meta).expect("chunk meta serializes");
    let mut out = Vec::with_capacity(1 + 10 + meta.len() + chunk.bytes.len());
    out.push(KIND_REPL_CHUNK);
    put_varint(&mut out, meta.len() as u64);
    out.extend_from_slice(meta.as_bytes());
    out.extend_from_slice(&chunk.bytes);
    out
}

/// Decode the reply to a replication request: a binary chunk (tag
/// `0x06`) or an ordinary JSON response (tag `0x04` — a manifest or a
/// refusal). Total, like every decoder here.
pub fn decode_repl_reply(payload: &[u8]) -> Result<ReplReply, WireError> {
    let (&kind, body) = payload.split_first().ok_or(WireError::EmptyPayload)?;
    match kind {
        KIND_REPL_CHUNK => {
            let mut at = 0usize;
            let meta_len = get_varint(body, &mut at)?;
            let end = (meta_len as usize)
                .checked_add(at)
                .filter(|&e| e <= body.len());
            let Some(end) = end else {
                return Err(WireError::BadJson(format!(
                    "chunk meta length {meta_len} exceeds the body"
                )));
            };
            let text = std::str::from_utf8(&body[at..end])
                .map_err(|e| WireError::BadJson(e.to_string()))?;
            let meta: ReplChunkMeta =
                serde_json::from_str(text).map_err(|e| WireError::BadJson(e.to_string()))?;
            Ok(ReplReply::Chunk(ReplChunk {
                meta,
                bytes: body[end..].to_vec(),
            }))
        }
        KIND_RESPONSE => decode_response(payload).map(|r| ReplReply::Other(Box::new(r))),
        other => Err(WireError::BadKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ingest(vec![]),
            Request::Ingest(vec![
                Event::Request {
                    time: Time(10),
                    subject: SubjectId(1),
                    location: LocationId(2),
                },
                Event::Tick { now: Time(99) },
            ]),
            Request::Check(Event::Request {
                time: Time(5),
                subject: SubjectId(0),
                location: LocationId(3),
            }),
            Request::Query(HistoryQuery::Whereabouts {
                subject: SubjectId(7),
                at: Time(42),
            }),
            Request::Query(HistoryQuery::Contacts {
                subject: SubjectId(7),
                window: Interval::lit(0, 100),
            }),
            Request::Query(HistoryQuery::Status),
            Request::Repl(ReplRequest::Manifest),
            Request::Repl(ReplRequest::Fetch {
                file: ReplFileId::WalSegment { first_seq: 512 },
                offset: 16,
                len: 4096,
            }),
            Request::Metrics,
            Request::Hello {
                token: "tok-1-deadbeef".into(),
            },
            Request::Admin(AdminOp::RevokeToken { id: TokenId(7) }),
            Request::Admin(AdminOp::SetTrust {
                subject: SubjectId(3),
                level: 2,
            }),
        ]
    }

    #[test]
    fn requests_round_trip_through_a_framed_stream() {
        let mut stream = Vec::new();
        for r in sample_requests() {
            write_frame(&mut stream, &encode_request(&r)).unwrap();
        }
        let mut cursor = Cursor::new(stream);
        for expected in sample_requests() {
            let payload = read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES).unwrap();
            assert_eq!(decode_request(&payload).unwrap(), expected);
        }
    }

    #[test]
    fn responses_round_trip() {
        let samples = vec![
            Response::Ingested {
                processed: 3,
                granted: 1,
                denied: 1,
                violations: vec![Violation::UnauthorizedEntry {
                    time: Time(9),
                    subject: SubjectId(4),
                    location: LocationId(1),
                }],
            },
            Response::Access { granted: true },
            Response::Whereabouts { location: None },
            Response::Metrics {
                text: "# TYPE store_wal_fsyncs_total counter\nstore_wal_fsyncs_total 7\n".into(),
            },
            Response::Present {
                rows: vec![(SubjectId(1), Interval::lit(3, 9))],
            },
            Response::Error {
                code: ErrorCode::Busy,
                message: "at the connection limit".into(),
                role: Some(ServerRole::Primary),
            },
            Response::Error {
                code: ErrorCode::NotPrimary,
                message: "read-only follower; writes go to 127.0.0.1:7000".into(),
                role: Some(ServerRole::Follower),
            },
            Response::Error {
                code: ErrorCode::Unauthenticated,
                message: "handshake required".into(),
                role: None,
            },
            Response::Welcome {
                token: TokenId(3),
                subject: SubjectId(8),
                scopes: vec![Scope::Query, Scope::Ingest { locations: None }],
            },
            Response::Quarantined { held: 4 },
            Response::ReplManifest {
                manifest: ReplManifest {
                    applied: 100,
                    policy_epoch: 2,
                    enforcement_epoch: 1,
                    retention_watermark: 50,
                    snapshot: Some(ReplFile {
                        file: ReplFileId::Snapshot { seq: 90, epoch: 2 },
                        len: 4096,
                    }),
                    archives: vec![ReplFile {
                        file: ReplFileId::Archive { from: 0, to: 40 },
                        len: 512,
                    }],
                    wal_segments: vec![0, 90],
                    epoch_marker: Some(ReplFile {
                        file: ReplFileId::EpochMarker,
                        len: 20,
                    }),
                },
            },
        ];
        for r in &samples {
            let mut bytes = Vec::new();
            write_frame(&mut bytes, &encode_response(r)).unwrap();
            let payload = read_frame(&mut Cursor::new(bytes), DEFAULT_MAX_FRAME_BYTES).unwrap();
            assert_eq!(&decode_response(&payload).unwrap(), r);
        }
    }

    #[test]
    fn oversized_and_empty_frames_are_protocol_errors() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &[0u8; 64]).unwrap();
        let err = read_frame(&mut Cursor::new(bytes), 16).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Protocol(WireError::FrameTooLarge { len: 64, max: 16 })
        ));
        let mut empty = Vec::new();
        write_frame(&mut empty, &[]).unwrap();
        let err = read_frame(&mut Cursor::new(empty), 16).unwrap_err();
        assert!(matches!(err, FrameError::Protocol(WireError::EmptyPayload)));
    }

    #[test]
    fn a_flipped_payload_bit_is_caught_by_the_crc() {
        let mut bytes = Vec::new();
        write_frame(
            &mut bytes,
            &encode_request(&Request::Query(HistoryQuery::Status)),
        )
        .unwrap();
        for bit in 0..8 {
            let mut copy = bytes.clone();
            let last = copy.len() - 1;
            copy[last] ^= 1 << bit;
            let err = read_frame(&mut Cursor::new(copy), DEFAULT_MAX_FRAME_BYTES).unwrap_err();
            assert!(matches!(err, FrameError::Protocol(WireError::CrcMismatch)));
        }
    }

    #[test]
    fn implausible_ingest_counts_do_not_allocate() {
        // A body claiming u64::MAX events with no event bytes.
        let mut payload = vec![KIND_INGEST];
        put_varint(&mut payload, u64::MAX);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::BadCount(_))
        ));
    }

    #[test]
    fn assembler_yields_frames_regardless_of_chunking() {
        let mut stream = Vec::new();
        for r in sample_requests() {
            write_frame(&mut stream, &encode_request(&r)).unwrap();
        }
        // Worst-case chunking: one byte at a time.
        let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME_BYTES);
        let mut decoded = Vec::new();
        for &b in &stream {
            asm.push(&[b]);
            while let Some(payload) = asm.next_frame().unwrap() {
                decoded.push(decode_request(&payload).unwrap());
            }
        }
        assert_eq!(decoded, sample_requests());
        assert!(!asm.mid_frame(), "stream fully consumed");
        // And the whole stream in one push.
        let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME_BYTES);
        asm.push(&stream);
        let mut decoded = Vec::new();
        while let Some(payload) = asm.next_frame().unwrap() {
            decoded.push(decode_request(&payload).unwrap());
        }
        assert_eq!(decoded, sample_requests());
    }

    #[test]
    fn assembler_surfaces_protocol_errors_without_panicking() {
        let mut asm = FrameAssembler::new(64);
        asm.push(&u32::MAX.to_le_bytes());
        asm.push(&0u32.to_le_bytes());
        assert!(matches!(
            asm.next_frame(),
            Err(WireError::FrameTooLarge { .. })
        ));
        let mut asm = FrameAssembler::new(64);
        let mut frame = Vec::new();
        write_frame(&mut frame, &[1, 2, 3]).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        asm.push(&frame);
        assert!(matches!(asm.next_frame(), Err(WireError::CrcMismatch)));
    }

    #[test]
    fn repl_chunks_round_trip_with_raw_bytes_intact() {
        let chunk = ReplChunk {
            meta: ReplChunkMeta {
                file: ReplFileId::WalSegment { first_seq: 7 },
                offset: 16,
                file_len: 160,
                sealed: false,
                applied: 42,
                policy_epoch: 1,
                enforcement_epoch: 1,
                retention_watermark: 9,
            },
            bytes: (0u8..=255).collect(),
        };
        let payload = encode_repl_chunk(&chunk);
        match decode_repl_reply(&payload).unwrap() {
            ReplReply::Chunk(got) => assert_eq!(got, chunk),
            other => panic!("expected a chunk, got {other:?}"),
        }
        // A JSON error response decodes through the same entry point.
        let err = Response::Error {
            code: ErrorCode::Gone,
            message: "segment compacted".into(),
            role: Some(ServerRole::Primary),
        };
        match decode_repl_reply(&encode_response(&err)).unwrap() {
            ReplReply::Other(got) => assert_eq!(*got, err),
            other => panic!("expected a response, got {other:?}"),
        }
    }

    #[test]
    fn truncated_repl_chunk_meta_is_a_decode_error_not_a_panic() {
        let chunk = ReplChunk {
            meta: ReplChunkMeta {
                file: ReplFileId::EpochMarker,
                offset: 0,
                file_len: 20,
                sealed: true,
                applied: 1,
                policy_epoch: 0,
                enforcement_epoch: 0,
                retention_watermark: 0,
            },
            bytes: vec![1, 2, 3],
        };
        let payload = encode_repl_chunk(&chunk);
        for cut in 1..payload.len().min(24) {
            let _ = decode_repl_reply(&payload[..cut]); // must not panic
        }
        // A meta length pointing past the body is refused.
        let mut bogus = vec![KIND_REPL_CHUNK];
        put_varint(&mut bogus, u64::MAX);
        assert!(matches!(
            decode_repl_reply(&bogus),
            Err(WireError::BadJson(_)) | Err(WireError::Codec(_))
        ));
    }

    #[test]
    fn metrics_request_refuses_a_body() {
        // A metrics request is its kind byte alone; any trailing bytes
        // are a protocol violation, not silently ignored.
        assert_eq!(decode_request(&[KIND_METRICS]), Ok(Request::Metrics));
        assert_eq!(
            decode_request(&[KIND_METRICS, 0x00]),
            Err(WireError::TrailingBytes)
        );
    }

    #[test]
    fn check_rejects_non_request_events() {
        let mut payload = vec![KIND_CHECK];
        encode_event(
            &Event::Enter {
                time: Time(1),
                subject: SubjectId(1),
                location: LocationId(1),
            },
            &mut payload,
        );
        assert_eq!(decode_request(&payload), Err(WireError::NotARequest));
    }
}
