//! # ltam-serve — the network serving tier for LTAM enforcement
//!
//! PRs 1–4 made the enforcement engine sharded, durable, and bounded;
//! every client still lived in-process. This crate is the deployment
//! shape the paper (and the ROADMAP's "millions of users") actually
//! implies: many untrusted sensors, turnstiles and admin consoles
//! reaching **one enforcement authority** over a network.
//!
//! * [`wire`] — the binary protocol: length-prefixed, CRC32-framed
//!   request/response messages whose hot path (event batches) reuses
//!   `ltam-store`'s WAL event codec byte for byte. Decoding is total —
//!   torn, truncated or bit-flipped frames produce errors, never
//!   panics, and the CRC makes a corrupted frame unable to pass as a
//!   different valid message.
//! * [`server`] — [`Server`]: an acceptor plus worker-per-connection
//!   threads over one shared [`DurableEngine`](ltam_store::DurableEngine)
//!   (writes funnel through the durable batch-ingest path; reads run
//!   concurrently), with a connection limit ([`ErrorCode::Busy`]
//!   refusals), idle timeouts, and graceful drain-then-snapshot
//!   shutdown.
//! * [`client`] — [`LtamClient`]: a blocking, reconnecting client with
//!   typed helpers for every RPC.
//! * [`loadgen`] — a closed-loop load generator (N client threads,
//!   latency percentiles) driving the `repro serve` drill, which
//!   verifies the served violation multiset against an in-process run
//!   of the same trace.
//! * [`replica`] — read replicas: [`bootstrap_follower`] copies the
//!   primary's newest snapshot + archive chain over the wire, and
//!   [`Server::start_follower`] tails the primary's WAL
//!   (resume-from-(segment, offset)), replaying verified batches
//!   through normal ingest and serving read-only queries at a
//!   monotone watermark. Writes at a follower are refused with
//!   [`ErrorCode::NotPrimary`]; an enforcement-epoch swap parks the
//!   follower for re-bootstrap rather than risking divergence.
//!
//! Since PR 9 the wire is **policy-governed**: a `Hello` handshake
//! maps a connection to an LTAM subject via a capability token
//! ([`ltam_core::capability`]), every frame kind is gated against the
//! live token registry (revocation and expiry bite on the very next
//! frame), admin RPCs ([`Request::Admin`]) edit policy durably over
//! the wire, and events from below-trust sensors are quarantined
//! rather than enforced. See `docs/OPERATIONS.md` §10.

#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod replica;
pub mod server;
pub mod wire;

pub use client::{ClientError, IngestReply, IngestSummary, LtamClient};
pub use loadgen::{drive, LoadConfig, LoadReport};
pub use replica::{bootstrap_follower, bootstrap_follower_as, ReplicaConfig};
pub use server::{Server, ServerConfig};
pub use wire::{
    ErrorCode, FrameError, HistoryQuery, ReplChunk, ReplChunkMeta, ReplManifest, ReplReply,
    ReplRequest, ReplicaState, ReplicaStatus, Request, Response, ServerRole, ServerStatus,
    WireError, DEFAULT_MAX_FRAME_BYTES,
};
