//! Closed-loop load generation: N client threads replay pre-partitioned
//! event streams against a server, each waiting for a whole window of
//! responses before sending the next, and report throughput and
//! latency.
//!
//! Closed-loop (rather than open-loop) because that is what the
//! serving tier's backpressure model assumes: at most
//! [`LoadConfig::pipeline`] requests in flight per connection, so a
//! slow engine slows the offered load instead of growing an unbounded
//! queue. Latency numbers are honest round-trip times under the
//! achieved throughput — per request at depth 1, per pipelined window
//! at depth > 1.
//!
//! The streams must be partitioned so each subject's events live in
//! exactly one stream (per-subject order is what enforcement
//! semantics require; cross-subject interleaving is free —
//! `ltam_sim::TraceWorld::client_streams` produces such partitions).

use crate::client::LtamClient;
use ltam_engine::batch::Event;
use std::time::{Duration, Instant};

/// Tunables for [`drive`].
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Events per ingest request.
    pub batch: usize,
    /// Issue a `Status` query every this many batches (0 disables):
    /// exercises the concurrent read path while writes are in flight.
    pub status_every: usize,
    /// Ingest requests sent back-to-back before reading responses
    /// (see [`LtamClient::ingest_pipelined`]). 1 = strict closed loop.
    /// Deeper pipelines give the server's group commit more batches to
    /// coalesce per fsync; latency is then recorded per *window* (the
    /// time from the window's first send to its last response), which
    /// is what each pipelined request actually waited.
    pub pipeline: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            batch: 256,
            status_every: 16,
            pipeline: 1,
        }
    }
}

/// One driver thread's accounting.
#[derive(Debug, Clone, Default)]
struct ThreadReport {
    requests: u64,
    events: u64,
    errors: u64,
    latencies_us: Vec<u64>,
}

/// What a [`drive`] run measured.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Client threads driven.
    pub clients: usize,
    /// Requests sent (ingest batches + status probes).
    pub requests: u64,
    /// Events delivered inside ingest requests.
    pub events: u64,
    /// Calls that returned any error (transport, protocol, server).
    pub errors: u64,
    /// Wall-clock time from first send to last response.
    pub elapsed: Duration,
    /// Every request's round-trip latency in microseconds, sorted.
    pub latencies_us: Vec<u64>,
}

impl LoadReport {
    /// Requests per second over the wall clock.
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() > 0.0 {
            self.requests as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        }
    }

    /// Events per second over the wall clock.
    pub fn events_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() > 0.0 {
            self.events as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        }
    }

    /// The `p`-th percentile round-trip latency in microseconds
    /// (`p` in `[0, 100]`; 0 with no samples).
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0 * (self.latencies_us.len() - 1) as f64).round();
        self.latencies_us[rank as usize]
    }
}

/// Drive one stream over one connection; returns the accounting.
fn drive_stream(addr: &str, stream: &[Event], config: LoadConfig) -> ThreadReport {
    let mut report = ThreadReport::default();
    let mut client = match LtamClient::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            report.errors += 1;
            return report;
        }
    };
    let depth = config.pipeline.max(1);
    let batches: Vec<&[Event]> = stream.chunks(config.batch.max(1)).collect();
    let mut sent = 0usize;
    for window in batches.chunks(depth) {
        let start = Instant::now();
        match client.ingest_pipelined(window) {
            Ok(summaries) => {
                for s in &summaries {
                    report.events += s.processed as u64;
                }
            }
            Err(_) => report.errors += 1,
        }
        let elapsed = start.elapsed().as_micros() as u64;
        for _ in window {
            report.latencies_us.push(elapsed);
            report.requests += 1;
        }
        sent += window.len();
        let probe_due = config.status_every > 0
            && sent / config.status_every > (sent - window.len()) / config.status_every;
        if probe_due {
            let start = Instant::now();
            if client.status().is_err() {
                report.errors += 1;
            }
            report.latencies_us.push(start.elapsed().as_micros() as u64);
            report.requests += 1;
        }
    }
    report
}

/// Replay `streams` against the server at `addr`, one client thread
/// per stream, and merge the accounting. Blocks until every stream is
/// fully delivered (or errored through).
pub fn drive(addr: &str, streams: &[Vec<Event>], config: LoadConfig) -> LoadReport {
    let start = Instant::now();
    let reports: Vec<ThreadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| scope.spawn(move || drive_stream(addr, stream, config)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut merged = LoadReport {
        clients: streams.len(),
        elapsed,
        ..LoadReport::default()
    };
    for r in reports {
        merged.requests += r.requests;
        merged.events += r.events;
        merged.errors += r.errors;
        merged.latencies_us.extend(r.latencies_us);
    }
    merged.latencies_us.sort_unstable();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_order_statistics() {
        let report = LoadReport {
            latencies_us: vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
            ..LoadReport::default()
        };
        assert_eq!(report.latency_percentile_us(0.0), 10);
        assert_eq!(report.latency_percentile_us(50.0), 60); // rank 4.5 → 5
        assert_eq!(report.latency_percentile_us(100.0), 100);
        assert_eq!(LoadReport::default().latency_percentile_us(50.0), 0);
    }
}
