//! A remote security console: the paper's hospital contact-tracing
//! scenario (§1) served over the network instead of in-process — an
//! `ltam-serve` server fronts the durable engine, and an operator's
//! console connects over loopback, streams the ward's movement trace,
//! and runs the SARS query remotely.
//!
//! ```sh
//! cargo run --example remote_console
//! ```

use ltam::core::model::{Authorization, EntryLimit};
use ltam::core::subject::SubjectId;
use ltam::engine::batch::{Event, PolicyCore};
use ltam::serve::{LtamClient, Server, ServerConfig};
use ltam::sim::grid_building;
use ltam::store::{DurableEngine, ScratchDir, StoreConfig};
use ltam::time::{Interval, Time};

fn main() {
    // A 3×3 hospital ward; the patient and the staff hold all-ward badges.
    let ward = grid_building(3, 3);
    let rooms: Vec<_> = ward.graph.locations().collect();
    let (patient, nurse, visitor) = (SubjectId(0), SubjectId(1), SubjectId(2));
    let mut core = PolicyCore::new(ward.model.clone());
    for s in [patient, nurse, visitor] {
        for &room in &rooms {
            core.add_authorization(
                Authorization::new(Interval::ALL, Interval::ALL, s, room, EntryLimit::Unbounded)
                    .unwrap(),
            );
        }
    }

    // The enforcement authority: a durable engine behind a TCP server.
    let dir = ScratchDir::new("remote-console");
    let (engine, _alerts) = DurableEngine::create(
        dir.path(),
        core,
        2,
        StoreConfig {
            fsync: false, // a demo store; production keeps the default
            ..StoreConfig::default()
        },
    )
    .expect("create store");
    let server =
        Server::start(engine, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    println!("enforcement authority listening on {addr}");

    // The ward's RFID feed, delivered remotely: the patient crosses the
    // ward, the nurse's round overlaps them in room[4] during [12, 20],
    // and the visitor never shares a room with the patient.
    let mut feed = LtamClient::connect(&addr).expect("sensor feed connects");
    let stay = |s, room, enter: u64, exit: u64| {
        vec![
            Event::Request {
                time: Time(enter),
                subject: s,
                location: room,
            },
            Event::Enter {
                time: Time(enter),
                subject: s,
                location: room,
            },
            Event::Exit {
                time: Time(exit),
                subject: s,
                location: room,
            },
        ]
    };
    let mut trace = Vec::new();
    trace.extend(stay(patient, rooms[0], 0, 8));
    trace.extend(stay(patient, rooms[4], 10, 20));
    trace.extend(stay(patient, rooms[8], 22, 30));
    trace.extend(stay(nurse, rooms[2], 2, 10));
    trace.extend(stay(nurse, rooms[4], 12, 24));
    trace.extend(stay(visitor, rooms[6], 5, 40));
    let summary = feed.ingest(&trace).expect("feed ingests");
    println!(
        "ingested {} events over the wire ({} admissions granted)",
        summary.processed, summary.granted
    );

    // The console is a *separate* connection: reads are served
    // concurrently with whatever the sensors keep streaming.
    let mut console = LtamClient::connect(&addr).expect("console connects");
    println!("\nconsole> CONTACTS OF patient DURING [0, 60]");
    let contacts = console
        .contacts(patient, Interval::lit(0, 60))
        .expect("remote contact tracing");
    for c in &contacts {
        println!(
            "  subject {} in room {} during {}",
            c.other, c.location, c.overlap
        );
    }
    assert_eq!(contacts.len(), 1, "exactly one exposure");
    assert_eq!(contacts[0].other, nurse);
    assert_eq!(contacts[0].overlap, Interval::lit(12, 20));

    println!("\nconsole> WHERE nurse AT 15");
    let at15 = console
        .whereabouts(nurse, Time(15))
        .expect("remote whereabouts");
    assert_eq!(at15, Some(rooms[4]));
    println!("  room {}", rooms[4]);

    let status = console.status().expect("remote status");
    println!(
        "\nconsole> STATUS: {} events durable, {} connections active, {} requests served",
        status.events_ingested, status.connections_active, status.requests_served
    );
    assert_eq!(status.events_ingested, trace.len() as u64);
    assert_eq!(status.connections_active, 2);

    let engine = server.shutdown().expect("drain and stop");
    println!(
        "server drained; store at {} holds {} events for the next shift",
        engine.dir().display(),
        engine.applied()
    );
}
