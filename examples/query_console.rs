//! An interactive console for the query language over a populated campus.
//!
//! ```sh
//! cargo run --example query_console            # scripted demo
//! cargo run --example query_console -- -i      # interactive REPL
//! ```

use ltam::core::model::{Authorization, EntryLimit};
use ltam::engine::engine::AccessControlEngine;
use ltam::graph::examples::ntu_campus;
use ltam::sim::{rng, run_population, Behavior, Walker};
use ltam::time::Interval;
use std::io::{BufRead, Write};

fn build_engine() -> AccessControlEngine {
    let ntu = ntu_campus();
    let world_graph = ltam::graph::EffectiveGraph::build(&ntu.model);
    let mut engine = AccessControlEngine::new(ntu.model);
    let names = ["Alice", "Bob", "Carol", "Dave"];
    let mut subjects = Vec::new();
    for n in names {
        subjects.push(engine.profiles_mut().add_user(n, "staff"));
    }
    // Mallory has no authorizations and wanders anyway.
    let mallory = engine.profiles_mut().add_user("Mallory", "visitor");
    for &s in &subjects {
        for l in world_graph.locations() {
            engine.add_authorization(
                Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded)
                    .unwrap(),
            );
        }
    }
    let mut walkers: Vec<Walker> = subjects
        .iter()
        .map(|&s| Walker::new(s, Behavior::Compliant { max_stay: 4 }))
        .collect();
    walkers.push(Walker::new(mallory, Behavior::Tailgater));
    let mut r = rng(99);
    run_population(&mut walkers, &world_graph, &mut engine, 150, &mut r);
    engine
}

fn main() {
    let engine = build_engine();
    // This console queries live state only, so it assumes the engine's
    // history is unbounded — no retention pruning has run. If it had, a
    // query below the watermark would refuse (EvalError::BeyondRetention)
    // instead of answering; tier-aware queries over pruned engines live
    // on `ltam_store::DurableEngine`.
    let watermarks = engine.watermarks();
    assert_eq!(
        watermarks.movements,
        ltam::time::Time::ZERO,
        "console assumes unpruned movement history"
    );
    assert_eq!(
        watermarks.violations,
        ltam::time::Time::ZERO,
        "console assumes an unpruned violation log"
    );
    let interactive = std::env::args().any(|a| a == "-i");
    println!(
        "{} movement events recorded, {} violations detected (history complete from t={})",
        engine.movements().len(),
        engine.violations().len(),
        watermarks.movements
    );
    println!("query forms: ACCESSIBLE FOR s | INACCESSIBLE FOR s | CAN s ENTER l AT t");
    println!("             WHERE s AT t | WHO IN l AT t | WHO IN l DURING [a,b]");
    println!("             CONTACTS OF s DURING [a,b] | VIOLATIONS [FOR s] [DURING [a,b]]");
    println!("             EARLIEST s TO l [FROM t]");

    if interactive {
        let stdin = std::io::stdin();
        loop {
            print!("ltam> ");
            std::io::stdout().flush().ok();
            let mut line = String::new();
            if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
                return;
            }
            let line = line.trim();
            if line.is_empty() || line.eq_ignore_ascii_case("quit") {
                return;
            }
            match engine.query(line) {
                Ok(result) => print!("{result}"),
                Err(e) => println!("error: {e}"),
            }
        }
    }

    // Scripted demo.
    for q in [
        "WHERE Alice AT 100",
        "WHO IN SCE.GO DURING [0, 150]",
        "CAN Bob ENTER CAIS AT 60",
        "CONTACTS OF Alice DURING [0, 150]",
        "VIOLATIONS FOR Mallory DURING [0, 20]",
        "INACCESSIBLE FOR Mallory",
        "EARLIEST Alice TO CAIS FROM 0",
    ] {
        let result = engine.query(q).unwrap();
        println!("\nltam> {q}");
        print!("{result}");
    }
}
