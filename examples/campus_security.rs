//! Campus security on the paper's NTU layout (Figures 1–2): authorization
//! rules, derivation on profile changes, conflict resolution, and live
//! enforcement with tailgating detection.
//!
//! ```sh
//! cargo run --example campus_security
//! ```

use ltam::core::conflict::ResolutionStrategy;
use ltam::core::model::{Authorization, EntryLimit};
use ltam::core::rules::{CountExpr, LocationOp, OpTuple, Rule, SubjectOp};
use ltam::engine::engine::AccessControlEngine;
use ltam::graph::examples::ntu_campus;
use ltam::time::{Interval, Time};

fn main() {
    let ntu = ntu_campus();
    let (cais, sce_go) = (ntu.cais, ntu.sce_go);
    let mut engine = AccessControlEngine::new(ntu.model);

    // --- people -------------------------------------------------------------
    let alice = engine.profiles_mut().add_user("Alice", "researcher");
    let bob = engine.profiles_mut().add_user("Bob", "professor");
    let carol = engine.profiles_mut().add_user("Carol", "professor");
    engine.profiles_mut().set_supervisor(alice, bob);

    // --- base authorization a1 (§4) ------------------------------------------
    let a1 = engine.add_authorization(
        Authorization::new(
            Interval::lit(5, 20),
            Interval::lit(15, 50),
            alice,
            cais,
            EntryLimit::Finite(2),
        )
        .unwrap(),
    );
    println!("a1 = ([5, 20], [15, 50], (Alice, CAIS), 2)");

    // --- rules: supervisor mirror + route coverage ----------------------------
    engine.add_rule(Rule {
        valid_from: Time(7),
        base: a1,
        ops: OpTuple {
            subject_op: SubjectOp::SupervisorOf,
            ..OpTuple::default()
        },
    });
    engine.add_rule(Rule {
        valid_from: Time(7),
        base: a1,
        ops: OpTuple {
            location_op: LocationOp::AllRouteFrom { source: sce_go },
            count: CountExpr::Unbounded,
            ..OpTuple::default()
        },
    });
    let report = engine.apply_rules();
    println!(
        "rule derivation: +{} authorizations (supervisor mirror + route coverage)",
        report.created.len()
    );

    // Alice's supervisor changes: Bob's derived grant is revoked, Carol's
    // appears — no administrator action needed.
    engine.profiles_mut().set_supervisor(alice, carol);
    let report = engine.apply_rules();
    println!(
        "supervisor change: +{} derived, -{} revoked",
        report.created.len(),
        report.revoked.len()
    );

    // --- conflicts -------------------------------------------------------------
    // An administrator adds an overlapping manual grant for Alice on CAIS.
    engine.add_authorization(
        Authorization::new(
            Interval::lit(18, 30),
            Interval::lit(18, 60),
            alice,
            cais,
            EntryLimit::Finite(1),
        )
        .unwrap(),
    );
    let conflicts = engine.conflicts();
    println!("conflicts detected: {}", conflicts.len());
    let resolution = engine.resolve_conflicts(ResolutionStrategy::Merge);
    println!(
        "merged into {} combined authorization(s)",
        resolution.merged_into.len()
    );

    // --- enforcement ------------------------------------------------------------
    let d = engine.request_enter(Time(10), alice, cais);
    println!("t=10 Alice requests CAIS: {d}");
    engine.observe_enter(Time(10), alice, cais);
    // Mallory slips in behind her.
    let mallory = engine.profiles_mut().add_user("Mallory", "visitor");
    engine.observe_enter(Time(10), mallory, cais);
    println!("query> VIOLATIONS");
    print!("{}", engine.query("VIOLATIONS").unwrap());

    println!("query> ACCESSIBLE FOR Alice");
    print!("{}", engine.query("ACCESSIBLE FOR Alice").unwrap());

    // --- planning & lockdown -----------------------------------------------
    println!("query> EARLIEST Alice TO CAIS FROM 0");
    print!("{}", engine.query("EARLIEST Alice TO CAIS FROM 0").unwrap());

    // An incident closes CAIS for everyone but security until t=200.
    engine.add_prohibition(ltam::core::Prohibition {
        subject: alice,
        location: cais,
        window: Interval::lit(0, 200),
    });
    println!("lockdown: CAIS prohibited for Alice during [0, 200]");
    println!("query> CAN Alice ENTER CAIS AT 50");
    print!("{}", engine.query("CAN Alice ENTER CAIS AT 50").unwrap());
    println!("query> EARLIEST Alice TO CAIS FROM 0");
    print!("{}", engine.query("EARLIEST Alice TO CAIS FROM 0").unwrap());

    // --- end-of-shift report --------------------------------------------------
    println!();
    print!("{}", ltam::engine::security_report(&engine));
}
