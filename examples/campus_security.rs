//! Campus security on the paper's NTU layout (Figures 1–2): authorization
//! rules, derivation on profile changes, conflict resolution, live
//! enforcement with tailgating detection — and a campus-wide situation
//! lockdown with a pinned exception for the security desk.
//!
//! This walkthrough is a drill: every step asserts the outcome it
//! narrates.
//!
//! ```sh
//! cargo run --example campus_security
//! ```

use ltam::core::conflict::ResolutionStrategy;
use ltam::core::decision::{Decision, DenyReason};
use ltam::core::model::{Authorization, EntryLimit};
use ltam::core::rules::{CountExpr, LocationOp, OpTuple, Rule, SubjectOp};
use ltam::engine::engine::AccessControlEngine;
use ltam::graph::examples::ntu_campus;
use ltam::situate::{SituationMode, SituationOp};
use ltam::time::{Interval, Time};

fn main() {
    let ntu = ntu_campus();
    let (cais, sce_go) = (ntu.cais, ntu.sce_go);
    let mut engine = AccessControlEngine::new(ntu.model);

    // --- people -------------------------------------------------------------
    let alice = engine.profiles_mut().add_user("Alice", "researcher");
    let bob = engine.profiles_mut().add_user("Bob", "professor");
    let carol = engine.profiles_mut().add_user("Carol", "professor");
    engine.profiles_mut().set_supervisor(alice, bob);

    // --- base authorization a1 (§4) ------------------------------------------
    let a1 = engine.add_authorization(
        Authorization::new(
            Interval::lit(5, 20),
            Interval::lit(15, 50),
            alice,
            cais,
            EntryLimit::Finite(2),
        )
        .unwrap(),
    );
    println!("a1 = ([5, 20], [15, 50], (Alice, CAIS), 2)");

    // --- rules: supervisor mirror + route coverage ----------------------------
    engine.add_rule(Rule {
        valid_from: Time(7),
        base: a1,
        ops: OpTuple {
            subject_op: SubjectOp::SupervisorOf,
            ..OpTuple::default()
        },
    });
    engine.add_rule(Rule {
        valid_from: Time(7),
        base: a1,
        ops: OpTuple {
            location_op: LocationOp::AllRouteFrom { source: sce_go },
            count: CountExpr::Unbounded,
            ..OpTuple::default()
        },
    });
    let report = engine.apply_rules();
    println!(
        "rule derivation: +{} authorizations (supervisor mirror + route coverage)",
        report.created.len()
    );
    assert!(
        report.created.len() >= 2,
        "the mirror and at least one route grant must derive: {report:?}"
    );
    assert!(report.revoked.is_empty(), "nothing to revoke yet");

    // Alice's supervisor changes: Bob's derived grant is revoked, Carol's
    // appears — no administrator action needed.
    engine.profiles_mut().set_supervisor(alice, carol);
    let report = engine.apply_rules();
    println!(
        "supervisor change: +{} derived, -{} revoked",
        report.created.len(),
        report.revoked.len()
    );
    assert_eq!(
        (report.created.len(), report.revoked.len()),
        (1, 1),
        "exactly the supervisor mirror moves from Bob to Carol"
    );

    // --- conflicts -------------------------------------------------------------
    // An administrator adds an overlapping manual grant for Alice on CAIS.
    engine.add_authorization(
        Authorization::new(
            Interval::lit(18, 30),
            Interval::lit(18, 60),
            alice,
            cais,
            EntryLimit::Finite(1),
        )
        .unwrap(),
    );
    let conflicts = engine.conflicts();
    println!("conflicts detected: {}", conflicts.len());
    assert!(
        !conflicts.is_empty(),
        "the overlapping manual grant must surface as a conflict"
    );
    let resolution = engine.resolve_conflicts(ResolutionStrategy::Merge);
    println!(
        "merged into {} combined authorization(s)",
        resolution.merged_into.len()
    );
    assert!(
        engine.conflicts().is_empty(),
        "merge resolution reaches quiescence"
    );

    // --- enforcement ------------------------------------------------------------
    let d = engine.request_enter(Time(10), alice, cais);
    println!("t=10 Alice requests CAIS: {d}");
    assert!(d.is_granted(), "a1 admits Alice at t=10");
    let v = engine.observe_enter(Time(10), alice, cais);
    assert!(v.is_none(), "a granted entry raises no violation: {v:?}");
    // Mallory slips in behind her.
    let mallory = engine.profiles_mut().add_user("Mallory", "visitor");
    let v = engine.observe_enter(Time(10), mallory, cais);
    assert!(v.is_some(), "tailgating must raise a violation");
    println!("query> VIOLATIONS");
    let violations = engine.query("VIOLATIONS").unwrap().to_string();
    print!("{violations}");
    assert!(
        violations.contains("Mallory"),
        "the violation names the tailgater: {violations:?}"
    );

    println!("query> ACCESSIBLE FOR Alice");
    let accessible = engine.query("ACCESSIBLE FOR Alice").unwrap().to_string();
    print!("{accessible}");
    assert!(
        accessible.contains("CAIS"),
        "CAIS is reachable via the derived route grants: {accessible:?}"
    );

    // --- situation: campus-wide lockdown --------------------------------------
    // An active incident locks the campus down. Every grant is refused
    // except the security desk's pinned authorization; clearing the
    // declaration restores the base decisions untouched.
    let guard = engine.profiles_mut().add_user("Guard", "security");
    let guard_auth = engine.add_authorization(
        Authorization::new(
            Interval::ALL,
            Interval::ALL,
            guard,
            sce_go,
            EntryLimit::Unbounded,
        )
        .unwrap(),
    );
    engine.apply_situation(&SituationOp::Pin(guard_auth));
    engine.apply_situation(&SituationOp::Declare(SituationMode::Lockdown));
    let d = engine.request_enter(Time(12), alice, cais);
    println!("situation lockdown: Alice requests CAIS at t=12: {d}");
    assert_eq!(
        d,
        Decision::Denied {
            reason: DenyReason::Lockdown
        },
        "lockdown voids Alice's unpinned authorization"
    );
    let d = engine.request_enter(Time(12), guard, sce_go);
    println!("situation lockdown: Guard requests SCE.GO at t=12: {d}");
    assert!(d.is_granted(), "the pinned security-desk grant survives");
    engine.apply_situation(&SituationOp::Declare(SituationMode::Normal));
    assert!(
        engine.request_enter(Time(13), alice, cais).is_granted(),
        "clearing the declaration restores the base decision"
    );
    println!("declaration cleared: Alice's access is restored");

    // --- planning & prohibition ------------------------------------------------
    println!("query> EARLIEST Alice TO CAIS FROM 0");
    let earliest = engine
        .query("EARLIEST Alice TO CAIS FROM 0")
        .unwrap()
        .to_string();
    print!("{earliest}");
    assert!(
        earliest.contains("enter CAIS"),
        "a route into CAIS exists before the prohibition: {earliest:?}"
    );

    // An incident closes CAIS for Alice until t=200.
    engine.add_prohibition(ltam::core::Prohibition {
        subject: alice,
        location: cais,
        window: Interval::lit(0, 200),
    });
    println!("prohibition: CAIS closed to Alice during [0, 200]");
    println!("query> CAN Alice ENTER CAIS AT 50");
    let can = engine
        .query("CAN Alice ENTER CAIS AT 50")
        .unwrap()
        .to_string();
    print!("{can}");
    assert!(can.starts_with("NO"), "denial takes precedence: {can:?}");
    println!("query> EARLIEST Alice TO CAIS FROM 0");
    let earliest = engine
        .query("EARLIEST Alice TO CAIS FROM 0")
        .unwrap()
        .to_string();
    print!("{earliest}");
    assert!(
        earliest.contains("unreachable"),
        "the planner respects the prohibition: {earliest:?}"
    );

    // --- end-of-shift report --------------------------------------------------
    println!();
    let report = ltam::engine::security_report(&engine).to_string();
    print!("{report}");
    assert!(
        report.contains("Mallory"),
        "the report names the top violator: {report:?}"
    );
    println!("\ncampus drill: all assertions hold");
}
