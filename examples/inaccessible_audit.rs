//! Security-shortfall auditing with Algorithm 1 (§6).
//!
//! The paper's warning: "to ensure that a subject can visit a location, one
//! should check that the location is not inaccessible instead of just
//! defining the authorizations for that location." This audit demonstrates
//! exactly that failure — a contractor is granted the server room but every
//! corridor to it is time-blocked — and shows the fix.
//!
//! ```sh
//! cargo run --example inaccessible_audit
//! ```

use ltam::core::inaccessible::{
    find_inaccessible, find_inaccessible_multilevel, locally_inaccessible, AuthsByLocation,
};
use ltam::core::model::{Authorization, EntryLimit};
use ltam::core::subject::SubjectId;
use ltam::graph::{EffectiveGraph, LocationModel};
use ltam::time::Interval;

fn main() {
    // A small data centre: gate -> corridor -> [server room, ups room].
    let mut model = LocationModel::new("DataCentre");
    let gate = model.add_primitive(model.root(), "Gate").unwrap();
    let wing = model.add_composite(model.root(), "Wing").unwrap();
    let corridor = model.add_primitive(wing, "Corridor").unwrap();
    let servers = model.add_primitive(wing, "ServerRoom").unwrap();
    let ups = model.add_primitive(wing, "UpsRoom").unwrap();
    model.add_edge(corridor, servers).unwrap();
    model.add_edge(corridor, ups).unwrap();
    model.set_entry(corridor).unwrap(); // entry of the wing's graph
    model.add_edge(gate, wing).unwrap();
    model.set_entry(gate).unwrap(); // the only way in from outside
    model.validate().unwrap();
    let graph = EffectiveGraph::build(&model);
    let contractor = SubjectId(0);

    let auth = |l, entry: (u64, u64), exit: (u64, u64)| {
        Authorization::new(
            Interval::lit(entry.0, entry.1),
            Interval::lit(exit.0, exit.1),
            contractor,
            l,
            EntryLimit::Unbounded,
        )
        .unwrap()
    };

    // The administrator grants the server room generously (08:00–18:00 as
    // chronons 8–18) — but the corridor window closes before the gate's
    // departure window opens. The server-room grant is worthless.
    let mut auths = AuthsByLocation::new();
    auths.insert(gate, vec![auth(gate, (9, 18), (10, 18))]);
    auths.insert(corridor, vec![auth(corridor, (4, 8), (5, 9))]);
    auths.insert(servers, vec![auth(servers, (8, 18), (8, 18))]);
    auths.insert(ups, vec![auth(ups, (8, 18), (8, 18))]);

    println!("audit 1: server room granted, corridor closes too early");
    let report = find_inaccessible(&graph, &auths);
    for l in &report.inaccessible {
        println!("  INACCESSIBLE: {}", model.name(*l));
    }
    assert!(report.is_inaccessible(servers));

    // Per-composite screening (Lemma 1): anything locally unreachable
    // inside the wing is globally unreachable, whatever the campus does.
    let local = locally_inaccessible(&model, &graph, &auths);
    for (c, locs) in &local {
        for l in locs {
            println!(
                "  Lemma 1: {} unreachable within {}",
                model.name(*l),
                model.name(*c)
            );
        }
    }

    // The fix: align the corridor window with the gate's departure times.
    println!("\naudit 2: corridor window aligned with the gate");
    auths.insert(corridor, vec![auth(corridor, (4, 16), (5, 17))]);
    let report = find_inaccessible_multilevel(&model, &graph, &auths);
    if report.primitives.is_empty() {
        println!("  all locations reachable; no shortfall");
    }
    for l in &report.primitives {
        println!("  still inaccessible: {}", model.name(*l));
    }
    assert!(report.primitives.is_empty());
    assert!(report.composites.is_empty());
}
