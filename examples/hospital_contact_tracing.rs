//! The paper's SARS motivation (§1): track hospital movements via a
//! simulated RFID pipeline, trace everyone who was co-located with a
//! diagnosed patient, produce the quarantine list — and, once the
//! diagnosis lands, declare an emergency so the outside specialist can
//! reach the ward without a standing authorization.
//!
//! This walkthrough is a drill: every step asserts the outcome it
//! narrates, so it doubles as an end-to-end check of the pipeline,
//! the history queries, and the situation overlay.
//!
//! ```sh
//! cargo run --example hospital_contact_tracing
//! ```

use ltam::core::decision::Decision;
use ltam::core::model::{Authorization, EntryLimit};
use ltam::engine::engine::AccessControlEngine;
use ltam::sim::rfid::{grid_floor_plan, noisy_walk, TrackingPipeline};
use ltam::sim::{grid_building, rng, sars_contact_tracing};
use ltam::situate::{IncidentId, SituationMode, SituationOp};
use ltam::time::{Interval, Time};

fn main() {
    // --- part 1: the positioning pipeline, end to end -----------------------
    // A 4×4 ward; each room is a 10×10 m square; tags emit noisy readings.
    let world = grid_building(4, 4);
    let plan = grid_floor_plan(&world, 4, 4, 10.0);
    let mut engine = AccessControlEngine::new(world.model.clone());
    let patient = engine.profiles_mut().add_user("Patient", "patient");
    let nurse = engine.profiles_mut().add_user("Nurse", "staff");
    for l in world.graph.locations() {
        for s in [patient, nurse] {
            engine.add_authorization(
                Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded)
                    .unwrap(),
            );
        }
    }

    let mut pipeline = TrackingPipeline::new(&plan, 8);
    let mut r = rng(2026);
    // The patient crosses the ward; the nurse's round crosses the patient's
    // path in room (2,1) and both end their shift in the bay at (2,2).
    let patient_path = [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)];
    let nurse_path = [(3, 0), (2, 0), (2, 1), (2, 2)];
    let mut readings = noisy_walk(patient, &patient_path, 10.0, 6, 1.5, Time(0), &mut r);
    readings.extend(noisy_walk(
        nurse,
        &nurse_path,
        10.0,
        6,
        1.5,
        Time(2),
        &mut r,
    ));
    readings.sort_by_key(|rd| rd.time);
    let total = readings.len();
    for reading in readings {
        pipeline.feed(reading, &mut engine);
    }
    println!(
        "pipeline: {total} tag readings, {} resolved to rooms, {} dropped",
        pipeline.resolved, pipeline.dropped
    );
    assert_eq!(
        pipeline.resolved + pipeline.dropped,
        total as u64,
        "every reading is either resolved or dropped"
    );
    assert!(
        pipeline.resolved > 0,
        "the seeded walk must resolve readings"
    );
    println!("movement events recorded: {}", engine.movements().len());
    assert!(
        engine.movements().len() >= 2,
        "both walks must leave movement history"
    );

    // Contact tracing over [0, 60] needs the whole shift's movement
    // history in live state. This example never prunes, so that holds;
    // assert it, because under a retention policy the same query would
    // refuse once t=0 fell behind the watermark, and the tier-aware
    // `DurableEngine::contacts` (which merges the archive) would be the
    // right entry point instead.
    assert!(
        engine.movements().covers(Time(0)),
        "contact tracing below the retention watermark requires the archive tier"
    );

    // The patient is diagnosed at t=40; trace contacts over the whole shift.
    println!("\nquery> CONTACTS OF Patient DURING [0, 60]");
    let contacts = engine
        .query("CONTACTS OF Patient DURING [0, 60]")
        .unwrap()
        .to_string();
    print!("{contacts}");
    assert!(
        contacts.contains("Nurse"),
        "the nurse crossed the patient's path and must appear: {contacts:?}"
    );

    println!("query> WHERE Nurse AT 20");
    let whereabouts = engine.query("WHERE Nurse AT 20").unwrap().to_string();
    print!("{whereabouts}");
    assert!(
        !whereabouts.trim().is_empty(),
        "the nurse was somewhere at t=20"
    );

    // --- part 2: the emergency declaration -----------------------------------
    // An outside infectious-disease specialist has no authorization in
    // this ward. The diagnosis opens incident 40; while it is live,
    // their denial is overridden — flagged with the incident — and the
    // declaration lapses on its own at t=80.
    let specialist = engine.profiles_mut().add_user("Specialist", "external");
    let ward = world.graph.locations().next().expect("the ward has rooms");
    assert!(
        !engine
            .request_enter(Time(41), specialist, ward)
            .is_granted(),
        "no standing authorization before the declaration"
    );
    engine.apply_situation(&SituationOp::AddResponder(specialist));
    engine.apply_situation(&SituationOp::Declare(SituationMode::Emergency {
        incident: IncidentId(40),
        until: Time(80),
    }));
    let d = engine.request_enter(Time(42), specialist, ward);
    assert_eq!(
        d,
        Decision::GrantedOverride { incident: 40 },
        "a responder's denial is overridden under the live emergency"
    );
    println!("\nemergency (incident 40, until t=80): specialist at t=42 -> {d}");
    let d = engine.request_enter(Time(81), specialist, ward);
    assert!(
        !d.is_granted(),
        "the declaration auto-expires on the event clock"
    );
    println!("after auto-expiry: specialist at t=81 -> {d}");

    // --- part 3: the scenario at scale ---------------------------------------
    println!("\nward-scale simulation (deterministic):");
    for staff in [4usize, 8, 16] {
        let out = sars_contact_tracing(staff, 150, 7);
        println!(
            "  {} staff on shift -> {} in quarantine ({} co-location records)",
            out.staff,
            out.quarantine.len(),
            out.contact_records
        );
        assert!(
            !out.quarantine.is_empty() && out.contact_records > 0,
            "a ward shift always produces co-locations"
        );
        assert!(
            out.quarantine.len() <= out.staff,
            "quarantine is drawn from the shift roster"
        );
    }
    println!("\nhospital drill: all assertions hold");
}
