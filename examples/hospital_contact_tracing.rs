//! The paper's SARS motivation (§1): track hospital movements via a
//! simulated RFID pipeline, then trace everyone who was co-located with a
//! diagnosed patient and produce the quarantine list.
//!
//! ```sh
//! cargo run --example hospital_contact_tracing
//! ```

use ltam::core::model::{Authorization, EntryLimit};
use ltam::engine::engine::AccessControlEngine;
use ltam::sim::rfid::{grid_floor_plan, noisy_walk, TrackingPipeline};
use ltam::sim::{grid_building, rng, sars_contact_tracing};
use ltam::time::{Interval, Time};

fn main() {
    // --- part 1: the positioning pipeline, end to end -----------------------
    // A 4×4 ward; each room is a 10×10 m square; tags emit noisy readings.
    let world = grid_building(4, 4);
    let plan = grid_floor_plan(&world, 4, 4, 10.0);
    let mut engine = AccessControlEngine::new(world.model.clone());
    let patient = engine.profiles_mut().add_user("Patient", "patient");
    let nurse = engine.profiles_mut().add_user("Nurse", "staff");
    for l in world.graph.locations() {
        for s in [patient, nurse] {
            engine.add_authorization(
                Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded)
                    .unwrap(),
            );
        }
    }

    let mut pipeline = TrackingPipeline::new(&plan, 8);
    let mut r = rng(2026);
    // The patient crosses the ward; the nurse's round crosses the patient's
    // path in room (2,1) and both end their shift in the bay at (2,2).
    let patient_path = [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)];
    let nurse_path = [(3, 0), (2, 0), (2, 1), (2, 2)];
    let mut readings = noisy_walk(patient, &patient_path, 10.0, 6, 1.5, Time(0), &mut r);
    readings.extend(noisy_walk(
        nurse,
        &nurse_path,
        10.0,
        6,
        1.5,
        Time(2),
        &mut r,
    ));
    readings.sort_by_key(|rd| rd.time);
    let total = readings.len();
    for reading in readings {
        pipeline.feed(reading, &mut engine);
    }
    println!(
        "pipeline: {total} tag readings, {} resolved to rooms, {} dropped",
        pipeline.resolved, pipeline.dropped
    );
    println!("movement events recorded: {}", engine.movements().len());

    // Contact tracing over [0, 60] needs the whole shift's movement
    // history in live state. This example never prunes, so that holds;
    // assert it, because under a retention policy the same query would
    // refuse once t=0 fell behind the watermark, and the tier-aware
    // `DurableEngine::contacts` (which merges the archive) would be the
    // right entry point instead.
    assert!(
        engine.movements().covers(Time(0)),
        "contact tracing below the retention watermark requires the archive tier"
    );

    // The patient is diagnosed at t=40; trace contacts over the whole shift.
    println!("\nquery> CONTACTS OF Patient DURING [0, 60]");
    print!(
        "{}",
        engine.query("CONTACTS OF Patient DURING [0, 60]").unwrap()
    );

    println!("query> WHERE Nurse AT 20");
    print!("{}", engine.query("WHERE Nurse AT 20").unwrap());

    // --- part 2: the scenario at scale ---------------------------------------
    println!("\nward-scale simulation (deterministic):");
    for staff in [4usize, 8, 16] {
        let out = sars_contact_tracing(staff, 150, 7);
        println!(
            "  {} staff on shift -> {} in quarantine ({} co-location records)",
            out.staff,
            out.quarantine.len(),
            out.contact_records
        );
    }
}
