//! Durable enforcement surviving a crash: run a campus scenario through
//! the WAL-backed engine, kill it mid-stream (tearing the last log
//! record, as a power cut would), recover, finish the scenario, and show
//! that the violation report is identical to an uninterrupted run.
//!
//! ```sh
//! cargo run --example durable_restart
//! ```

use ltam::engine::batch::apply_to_engine;
use ltam::sim::{multi_shard_trace, TraceConfig};
use ltam::store::{DurableEngine, ScratchDir, StoreConfig};

fn main() {
    // A campus day: 64 badge holders (plus some tailgaters and
    // overstayers) generating 6,000 sensor events over a grid building.
    let trace = multi_shard_trace(&TraceConfig {
        subjects: 64,
        events: 6_000,
        ..TraceConfig::default()
    });
    let n = trace.events.len();
    println!("campus scenario: {} subjects, {n} sensor events", 64);

    // Reference: the whole day through one in-memory engine.
    let mut reference = trace.build_engine();
    for e in &trace.events {
        apply_to_engine(&mut reference, e);
    }
    let expected: Vec<_> = reference.violations().to_vec();
    println!("uninterrupted run detects {} violations", expected.len());

    // The same day through a durable engine — with a crash in the middle.
    let dir = ScratchDir::new("example-restart");
    let config = StoreConfig {
        segment_bytes: 64 * 1024,
        snapshot_every: 2_000, // snapshot every 2k events
        fsync: true,
        retention: None,
    };
    let crash_at = n / 2;
    {
        let (mut engine, _alerts) =
            DurableEngine::create(dir.path(), trace.build_policy_core(), 4, config)
                .expect("create store");
        for chunk in trace.events[..crash_at].chunks(256) {
            engine.ingest(chunk).expect("durable ingest");
        }
        println!(
            "durable run: ingested {} events (snapshots every 2000), then... power cut!",
            crash_at
        );
    } // engine dropped: the "crash"

    // The power cut tears the last WAL record mid-write.
    let segments = ltam::store::Wal::segment_files(dir.path()).expect("list store");
    let last = segments.last().expect("a WAL segment exists");
    let len = std::fs::metadata(last).expect("segment metadata").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(last)
        .and_then(|f| f.set_len(len - 4))
        .expect("tear the last record");

    // Recovery: latest snapshot + WAL-tail replay; the torn record is
    // truncated and its event simply re-ingested with the rest of the day.
    let (mut engine, _alerts, report) =
        DurableEngine::open(dir.path(), config).expect("recover store");
    println!(
        "recovery: snapshot @ {} + {} replayed events ({} bytes of torn tail truncated)",
        report.snapshot_seq, report.replayed, report.truncated_bytes
    );
    let resumed = engine.applied() as usize;
    println!(
        "resuming the day at event {resumed} ({} events to go)",
        n - resumed
    );
    engine
        .ingest(&trace.events[resumed..])
        .expect("finish the day");

    // Same violation report? Compare as multisets: detection order across
    // shards is deployment-dependent, the set of violations is not.
    let expected = ltam_bench::violation_multiset(expected);
    let recovered = ltam_bench::violation_multiset(engine.engine().violations());
    assert_eq!(
        expected, recovered,
        "recovered violation report diverges from the uninterrupted run"
    );
    println!(
        "violation report after crash + recovery matches the uninterrupted run: {} violations ✓",
        recovered.len()
    );
}
