//! Quickstart: model a tiny office, authorize a visitor, enforce a visit.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ltam::core::model::{Authorization, EntryLimit};
use ltam::engine::engine::AccessControlEngine;
use ltam::graph::LocationModel;
use ltam::time::{Interval, Time};

fn main() {
    // 1. The location layout: lobby – office – lab, lobby is the entry.
    let mut model = LocationModel::new("Office");
    let lobby = model.add_primitive(model.root(), "Lobby").unwrap();
    let office = model.add_primitive(model.root(), "Office.Room").unwrap();
    let lab = model.add_primitive(model.root(), "Lab").unwrap();
    model.add_edge(lobby, office).unwrap();
    model.add_edge(office, lab).unwrap();
    model.set_entry(lobby).unwrap();
    model.validate().unwrap();

    // 2. The enforcement engine (Figure 3's architecture in one value).
    let mut engine = AccessControlEngine::new(model);
    let visitor = engine.profiles_mut().add_user("Visitor", "guest");

    // 3. A location-temporal authorization (Definition 4): the visitor may
    //    enter the lobby any time, and the office once during [10, 40],
    //    leaving during [15, 60].
    engine.add_authorization(
        Authorization::new(
            Interval::ALL,
            Interval::ALL,
            visitor,
            lobby,
            EntryLimit::Unbounded,
        )
        .unwrap(),
    );
    engine.add_authorization(
        Authorization::new(
            Interval::lit(10, 40),
            Interval::lit(15, 60),
            visitor,
            office,
            EntryLimit::Finite(1),
        )
        .unwrap(),
    );

    // 4. The visit: request, enter, leave — all monitored.
    let d = engine.request_enter(Time(5), visitor, lobby);
    println!("t=5  request lobby:  {d}");
    engine.observe_enter(Time(5), visitor, lobby);
    engine.observe_exit(Time(12), visitor, lobby);

    let d = engine.request_enter(Time(12), visitor, office);
    println!("t=12 request office: {d}");
    engine.observe_enter(Time(12), visitor, office);
    engine.observe_exit(Time(20), visitor, office);

    // A second office entry exceeds the entry count.
    let d = engine.request_enter(Time(25), visitor, office);
    println!("t=25 request office: {d}");

    // 5. Analysis: the lab has no authorization, so it is inaccessible.
    println!(
        "inaccessible for Visitor: {:?}",
        engine
            .inaccessible_for(visitor)
            .inaccessible
            .iter()
            .map(|&l| engine.model().name(l).to_string())
            .collect::<Vec<_>>()
    );
    assert!(engine.inaccessible_for(visitor).is_inaccessible(lab));

    // 6. Ask the query engine.
    println!("query> ACCESSIBLE FOR Visitor");
    print!("{}", engine.query("ACCESSIBLE FOR Visitor").unwrap());
    println!("query> VIOLATIONS");
    print!("{}", engine.query("VIOLATIONS").unwrap());
}
