//! Vendored minimal stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! property the engine relies on and `std::sync::mpsc` lacks: `Sender` is
//! `Sync`, so an engine holding one can live inside an `Arc<RwLock<_>>`
//! shared across sensor threads.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded channel. Clone freely; `Sync`.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            match state.items.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Drain everything currently queued without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_and_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observable() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn senders_are_sync() {
            fn assert_sync<T: Sync>() {}
            assert_sync::<Sender<u64>>();
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let h = thread::spawn(move || tx2.send(42).unwrap());
            h.join().unwrap();
            tx.send(7).unwrap();
            let mut got: Vec<u64> = rx.try_iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![7, 42]);
        }
    }
}
