//! Vendored minimal stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (the `to_value`/`from_value` pair) for structs and enums. Because
//! the offline build has no `syn`/`quote`, the derive input is parsed by
//! hand from the raw `TokenStream`; the subset handled is exactly what the
//! workspace uses:
//!
//! * structs with named fields, tuple structs (newtype and wider), unit
//!   structs — no generics;
//! * enums with unit, newtype, tuple, and struct variants, serialized in
//!   serde's externally-tagged shape;
//! * container attributes `#[serde(transparent)]` and
//!   `#[serde(try_from = "T", into = "T")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item).parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item).parse().unwrap()
}

// ---------------------------------------------------------------------------
// A tiny derive-input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    try_from: Option<String>,
    into: Option<String>,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let attrs = parse_outer_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, found {other}"),
    };
    pos += 1;

    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other}"),
    };
    pos += 1;

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic types are not supported (type {name})");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("serde derive: cannot derive for {other} {name}"),
    };

    Item { name, attrs, shape }
}

/// Consume `#[...]` attribute groups, extracting `#[serde(...)]` contents.
fn parse_outer_attrs(tokens: &[TokenTree], pos: &mut usize) -> ContainerAttrs {
    let mut attrs = ContainerAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*pos + 1] else {
            panic!("serde derive: malformed attribute");
        };
        parse_serde_attr(g.stream(), &mut attrs);
        *pos += 2;
    }
    attrs
}

fn parse_serde_attr(stream: TokenStream, attrs: &mut ContainerAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            TokenTree::Ident(id) => {
                let key = id.to_string();
                let has_eq =
                    matches!(args.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
                if has_eq {
                    let value = match args.get(i + 2) {
                        Some(TokenTree::Literal(l)) => unquote(&l.to_string()),
                        other => {
                            panic!("serde derive: expected string after {key} =, got {other:?}")
                        }
                    };
                    match key.as_str() {
                        "try_from" => attrs.try_from = Some(value),
                        "into" => attrs.into = Some(value),
                        other => panic!("serde derive (vendored): unsupported attribute {other}"),
                    }
                    i += 3;
                } else {
                    match key.as_str() {
                        "transparent" => attrs.transparent = true,
                        other => panic!("serde derive (vendored): unsupported attribute {other}"),
                    }
                    i += 1;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("serde derive: unexpected token in #[serde(...)]: {other}"),
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Split a field/variant list on top-level commas, tracking `<...>` depth so
/// commas inside generic types don't split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn skip_field_attrs(tokens: &[TokenTree], pos: &mut usize) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        // Fail loudly on field/variant-level #[serde(...)] rather than
        // silently producing JSON with real-serde-divergent shape.
        if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
            if matches!(
                g.stream().into_iter().next(),
                Some(TokenTree::Ident(id)) if id.to_string() == "serde"
            ) {
                panic!(
                    "serde derive (vendored): field/variant-level #[serde(...)] attributes \
                     are not supported: {g}"
                );
            }
        }
        *pos += 2;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|field| {
            let mut pos = 0;
            skip_field_attrs(&field, &mut pos);
            skip_visibility(&field, &mut pos);
            match &field[pos] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde derive: expected field name, found {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|var| {
            let mut pos = 0;
            skip_field_attrs(&var, &mut pos);
            let name = match &var[pos] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde derive: expected variant name, found {other}"),
            };
            pos += 1;
            let kind = match var.get(pos) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream()))
                }
                other => panic!("serde derive: unsupported variant body: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    if let Some(into) = &item.attrs.into {
        return format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                     let raw: {into} = ::std::clone::Clone::clone(self).into();\n\
                     serde::Serialize::to_value(&raw)\n\
                 }}\n\
                 fn serialize<S: serde::Serializer + ?Sized>(&self, s: &mut S) {{\n\
                     let raw: {into} = ::std::clone::Clone::clone(self).into();\n\
                     serde::Serialize::serialize(&raw, s);\n\
                 }}\n\
             }}"
        );
    }
    let stream_body = generate_serialize_stream_body(item);
    let body = match &item.shape {
        Shape::NamedStruct(fields) if item.attrs.transparent && fields.len() == 1 => {
            format!("serde::Serialize::to_value(&self.{})", fields[0])
        }
        Shape::TupleStruct(1) if item.attrs.transparent => {
            "serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "pairs.push((\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!("{{ let mut pairs = Vec::new();\n{pushes}serde::Value::Object(pairs) }}")
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => serde::Value::Str(\"{vname}\".to_string()),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => serde::Value::Object(vec![(\"{vname}\".to_string(), serde::Serialize::to_value(f0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => serde::Value::Object(vec![(\"{vname}\".to_string(), serde::Value::Array(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| format!(
                                    "pairs.push((\"{f}\".to_string(), serde::Serialize::to_value({f})));\n"
                                ))
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                     let mut pairs = Vec::new();\n{pushes}\
                                     serde::Value::Object(vec![(\"{vname}\".to_string(), serde::Value::Object(pairs))])\n\
                                 }}\n"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
             fn serialize<S: serde::Serializer + ?Sized>(&self, s: &mut S) {{\n{stream_body}\n}}\n\
         }}"
    )
}

/// The body of the streaming `Serialize::serialize` impl: emits exactly
/// the shape `to_value` builds (same field order, same externally-tagged
/// enum representation) directly into a `serde::Serializer`, skipping the
/// intermediate `Value` tree.
fn generate_serialize_stream_body(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::NamedStruct(fields) if item.attrs.transparent && fields.len() == 1 => {
            format!("serde::Serialize::serialize(&self.{}, s);", fields[0])
        }
        Shape::TupleStruct(1) => "serde::Serialize::serialize(&self.0, s);".to_string(),
        Shape::NamedStruct(fields) => {
            let emits: String = fields
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    format!("s.field({i}, \"{f}\"); serde::Serialize::serialize(&self.{f}, s);\n")
                })
                .collect();
            format!("s.begin_object({});\n{emits}s.end_object();", fields.len())
        }
        Shape::TupleStruct(n) => {
            let emits: String = (0..*n)
                .map(|i| format!("s.elem({i}); serde::Serialize::serialize(&self.{i}, s);\n"))
                .collect();
            format!("s.begin_array({n});\n{emits}s.end_array();")
        }
        Shape::UnitStruct => "s.emit_null();".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vname} => s.emit_str(\"{vname}\"),\n")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => {{\n\
                                 s.begin_object(1); s.field(0, \"{vname}\");\n\
                                 serde::Serialize::serialize(f0, s);\n\
                                 s.end_object();\n\
                             }}\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let emits: String = binds
                                .iter()
                                .enumerate()
                                .map(|(i, b)| {
                                    format!(
                                        "s.elem({i}); serde::Serialize::serialize({b}, s);\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname}({}) => {{\n\
                                     s.begin_object(1); s.field(0, \"{vname}\");\n\
                                     s.begin_array({n});\n{emits}s.end_array();\n\
                                     s.end_object();\n\
                                 }}\n",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let emits: String = fields
                                .iter()
                                .enumerate()
                                .map(|(i, f)| {
                                    format!(
                                        "s.field({i}, \"{f}\"); serde::Serialize::serialize({f}, s);\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                     s.begin_object(1); s.field(0, \"{vname}\");\n\
                                     s.begin_object({});\n{emits}s.end_object();\n\
                                     s.end_object();\n\
                                 }}\n",
                                fields.len()
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    if let Some(try_from) = &item.attrs.try_from {
        return format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(value: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                     let raw: {try_from} = serde::Deserialize::from_value(value)?;\n\
                     <Self as ::std::convert::TryFrom<{try_from}>>::try_from(raw)\n\
                         .map_err(serde::Error::custom)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &item.shape {
        Shape::NamedStruct(fields) if item.attrs.transparent && fields.len() == 1 => {
            format!(
                "Ok({name} {{ {f}: serde::Deserialize::from_value(value)? }})",
                f = fields[0]
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(value)?))")
        }
        Shape::NamedStruct(fields) => {
            // Missing fields deserialize from `Null`, matching real
            // serde's observable behavior: absent `Option<T>` fields load
            // as `None` (real serde's `missing_field` feeds `Option` a
            // none-deserializer), while absent required fields still
            // error (their types reject null). This is what lets
            // persistence formats add optional fields without breaking
            // old payloads.
            let extract: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(value.get(\"{f}\").unwrap_or(&serde::Value::Null))?,\n"
                    )
                })
                .collect();
            format!(
                "match value {{\n\
                     serde::Value::Object(_) => Ok({name} {{\n{extract}}}),\n\
                     other => Err(serde::Error::custom(format!(\"expected object for {name}, found {{other:?}}\"))),\n\
                 }}"
            )
        }
        Shape::TupleStruct(n) => {
            let extract: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                     serde::Value::Array(items) if items.len() == {n} => Ok({name}({extract})),\n\
                     other => Err(serde::Error::custom(format!(\"expected {n}-element array for {name}, found {{other:?}}\"))),\n\
                 }}",
                extract = extract.join(", ")
            )
        }
        Shape::UnitStruct => format!(
            "match value {{\n\
                 serde::Value::Null => Ok({name}),\n\
                 other => Err(serde::Error::custom(format!(\"expected null for {name}, found {{other:?}}\"))),\n\
             }}"
        ),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),\n", vn = v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let extract: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match inner {{\n\
                                     serde::Value::Array(items) if items.len() == {n} => Ok({name}::{vn}({extract})),\n\
                                     other => Err(serde::Error::custom(format!(\"expected {n}-element array for {name}::{vn}, found {{other:?}}\"))),\n\
                                 }},\n",
                                extract = extract.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let extract: String = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: serde::Deserialize::from_value(inner.get(\"{f}\").unwrap_or(&serde::Value::Null))?,\n"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match inner {{\n\
                                     serde::Value::Object(_) => Ok({name}::{vn} {{\n{extract}}}),\n\
                                     other => Err(serde::Error::custom(format!(\"expected object for {name}::{vn}, found {{other:?}}\"))),\n\
                                 }},\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                     serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\
                         other => Err(serde::Error::custom(format!(\"unknown unit variant {{other}} for {name}\"))),\n\
                     }},\n\
                     serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => Err(serde::Error::custom(format!(\"unknown variant {{other}} for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(serde::Error::custom(format!(\"expected enum representation for {name}, found {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(value: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
