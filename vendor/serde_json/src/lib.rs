//! Vendored minimal stand-in for `serde_json`.
//!
//! Serializes the vendored `serde::Value` model to JSON text and parses
//! JSON text back. Supports `to_string`, `to_string_pretty`, `from_str`,
//! and a `json`-free subset sufficient for the workspace's round-trip
//! tests, which include fixed JSON literals in serde's shape (e.g.
//! `{"start": 9, "end": {"At": 2}}`).

use serde::{Deserialize, Serialize, Serializer, Value};

pub use serde::Error;

/// Serialize a value to compact JSON text.
///
/// Streams through [`serde::Serializer`] — no intermediate
/// [`serde::Value`] tree is built, which matters for multi-megabyte
/// payloads like engine snapshots (the tree's per-node allocations cost
/// an order of magnitude more than the text itself).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut ser = JsonSerializer { out: String::new() };
    value.serialize(&mut ser);
    Ok(ser.out)
}

/// Streaming compact-JSON sink. Produces byte-identical output to
/// walking `to_value()` through `write_value`.
struct JsonSerializer {
    out: String,
}

impl Serializer for JsonSerializer {
    fn emit_null(&mut self) {
        self.out.push_str("null");
    }
    fn emit_bool(&mut self, b: bool) {
        self.out.push_str(if b { "true" } else { "false" });
    }
    fn emit_u64(&mut self, n: u64) {
        push_u64(&mut self.out, n);
    }
    fn emit_i64(&mut self, n: i64) {
        if n < 0 {
            self.out.push('-');
            push_u64(&mut self.out, n.unsigned_abs());
        } else {
            push_u64(&mut self.out, n as u64);
        }
    }
    fn emit_f64(&mut self, n: f64) {
        write_f64(n, &mut self.out);
    }
    fn emit_str(&mut self, s: &str) {
        write_string(s, &mut self.out);
    }
    fn begin_array(&mut self, _len: usize) {
        self.out.push('[');
    }
    fn elem(&mut self, index: usize) {
        if index > 0 {
            self.out.push(',');
        }
    }
    fn end_array(&mut self) {
        self.out.push(']');
    }
    fn begin_object(&mut self, _len: usize) {
        self.out.push('{');
    }
    fn field(&mut self, index: usize, key: &str) {
        if index > 0 {
            self.out.push(',');
        }
        write_string(key, &mut self.out);
        self.out.push(':');
    }
    fn end_object(&mut self) {
        self.out.push('}');
    }
}

/// Append a decimal integer without going through `format!`'s machinery
/// (numbers dominate LTAM payloads, so this is the hot path).
fn push_u64(out: &mut String, mut n: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // Digits are pure ASCII.
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

/// Serialize a value to indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(n: f64, out: &mut String) {
    if n.is_finite() {
        // `{}` prints 3.0 as "3", which is still a valid JSON number.
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    // Copy maximal runs that need no escaping in one push; only `"`,
    // `\` and control bytes break a run (multi-byte UTF-8 never does —
    // continuation bytes are all >= 0x80).
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let escape: &str = match b {
            b'"' => "\\\"",
            b'\\' => "\\\\",
            b'\n' => "\\n",
            b'\r' => "\\r",
            b'\t' => "\\t",
            b if b < 0x20 => "",
            _ => continue,
        };
        out.push_str(&s[start..i]);
        if escape.is_empty() {
            out.push_str(&format!("\\u{:04x}", b as u32));
        } else {
            out.push_str(escape);
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected character {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid keyword at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = self.parse_hex4()?;
                        // UTF-16 surrogate pair: a high surrogate must be
                        // followed by an escaped low surrogate.
                        if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error("unpaired surrogate in \\u escape".to_string()));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error(
                                    "invalid low surrogate in \\u escape".to_string(),
                                ));
                            }
                            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error("invalid unicode escape".to_string()))?,
                        );
                    }
                    other => {
                        return Err(Error(format!(
                            "invalid escape {:?}",
                            other.map(|c| c as char)
                        )))
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid utf-8 in string".to_string()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| Error("invalid \\u escape".to_string()))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' in array, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("invalid number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("invalid number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("invalid number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
    }

    #[test]
    fn whitespace_and_nesting() {
        let v: Vec<Vec<u64>> = from_str(" [ [1, 2] , [ ] ] ").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![]]);
    }

    #[test]
    fn errors_are_errors() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 trailing").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }

    #[test]
    fn unicode_strings_survive() {
        let s = "héllo → 世界".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // Escaped UTF-16 surrogate pair for U+1F600.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
        // Literal (non-escaped) non-BMP characters also survive.
        assert_eq!(from_str::<String>("\"\u{1F600}\"").unwrap(), "\u{1F600}");
        assert!(from_str::<String>("\"\\ud83d\"").is_err()); // unpaired high
        assert!(from_str::<String>("\"\\ud83dAB\"").is_err()); // truncated pair
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err()); // low out of range
    }
}
