//! Vendored minimal stand-in for `serde`.
//!
//! The real serde is a visitor-based framework; this stand-in uses a much
//! simpler model that is sufficient for the workspace: every serializable
//! type converts to and from a JSON-like [`Value`] tree. The derive macros
//! (re-exported from the local `serde_derive` proc-macro crate) generate
//! `to_value`/`from_value` impls that follow serde's *serialization shape*
//! — externally tagged enums, transparent newtypes, `try_from`/`into`
//! container attributes — so JSON produced for derived structs and enums
//! matches what real serde_json would produce for the same types.
//!
//! One deliberate divergence: maps serialize as `[[key, value], ...]`
//! entry arrays rather than JSON objects (see the map impls below). This
//! round-trips arbitrary non-string key types, which the LTAM types use,
//! but is **not** wire-compatible with real serde_json for string-keyed
//! maps — swap in the real crates before exchanging JSON with external
//! consumers.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

/// The self-describing data model: a JSON-like value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs) so serialized field
/// order matches declaration order, as serde's derive does.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced during (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A streaming serialization sink, in the spirit of real serde's
/// `Serializer` (but flattened: no associated per-compound types).
///
/// [`Serialize::serialize`] drives a `Serializer` directly, without
/// building the intermediate [`Value`] tree that `to_value` produces —
/// for multi-megabyte payloads (engine snapshots) the tree's per-node
/// allocations dominate the cost, so formats that care about throughput
/// (`serde_json::to_string`, the store's binary snapshot payload)
/// implement this trait and stream.
///
/// Call protocol, which emitters must follow and sinks may rely on:
///
/// * exactly one value is emitted at top level;
/// * `begin_array(len)` is followed by `len` repetitions of
///   `elem(i)` + one value, then `end_array()`;
/// * `begin_object(len)` is followed by `len` repetitions of
///   `field(i, key)` + one value, then `end_object()`;
/// * indices count from 0 in emission order (JSON uses `i > 0` to place
///   commas; binary sinks can ignore them).
pub trait Serializer {
    /// Emit `null`.
    fn emit_null(&mut self);
    /// Emit a boolean.
    fn emit_bool(&mut self, b: bool);
    /// Emit an unsigned integer.
    fn emit_u64(&mut self, n: u64);
    /// Emit a signed (negative) integer.
    fn emit_i64(&mut self, n: i64);
    /// Emit a float.
    fn emit_f64(&mut self, n: f64);
    /// Emit a string.
    fn emit_str(&mut self, s: &str);
    /// Open an array of exactly `len` elements.
    fn begin_array(&mut self, len: usize);
    /// Announce element `index` (0-based); its value follows.
    fn elem(&mut self, index: usize);
    /// Close the innermost open array.
    fn end_array(&mut self);
    /// Open an object of exactly `len` fields.
    fn begin_object(&mut self, len: usize);
    /// Announce field `index` with key `key`; its value follows.
    fn field(&mut self, index: usize, key: &str);
    /// Close the innermost open object.
    fn end_object(&mut self);
}

/// Stream an already-built [`Value`] tree into a [`Serializer`].
pub fn emit_value<S: Serializer + ?Sized>(v: &Value, s: &mut S) {
    match v {
        Value::Null => s.emit_null(),
        Value::Bool(b) => s.emit_bool(*b),
        Value::U64(n) => s.emit_u64(*n),
        Value::I64(n) => s.emit_i64(*n),
        Value::F64(n) => s.emit_f64(*n),
        Value::Str(t) => s.emit_str(t),
        Value::Array(items) => {
            s.begin_array(items.len());
            for (i, item) in items.iter().enumerate() {
                s.elem(i);
                emit_value(item, s);
            }
            s.end_array();
        }
        Value::Object(pairs) => {
            s.begin_object(pairs.len());
            for (i, (k, item)) in pairs.iter().enumerate() {
                s.field(i, k);
                emit_value(item, s);
            }
            s.end_object();
        }
    }
}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;

    /// Stream `self` into a [`Serializer`] without building a [`Value`]
    /// tree. The default goes through [`Serialize::to_value`] so manual
    /// impls stay correct; the derive macro and the impls in this crate
    /// override it with direct streaming.
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        emit_value(&self.to_value(), s);
    }
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Compatibility alias so `use serde::de::Error` style paths resolve.
pub mod de {
    pub use super::{Deserialize, Error};
}

/// Compatibility alias so `use serde::ser::Error` style paths resolve.
pub mod ser {
    pub use super::{Error, Serialize};
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, found {got:?}")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
            fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) { s.emit_u64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => type_err(stringify!($t), other),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
            fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
                let n = *self as i64;
                if n >= 0 { s.emit_u64(n as u64) } else { s.emit_i64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => type_err(stringify!($t), other),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
            fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) { s.emit_f64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => type_err(stringify!($t), other),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        s.emit_bool(*self);
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        s.emit_str(self.encode_utf8(&mut [0u8; 4]));
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        s.emit_str(self);
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        s.emit_str(self);
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        s.emit_null();
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => type_err("null", other),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        match self {
            None => s.emit_null(),
            Some(v) => v.serialize(s),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        (**self).serialize(s);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        (**self).serialize(s);
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        emit_seq(self.iter(), self.len(), s);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        emit_seq(self.iter(), self.len(), s);
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        emit_seq(self.iter(), self.len(), s);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        emit_seq(self.iter(), self.len(), s);
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
            fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
                const LEN: usize = [$(stringify!($t)),+].len();
                s.begin_array(LEN);
                $(s.elem($n); self.$n.serialize(s);)+
                s.end_array();
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$(stringify!($t)),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => type_err("tuple array", other),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// Maps and sets serialize as arrays of entries: this round-trips through
// JSON for arbitrary (non-string) key types, which the LTAM types use
// (e.g. maps keyed by LocationId).
impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        emit_map(self.iter(), self.len(), s);
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        entries(v)?.collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        emit_map(self.iter(), self.len(), s);
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        entries(v)?.collect()
    }
}

fn entries<'a, K: Deserialize, V: Deserialize>(
    v: &'a Value,
) -> Result<impl Iterator<Item = Result<(K, V), Error>> + 'a, Error> {
    match v {
        Value::Array(items) => Ok(items.iter().map(|item| match item {
            Value::Array(kv) if kv.len() == 2 => {
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            }
            other => type_err("[key, value] entry", other),
        })),
        other => type_err("array of entries", other),
    }
}

/// Stream an exact-size sequence of serializable items.
fn emit_seq<'a, T: Serialize + 'a, S: Serializer + ?Sized>(
    items: impl Iterator<Item = &'a T>,
    len: usize,
    s: &mut S,
) {
    s.begin_array(len);
    for (i, item) in items.enumerate() {
        s.elem(i);
        item.serialize(s);
    }
    s.end_array();
}

/// Stream a map as the `[[key, value], ...]` entry-array shape that
/// `to_value` produces (see the map impls above for why).
fn emit_map<'a, K: Serialize + 'a, V: Serialize + 'a, S: Serializer + ?Sized>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    len: usize,
    s: &mut S,
) {
    s.begin_array(len);
    for (i, (k, v)) in entries.enumerate() {
        s.elem(i);
        s.begin_array(2);
        s.elem(0);
        k.serialize(s);
        s.elem(1);
        v.serialize(s);
        s.end_array();
    }
    s.end_array();
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        emit_seq(self.iter(), self.len(), s);
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        emit_seq(self.iter(), self.len(), s);
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
    fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
        emit_value(self, s);
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let v = Some(3u64).to_value();
        assert_eq!(v, Value::U64(3));
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn map_round_trips_as_entry_array() {
        let mut m = BTreeMap::new();
        m.insert(1u64, "a".to_string());
        m.insert(2, "b".to_string());
        let v = m.to_value();
        let back = BTreeMap::<u64, String>::from_value(&v).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn wrong_shape_is_an_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u64>::from_value(&Value::U64(1)).is_err());
    }
}
