//! Vendored minimal stand-in for `serde`.
//!
//! The real serde is a visitor-based framework; this stand-in uses a much
//! simpler model that is sufficient for the workspace: every serializable
//! type converts to and from a JSON-like [`Value`] tree. The derive macros
//! (re-exported from the local `serde_derive` proc-macro crate) generate
//! `to_value`/`from_value` impls that follow serde's *serialization shape*
//! — externally tagged enums, transparent newtypes, `try_from`/`into`
//! container attributes — so JSON produced for derived structs and enums
//! matches what real serde_json would produce for the same types.
//!
//! One deliberate divergence: maps serialize as `[[key, value], ...]`
//! entry arrays rather than JSON objects (see the map impls below). This
//! round-trips arbitrary non-string key types, which the LTAM types use,
//! but is **not** wire-compatible with real serde_json for string-keyed
//! maps — swap in the real crates before exchanging JSON with external
//! consumers.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

/// The self-describing data model: a JSON-like value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs) so serialized field
/// order matches declaration order, as serde's derive does.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced during (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Compatibility alias so `use serde::de::Error` style paths resolve.
pub mod de {
    pub use super::{Deserialize, Error};
}

/// Compatibility alias so `use serde::ser::Error` style paths resolve.
pub mod ser {
    pub use super::{Error, Serialize};
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, found {got:?}")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => type_err(stringify!($t), other),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => type_err(stringify!($t), other),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => type_err(stringify!($t), other),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => type_err("null", other),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$(stringify!($t)),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => type_err("tuple array", other),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// Maps and sets serialize as arrays of entries: this round-trips through
// JSON for arbitrary (non-string) key types, which the LTAM types use
// (e.g. maps keyed by LocationId).
impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        entries(v)?.collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        entries(v)?.collect()
    }
}

fn entries<'a, K: Deserialize, V: Deserialize>(
    v: &'a Value,
) -> Result<impl Iterator<Item = Result<(K, V), Error>> + 'a, Error> {
    match v {
        Value::Array(items) => Ok(items.iter().map(|item| match item {
            Value::Array(kv) if kv.len() == 2 => {
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            }
            other => type_err("[key, value] entry", other),
        })),
        other => type_err("array of entries", other),
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let v = Some(3u64).to_value();
        assert_eq!(v, Value::U64(3));
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn map_round_trips_as_entry_array() {
        let mut m = BTreeMap::new();
        m.insert(1u64, "a".to_string());
        m.insert(2, "b".to_string());
        let v = m.to_value();
        let back = BTreeMap::<u64, String>::from_value(&v).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn wrong_shape_is_an_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u64>::from_value(&Value::U64(1)).is_err());
    }
}
