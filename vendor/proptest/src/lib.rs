//! Vendored minimal stand-in for `proptest`.
//!
//! Implements the generator side of proptest — strategies, combinators,
//! the `proptest!` / `prop_assert*` macros, and a deterministic RNG — but
//! performs **no shrinking**: a failing case panics with the generated
//! inputs' debug representation instead of a minimized one. Each test
//! function derives its seed from its own name, so failures reproduce
//! across runs.

use std::fmt;

pub mod test_runner {
    /// Deterministic RNG used to drive strategies, backed by the vendored
    /// `rand` crate's `StdRng` (real proptest also builds on `rand`).
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) rand::rngs::StdRng);

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name, so each test gets a stable,
            // distinct stream and failures reproduce across runs.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(h))
        }

        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.0)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot sample from empty range");
            (self.next_u64() % n as u64) as usize
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            TestRng::next_u64(self)
        }
    }

    /// Outcome of one generated test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: skip the case.
        Reject(String),
        /// `prop_assert!`-style failure: the property does not hold.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A source of random values of one type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy simply generates a value from an RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                reason,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Object-safe strategy, for heterogeneous collections of strategies.
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(std::rc::Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 1000 candidates", self.reason);
        }
    }

    /// Choice between boxed strategies of one value type, uniform or
    /// weighted (for `prop_oneof![w => strategy, ...]`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
            Union {
                options,
                total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total_weight;
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }

    // Numeric range strategies delegate to the vendored rand crate's
    // uniform samplers (real proptest builds on rand too). rand's samplers
    // assert on empty/inverted ranges, so authoring bugs like `5.0..1.0`
    // fail loudly instead of silently generating out-of-range values.
    impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_half_open(&mut rng.0, self.start, self.end)
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(&mut rng.0, *self.start(), *self.end())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// A `Vec` of strategies generates element-wise (proptest does this too).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// A string slice is a regex strategy, as in real proptest. The
    /// supported subset: literal characters, `[...]` classes with ranges,
    /// and the quantifiers `{n}`, `{n,m}`, `?`, `*`, `+` (unbounded
    /// repetition capped at 8).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_regex(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_regex(self, rng)
        }
    }

    fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a character class or a literal character.
            let atom: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in regex strategy {pattern:?}"));
                    let class = expand_class(&chars[i + 1..i + close]);
                    i += close + 1;
                    class
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling \\ in regex strategy {pattern:?}"));
                    i += 2;
                    vec![c]
                }
                c @ ('|' | '(' | ')' | '.' | '^' | '$') => {
                    panic!(
                        "unsupported regex metacharacter {c:?} in strategy {pattern:?}; \
                         the vendored subset is literals, [...] classes, and \
                         {{n}}/{{n,m}}/?/*/+ quantifiers"
                    );
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Parse an optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {pattern:?}"));
                    let spec: String = chars[i + 1..i + close].iter().collect();
                    i += close + 1;
                    let parse = |s: &str| {
                        s.trim().parse::<usize>().unwrap_or_else(|_| {
                            panic!(
                                "unsupported repetition {{{spec}}} in regex strategy {pattern:?}"
                            )
                        })
                    };
                    match spec.split_once(',') {
                        // `{n,}`: open-ended repetition, capped like `+`.
                        Some((a, b)) if b.trim().is_empty() => {
                            let lo = parse(a);
                            (lo, lo + 8)
                        }
                        Some((a, b)) => (parse(a), parse(b)),
                        None => {
                            let n = parse(&spec);
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            let count = lo + rng.below(hi - lo + 1);
            for _ in 0..count {
                out.push(atom[rng.below(atom.len())]);
            }
        }
        out
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        assert!(
            body.first() != Some(&'^'),
            "negated character classes ([^...]) are not supported by the vendored regex strategy"
        );
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                for c in body[i]..=body[i + 2] {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class in regex strategy");
        out
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical strategy, reachable through [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for an [`Arbitrary`] type.
    pub struct Any<A>(std::marker::PhantomData<A>);

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> super::sample::Index {
            super::sample::Index::new(rng.next_u64() as usize)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A size specification for generated collections.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty collection size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below(hi - lo + 1)
        }
    }

    /// `prop::collection::vec`: a vector whose length is drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `prop::bool::weighted`: true with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.p
        }
    }

    /// Uniform boolean, mirroring `prop::bool::ANY`.
    pub struct Any;
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// An index into a not-yet-known-length collection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        raw: usize,
    }

    impl Index {
        pub fn new(raw: usize) -> Self {
            Index { raw }
        }

        /// Resolve against a concrete collection length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.raw % len
        }
    }

    /// `prop::sample::select`: uniform choice from a fixed list.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// Mirror of proptest's prelude: strategies, `any`, config, macros, and the
/// `prop` module namespace.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

impl fmt::Display for test_runner::TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            test_runner::TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            test_runner::TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    (@config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases {
                    attempts += 1;
                    if attempts > config.cases * 16 + 1000 {
                        panic!("proptest: too many rejected cases in {}", stringify!($name));
                    }
                    #[allow(unused_mut)]
                    let mut case_inputs = ::std::string::String::new();
                    $(
                        let generated = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        case_inputs.push_str(&format!(
                            "\n  {} = {:?}", stringify!($arg), generated
                        ));
                        let $arg = generated;
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} failed: {}\ninputs:{}",
                                ran, msg, case_inputs
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0i64..=0) {
            prop_assert!((10..20).contains(&x));
            prop_assert_eq!(y, 0);
        }

        #[test]
        fn maps_and_vecs_compose(v in prop::collection::vec((0u32..5).prop_map(|x| x * 2), 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn oneof_and_select(v in prop_oneof![Just(1u8), Just(2u8)], s in prop::sample::select(vec![7u8, 9])) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!(s == 7 || s == 9);
        }
    }

    #[test]
    fn index_resolves() {
        let idx = crate::sample::Index::new(12);
        assert_eq!(idx.index(5), 2);
    }

    #[test]
    fn weighted_oneof_respects_weights() {
        use crate::strategy::Strategy;
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::test_runner::TestRng::from_name("weighted_oneof");
        let trues = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        // ~900 expected; far outside the reach of a uniform 50/50 pick.
        assert!((800..=1000).contains(&trues), "got {trues} trues");
    }

    #[test]
    fn regex_strategy_covers_quantifiers() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::from_name("regex_quant");
        for _ in 0..100 {
            let s = "[a-c]{2,}".generate(&mut rng);
            assert!(s.len() >= 2, "got {s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
