//! Vendored minimal stand-in for `criterion`.
//!
//! Implements the benchmarking API surface the workspace uses —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop:
//! a warm-up phase, then `sample_size` samples whose iteration count is
//! scaled so each sample fits the measurement budget. Reports min /
//! median / max per-iteration time to stdout. No statistics, plots, or
//! baseline comparisons.
//!
//! Like real criterion, passing `--test` on the command line (e.g.
//! `cargo bench --bench throughput -- --test`) switches to smoke mode:
//! every benchmark routine runs exactly once, with no warm-up or
//! measurement, so CI can catch bench bit-rot cheaply.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by `Criterion` and per-group overrides.
#[derive(Clone)]
struct MeasureConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    config: MeasureConfig,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.config.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Run configuration hook for `criterion_group!`'s `config = ...` form.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            // Group-level setters scope to this group only, as in real
            // criterion; the parent Criterion is untouched.
            config: self.config.clone(),
            _criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_benchmark(&self.config, &name, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    config: MeasureConfig,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.config.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&self.config, &full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&self.config, &full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Anything `bench_function`-style methods accept as a name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    /// Iterations to run per sample in the measurement phase; 0 while
    /// calibrating.
    iters: u64,
    /// Measured elapsed time for the requested iterations.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint, accepted for API compatibility.
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// True when the harness was invoked with `--test` (smoke mode).
fn test_mode() -> bool {
    static TEST_MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *TEST_MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &MeasureConfig, name: &str, mut f: F) {
    if test_mode() {
        // Smoke mode: one iteration, no measurement — just prove the
        // benchmark still runs.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("Testing {name} ... ok");
        return;
    }
    // Calibration: run single iterations until the warm-up budget is spent.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_up_start = Instant::now();
    let mut calibration_iters: u64 = 0;
    let mut calibration_time = Duration::ZERO;
    while warm_up_start.elapsed() < config.warm_up_time || calibration_iters == 0 {
        f(&mut b);
        calibration_iters += b.iters;
        calibration_time += b.elapsed;
        if calibration_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = calibration_time
        .checked_div(calibration_iters.max(1) as u32)
        .unwrap_or(Duration::ZERO);

    // Target: sample_size samples inside the measurement budget.
    let budget_per_sample = config.measurement_time / config.sample_size as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
    };

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!(
        "{name:<50} time: [{} {} {}] ({} samples x {} iters)",
        fmt_time(samples[0]),
        fmt_time(median),
        fmt_time(*samples.last().unwrap()),
        config.sample_size,
        iters_per_sample,
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        let mut runs = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).into_benchmark_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(8).into_benchmark_id(), "8");
    }
}
