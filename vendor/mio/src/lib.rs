//! Vendored minimal stand-in for `mio` (offline build).
//!
//! Readiness-driven polling over raw Linux `epoll`, with an
//! `eventfd`-backed [`Waker`] for cross-thread wakeups. Only the
//! surface this workspace uses is implemented:
//!
//! * [`Poll`] / [`Registry`] — register any `AsRawFd` source with a
//!   [`Token`] and an [`Interest`], then block in
//!   [`Poll::poll`] for readiness [`Events`],
//! * [`Interest`] — readable/writable, combinable with `|`,
//! * [`Waker`] — wake a blocked `poll` from another thread.
//!
//! Differences from real mio, on purpose:
//!
//! * sources are plain `&impl AsRawFd` (std types with
//!   `set_nonblocking(true)`), not a `Source` trait,
//! * registrations are **level-triggered** (the waker alone is
//!   edge-triggered so it needs no drain), so a handler that does not
//!   finish its buffer is re-notified on the next poll,
//! * Linux-only: the syscalls are declared `extern "C"` against the
//!   libc every `*-linux-gnu` binary already links, keeping the
//!   workspace offline-buildable.

#![warn(missing_docs)]
#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

/// Re-export module mirroring `mio::event` so callers can name
/// `event::Event` the way real-mio code does.
pub mod event {
    pub use crate::Event;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// Mirror of the kernel's `struct epoll_event`. Packed on x86-64 (the
/// kernel ABI packs it there so 32/64-bit layouts agree); naturally
/// aligned elsewhere.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    u64: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Identifies a registered source in the events a poll returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// What readiness to watch a source for. Combine with `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Watch for read readiness (includes peer hangup).
    pub const READABLE: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    /// Watch for write readiness.
    pub const WRITABLE: Interest = Interest(EPOLLOUT);

    /// Both interests combined. (Named to match the real mio API.)
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include readable?
    pub fn is_readable(self) -> bool {
        self.0 & EPOLLIN != 0
    }

    /// Does this interest include writable?
    pub fn is_writable(self) -> bool {
        self.0 & EPOLLOUT != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    bits: u32,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Reading will not block (data, EOF, or peer hangup).
    pub fn is_readable(&self) -> bool {
        self.bits & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0
    }

    /// Writing will not block (or the peer is gone and a write will
    /// fail fast).
    pub fn is_writable(&self) -> bool {
        self.bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// The peer closed its write half (or the whole connection).
    pub fn is_read_closed(&self) -> bool {
        self.bits & (EPOLLRDHUP | EPOLLHUP) != 0
    }

    /// The source is in an error state.
    pub fn is_error(&self) -> bool {
        self.bits & EPOLLERR != 0
    }
}

/// A reusable buffer of readiness notifications filled by
/// [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    raw: Vec<EpollEvent>,
    len: usize,
}

impl std::fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Copy out of the (possibly packed) struct before borrowing.
        let (events, data) = (self.events, self.u64);
        f.debug_struct("EpollEvent")
            .field("events", &events)
            .field("u64", &data)
            .finish()
    }
}

impl Events {
    /// A buffer that can hold up to `capacity` notifications per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![EpollEvent { events: 0, u64: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Number of notifications from the last poll.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Did the last poll return nothing (timeout)?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the notifications from the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|raw| Event {
            token: Token(raw.u64 as usize),
            bits: raw.events,
        })
    }
}

/// Registration handle for a [`Poll`]; cheap to hand to other threads
/// by reference (registering is thread-safe — epoll allows concurrent
/// `epoll_ctl`).
#[derive(Debug)]
pub struct Registry {
    epfd: RawFd,
}

impl Registry {
    fn ctl(&self, op: i32, fd: RawFd, bits: u32, token: Token) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: bits,
            u64: token.0 as u64,
        };
        // SAFETY: epfd and fd are owned-open descriptors; ev outlives
        // the call.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(drop)
    }

    /// Watch `source` for `interest`, tagging notifications with
    /// `token` (level-triggered).
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), interest.0, token)
    }

    /// Change the interest (and/or token) of an already-registered
    /// source.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), interest.0, token)
    }

    /// Stop watching `source`.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), 0, Token(0))
    }
}

/// The poller: an epoll instance plus its [`Registry`].
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Create a fresh epoll instance.
    pub fn new() -> io::Result<Poll> {
        // SAFETY: plain syscall, no pointers.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poll {
            registry: Registry { epfd },
        })
    }

    /// The registration handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Block until at least one registered source is ready, `timeout`
    /// elapses (`events` comes back empty), or a [`Waker`] fires.
    /// `None` blocks indefinitely. Retries on signal interruption.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.len = 0;
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 1ns timeout still sleeps ~1ms rather than
            // spinning at 0.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        loop {
            // SAFETY: the buffer is valid for `raw.len()` entries and
            // lives across the call.
            let n = unsafe {
                epoll_wait(
                    self.registry.epfd,
                    events.raw.as_mut_ptr(),
                    events.raw.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                events.len = n as usize;
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: closing an fd we own exactly once.
        unsafe { close(self.registry.epfd) };
    }
}

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from any thread: the
/// poll returns an event carrying the waker's token.
///
/// Backed by a nonblocking `eventfd` registered **edge-triggered**, so
/// the poll loop never has to drain it: each `wake` bumps the counter
/// and arms one notification; the counter is reset lazily if a write
/// ever finds it saturated.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Create a waker delivering `token` through `registry`'s poll.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        let waker = Waker { fd };
        registry.ctl(EPOLL_CTL_ADD, fd, EPOLLIN | EPOLLET, token)?;
        Ok(waker)
    }

    /// Wake the poll. Cheap and thread-safe; coalesces with wakes the
    /// poll has not observed yet.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: fd is our open eventfd; the buffer is 8 valid bytes.
        let n = unsafe { write(self.fd, &one as *const u64 as *const u8, 8) };
        if n == 8 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            // Counter saturated (2^64-2 unobserved wakes): drain and
            // re-arm.
            let mut buf = [0u8; 8];
            // SAFETY: same fd, 8-byte buffer.
            unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
            // SAFETY: as above.
            let n = unsafe { write(self.fd, &one as *const u64 as *const u8, 8) };
            if n == 8 {
                return Ok(());
            }
            return Err(io::Error::last_os_error());
        }
        Err(err)
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: closing an fd we own exactly once. The epoll
        // registration dies with the fd.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn readable_fires_when_data_arrives_and_not_before() {
        let mut poll = Poll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poll.registry()
            .register(&b, Token(7), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no data yet, poll must time out");
        a.write_all(b"hi").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("one readiness event");
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());
        let mut buf = [0u8; 8];
        let mut b2 = &b;
        assert_eq!(b2.read(&mut buf).unwrap(), 2);
    }

    #[test]
    fn level_triggered_renotifies_until_drained_and_interest_toggles() {
        let mut poll = Poll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poll.registry()
            .register(&b, Token(1), Interest::READABLE)
            .unwrap();
        a.write_all(b"xyz").unwrap();
        let mut events = Events::with_capacity(8);
        for _ in 0..2 {
            poll.poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "undrained data keeps the source ready");
        }
        // Drop read interest: the pending data must no longer wake us.
        poll.registry()
            .reregister(&b, Token(1), Interest::WRITABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().unwrap();
        assert!(ev.is_writable() && ev.bits & EPOLLIN == 0);
        poll.registry().deregister(&b).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "deregistered sources never notify");
    }

    #[test]
    fn peer_close_is_visible_as_read_closed() {
        let mut poll = Poll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poll.registry()
            .register(&b, Token(3), Interest::READABLE)
            .unwrap();
        drop(a);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("hangup must notify");
        assert!(ev.is_readable(), "read returns 0 (EOF) without blocking");
        assert!(ev.is_read_closed());
    }

    #[test]
    fn waker_wakes_a_blocked_poll_from_another_thread() {
        let mut poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new(poll.registry(), Token(99)).unwrap());
        let w = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake().unwrap();
        });
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "woke early");
        assert_eq!(events.iter().next().unwrap().token(), Token(99));
        t.join().unwrap();
        // Edge-triggered: with no new wake, the next poll times out
        // even though the eventfd counter was never drained.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        // And a fresh wake after the un-drained one still fires.
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn timeout_is_honored() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(1);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }
}
