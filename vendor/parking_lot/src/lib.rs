//! Vendored minimal stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API: `read`,
//! `write`, and `lock` return guards directly instead of `Result`s. A
//! poisoned std lock means a holder panicked; matching parking_lot
//! semantics, the underlying data is handed out anyway.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free reader–writer lock with the parking_lot API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free mutex with the parking_lot API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
