//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build container has no network access, so the subset of the rand
//! 0.8 API that this workspace uses is implemented locally: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen_range`, `gen_bool`, and `gen`. The generator is a
//! xoshiro256++ variant seeded through SplitMix64 — deterministic for a
//! given seed, which is all the simulators require.

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128);
                lo + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        if lo == hi {
            return lo;
        }
        // Closed-unit variant so `hi` itself is reachable.
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64)
    }
}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// A range a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Values with an unconstrained uniform distribution.
pub trait Standard {
    fn standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++-style generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..9);
            assert!((3..9).contains(&x));
            let y = r.gen_range(5u64..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn degenerate_float_ranges_do_not_panic() {
        let mut r = StdRng::seed_from_u64(3);
        assert_eq!(r.gen_range(5.0f64..=5.0), 5.0);
        let x = r.gen_range(-100.0f64..=100.0);
        assert!((-100.0..=100.0).contains(&x));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
