//! Integration tests reproducing every worked example of the paper through
//! the public facade API, end to end.

use ltam::core::decision::{Decision, DenyReason};
use ltam::core::inaccessible::{find_inaccessible_traced, AuthsByLocation};
use ltam::core::model::{Authorization, EntryLimit};
use ltam::core::rules::{CountExpr, LocationOp, OpTuple, Rule, SubjectOp};
use ltam::engine::engine::AccessControlEngine;
use ltam::graph::examples::{fig4_cycle, ntu_campus};
use ltam::graph::{EffectiveGraph, Route};
use ltam::time::{Interval, IntervalSet, TemporalOp, Time};

/// §3.1: both routes stated in the paper validate on the Figure 2 model.
#[test]
fn section31_routes_hold() {
    let ntu = ntu_campus();
    let g = EffectiveGraph::build(&ntu.model);
    Route::simple(&ntu.model, &[ntu.sce_dean, ntu.sce_a, ntu.sce_b, ntu.cais])
        .expect("simple route from the paper");
    Route::complex(
        &g,
        &[
            ntu.eee_dean,
            ntu.eee_a,
            ntu.eee_go,
            ntu.sce_go,
            ntu.sce_a,
            ntu.sce_dean,
        ],
    )
    .expect("complex route from the paper");
    // A non-entry crossing between the schools must NOT be a route.
    assert!(Route::complex(&g, &[ntu.lab1, ntu.cais]).is_err());
}

/// Figure 4 + Tables 1 and 2, including the exact trace row sequence.
#[test]
fn table2_full_reproduction() {
    let f = fig4_cycle();
    let g = EffectiveGraph::build(&f.model);
    let alice = ltam::core::subject::SubjectId(0);
    let auth = |l, e: (u64, u64), x: (u64, u64)| {
        Authorization::new(
            Interval::lit(e.0, e.1),
            Interval::lit(x.0, x.1),
            alice,
            l,
            EntryLimit::Finite(1),
        )
        .unwrap()
    };
    let mut auths = AuthsByLocation::new();
    auths.insert(f.a, vec![auth(f.a, (2, 35), (20, 50))]);
    auths.insert(f.b, vec![auth(f.b, (40, 60), (55, 80))]);
    auths.insert(f.c, vec![auth(f.c, (38, 45), (70, 90))]);
    auths.insert(f.d, vec![auth(f.d, (5, 25), (10, 30))]);

    let (report, trace) = find_inaccessible_traced(&g, &auths);
    assert_eq!(report.inaccessible, vec![f.c]);
    assert_eq!(
        report.grant_times[&f.a],
        IntervalSet::of(Interval::lit(2, 35))
    );
    assert_eq!(
        report.departure_times[&f.a],
        IntervalSet::of(Interval::lit(20, 50))
    );
    assert_eq!(
        report.grant_times[&f.b],
        IntervalSet::of(Interval::lit(40, 50))
    );
    assert_eq!(
        report.departure_times[&f.b],
        IntervalSet::of(Interval::lit(55, 80))
    );
    assert_eq!(
        report.grant_times[&f.d],
        IntervalSet::of(Interval::lit(20, 25))
    );
    assert_eq!(
        report.departure_times[&f.d],
        IntervalSet::of(Interval::lit(20, 30))
    );
    assert!(report.grant_times[&f.c].is_empty());

    let labels: Vec<&str> = trace.rows.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(
        labels,
        vec![
            "Initiation".to_string(),
            format!("Update {}", f.a),
            format!("Update {}", f.b),
            format!("Update {}", f.d),
            format!("Update {}", f.c),
            format!("Update {}", f.a),
        ]
    );
}

/// §5: the five-step walkthrough through the full enforcement engine,
/// movement events included.
#[test]
fn section5_through_the_engine() {
    let ntu = ntu_campus();
    let (cais, chipes) = (ntu.cais, ntu.chipes);
    let mut engine = AccessControlEngine::new(ntu.model);
    let alice = engine.profiles_mut().add_user("Alice", "researcher");
    let bob = engine.profiles_mut().add_user("Bob", "professor");
    engine.add_authorization(
        Authorization::new(
            Interval::lit(10, 20),
            Interval::lit(10, 50),
            alice,
            cais,
            EntryLimit::Finite(2),
        )
        .unwrap(),
    );
    engine.add_authorization(
        Authorization::new(
            Interval::lit(5, 35),
            Interval::lit(20, 100),
            bob,
            chipes,
            EntryLimit::Finite(1),
        )
        .unwrap(),
    );

    // t=10: granted according to A1.
    assert!(engine.request_enter(Time(10), alice, cais).is_granted());
    engine.observe_enter(Time(10), alice, cais);
    // t=15: Bob on CAIS — no authorization.
    assert_eq!(
        engine.request_enter(Time(15), bob, cais),
        Decision::Denied {
            reason: DenyReason::NoAuthorization
        }
    );
    // t=16: Bob on CHIPES — granted by A2.
    assert!(engine.request_enter(Time(16), bob, chipes).is_granted());
    engine.observe_enter(Time(16), bob, chipes);
    // t=20: Bob leaves CHIPES (inside [20, 100] — no violation).
    assert_eq!(engine.observe_exit(Time(20), bob, chipes), None);
    // t=30: Bob again on CHIPES — entry count exhausted.
    assert_eq!(
        engine.request_enter(Time(30), bob, chipes),
        Decision::Denied {
            reason: DenyReason::EntriesExhausted
        }
    );
    // The §5 path produced no violations: everything was by the book.
    assert!(engine.violations().is_empty());
    // The movements database knows where everyone was.
    assert_eq!(engine.movements().whereabouts(bob, Time(18)), Some(chipes));
    assert_eq!(engine.movements().whereabouts(bob, Time(25)), None);
}

/// §4 Examples 1–3 through the engine's rule pipeline (not just the rule
/// engine in isolation).
#[test]
fn section4_rules_through_the_engine() {
    let ntu = ntu_campus();
    let (cais, sce_go) = (ntu.cais, ntu.sce_go);
    let mut engine = AccessControlEngine::new(ntu.model);
    let alice = engine.profiles_mut().add_user("Alice", "researcher");
    let bob = engine.profiles_mut().add_user("Bob", "professor");
    engine.profiles_mut().set_supervisor(alice, bob);
    let a1 = engine.add_authorization(
        Authorization::new(
            Interval::lit(5, 20),
            Interval::lit(15, 50),
            alice,
            cais,
            EntryLimit::Finite(2),
        )
        .unwrap(),
    );

    // r1: supervisor mirror.
    engine.add_rule(Rule {
        valid_from: Time(7),
        base: a1,
        ops: OpTuple {
            subject_op: SubjectOp::SupervisorOf,
            count: CountExpr::Const(2),
            ..OpTuple::default()
        },
    });
    // r2: restricted window for the supervisor.
    engine.add_rule(Rule {
        valid_from: Time(7),
        base: a1,
        ops: OpTuple {
            entry_op: TemporalOp::Intersection(Interval::lit(10, 30)),
            subject_op: SubjectOp::SupervisorOf,
            count: CountExpr::Const(2),
            ..OpTuple::default()
        },
    });
    // r3: route coverage for Alice.
    engine.add_rule(Rule {
        valid_from: Time(7),
        base: a1,
        ops: OpTuple {
            location_op: LocationOp::AllRouteFrom { source: sce_go },
            count: CountExpr::Const(2),
            ..OpTuple::default()
        },
    });
    let report = engine.apply_rules();
    assert!(report.errors.is_empty());

    // a2: ([5,20],[15,50],(Bob,CAIS),2) exists.
    let bob_auths: Vec<&Authorization> = engine
        .db()
        .for_subject_location(bob, cais)
        .map(|(_, a)| a)
        .collect();
    assert!(bob_auths
        .iter()
        .any(|a| a.entry_window() == Interval::lit(5, 20)));
    // a3: ([10,20],[15,50],(Bob,CAIS),2) exists.
    assert!(bob_auths
        .iter()
        .any(|a| a.entry_window() == Interval::lit(10, 20)));
    // r3 covered SCE.GO for Alice.
    assert!(engine.db().for_subject_location(alice, sce_go).count() >= 1);

    // With the derived route coverage, CAIS is now reachable for Alice.
    let inaccessible = engine.inaccessible_for(alice);
    assert!(!inaccessible.is_inaccessible(cais));
}

/// §3.2: over-staying the example authorization raises the warning signal.
#[test]
fn section32_overstay_warning() {
    let ntu = ntu_campus();
    let cais = ntu.cais;
    let mut engine = AccessControlEngine::new(ntu.model);
    let alice = engine.profiles_mut().add_user("Alice", "researcher");
    engine.add_authorization(
        Authorization::new(
            Interval::lit(5, 40),
            Interval::lit(20, 100),
            alice,
            cais,
            EntryLimit::Finite(1),
        )
        .unwrap(),
    );
    assert!(engine.request_enter(Time(10), alice, cais).is_granted());
    engine.observe_enter(Time(10), alice, cais);
    assert!(engine.tick(Time(100)).is_empty());
    let raised = engine.tick(Time(101));
    assert_eq!(raised.len(), 1);
    assert!(matches!(
        raised[0],
        ltam::engine::violation::Violation::Overstay { .. }
    ));
}
