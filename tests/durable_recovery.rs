//! Crash-point recovery equivalence: durability is *semantically
//! invisible*.
//!
//! The contract (ISSUE 3 acceptance): for a 50k-event trace ingested
//! through the WAL-backed [`DurableEngine`], cutting the log at an
//! **arbitrary byte offset** — a record boundary, mid-record, even
//! mid-header — and recovering (latest snapshot + WAL-tail replay,
//! truncating the damage) yields a state from which ingesting the
//! remaining events produces the **exact violation multiset** of an
//! uninterrupted in-memory run. Corrupt tails truncate; they never panic
//! and never cost a committed record before the damage.
//!
//! The fixture store is built once (50k events, one mid-stream snapshot
//! at the halfway point, so recovery always exercises snapshot +
//! replay); each case damages a fresh copy.

use ltam_bench::violation_multiset as as_multiset;
use ltam_engine::batch::{apply_to_engine, Event};
use ltam_engine::violation::Violation;
use ltam_sim::{multi_shard_trace, TraceConfig};
use ltam_store::{DurableEngine, ScratchDir, StoreConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

const SHARDS: usize = 4;

fn store_config() -> StoreConfig {
    StoreConfig {
        segment_bytes: 128 * 1024,
        snapshot_every: 0, // the fixture controls its snapshot point
        fsync: false,      // tests measure semantics, not device flushes
        retention: None,
    }
}

struct Fixture {
    events: Vec<Event>,
    /// Violation multiset of the uninterrupted reference run.
    expected: Vec<Violation>,
    /// A fully-ingested store: snapshot at `snapshot_seq`, WAL tail for
    /// the rest. (Held so the scratch dir outlives every test case.)
    base: ScratchDir,
    snapshot_seq: u64,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let trace = multi_shard_trace(&TraceConfig {
            subjects: 128,
            events: 50_000,
            grid: 8,
            tick_every: 128,
            tailgater_fraction: 0.1,
            overstayer_fraction: 0.1,
            seed: 7,
        });

        let mut reference = trace.build_engine();
        for e in &trace.events {
            apply_to_engine(&mut reference, e);
        }
        let expected = as_multiset(reference.violations().to_vec());
        assert!(
            !expected.is_empty(),
            "fixture trace must exercise the violation taxonomy"
        );

        let base = ScratchDir::new("durable-recovery-base");
        let (mut durable, _alerts) = DurableEngine::create(
            base.path(),
            trace.build_policy_core(),
            SHARDS,
            store_config(),
        )
        .expect("create fixture store");
        // Ingest in server-sized batches: each batch is one WAL record
        // (the all-or-nothing unit), so a crash cut can land *between*
        // committed batches — one giant ingest would be one giant
        // record and "a record boundary" would mean end-of-file.
        let half = trace.events.len() / 2;
        for batch in trace.events[..half].chunks(256) {
            durable.ingest(batch).expect("ingest first half");
        }
        let snapshot_seq = durable.snapshot().expect("mid-stream snapshot");
        for batch in trace.events[half..].chunks(256) {
            durable.ingest(batch).expect("ingest second half");
        }
        // No final snapshot: the second half lives only in the WAL.

        Fixture {
            events: trace.events,
            expected,
            base,
            snapshot_seq,
        }
    })
}

/// Damage a copy of the fixture store with `damage`, recover, finish the
/// trace from wherever recovery resumed, and return the final violation
/// multiset alongside the resume point. `Err` is recovery *refusing*
/// (e.g. the damage quarantined acked events the snapshot does not
/// cover) — loud, never silent.
fn crash_recover_finish(damage: impl FnOnce(&[PathBuf])) -> std::io::Result<(Vec<Violation>, u64)> {
    let fx = fixture();
    let dir = ScratchDir::new("durable-recovery-case");
    ltam_store::copy_flat_dir(fx.base.path(), dir.path()).expect("copy fixture store");
    damage(&ltam_store::Wal::segment_files(dir.path()).expect("list WAL segments"));

    let (mut durable, _alerts, report) = DurableEngine::open(dir.path(), store_config())?;
    assert_eq!(report.snapshot_seq, fx.snapshot_seq);
    let resumed = durable.applied();
    assert!(
        resumed >= fx.snapshot_seq,
        "recovery can never resume before its snapshot"
    );
    assert!(
        resumed <= fx.events.len() as u64,
        "recovery can never invent events"
    );
    durable
        .ingest(&fx.events[resumed as usize..])
        .expect("post-recovery ingest");
    Ok((as_multiset(durable.engine().violations()), resumed))
}

/// No damage at all: recovery resumes at the end of the trace and the
/// multiset matches without replaying anything by hand.
#[test]
fn clean_restart_matches_the_uninterrupted_run() {
    let fx = fixture();
    let (got, resumed) = crash_recover_finish(|_| {}).expect("clean open");
    assert_eq!(resumed, fx.events.len() as u64);
    assert_eq!(got, fx.expected);
}

/// Crash at an exact record boundary: chop the newest segment after a
/// whole number of records (parsed from the record length prefixes).
#[test]
fn crash_at_a_record_boundary_matches() {
    let fx = fixture();
    let (got, resumed) = crash_recover_finish(|segments| {
        let last = segments.last().expect("segment exists");
        let bytes = std::fs::read(last).expect("read segment");
        // Walk the framing: 16-byte segment header, then 8-byte record
        // headers whose first u32 is the payload length.
        let mut boundaries = vec![16u64];
        let mut at = 16usize;
        while at + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            if at + 8 + len > bytes.len() {
                break;
            }
            at += 8 + len;
            boundaries.push(at as u64);
        }
        let cut = boundaries[boundaries.len() / 2];
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(last)
            .expect("open segment");
        f.set_len(cut).expect("truncate at boundary");
    })
    .expect("a torn tail always recovers");
    assert!(resumed < fx.events.len() as u64);
    // Group-commit atomicity, observed at recovery: each submitted
    // batch is one WAL record, so a boundary cut can only resume at a
    // whole number of the fixture's 256-event batches — never
    // mid-batch.
    let half = fx.events.len() as u64 / 2;
    let on_batch_boundary = if resumed <= half {
        resumed.is_multiple_of(256) || resumed == half
    } else {
        (resumed - half).is_multiple_of(256)
    };
    assert!(on_batch_boundary, "recovery resumed mid-batch at {resumed}");
    assert_eq!(got, fx.expected);
}

/// A torn final write (mid-record cut): the partial record truncates, the
/// lost events are re-ingested, and the multiset still matches.
#[test]
fn torn_final_record_matches() {
    let fx = fixture();
    let (got, _) = crash_recover_finish(|segments| {
        let last = segments.last().expect("segment exists");
        let len = std::fs::metadata(last).expect("metadata").len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(last)
            .expect("open segment");
        f.set_len(len - 5).expect("tear the final record");
    })
    .expect("a torn tail always recovers");
    assert_eq!(got, fx.expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// THE acceptance property: cut the WAL at an arbitrary byte offset
    /// (any segment, any position — header, record header, payload) and
    /// recover. Two outcomes are legal, and nothing else: recovery
    /// succeeds and finishing the trace yields the exact violation
    /// multiset of the uninterrupted run, or — when the cut destroyed a
    /// segment *behind* the snapshot, quarantining acked events the
    /// snapshot cannot replace (disk corruption, not a crash; a crash
    /// only ever tears the tail) — recovery refuses loudly. Silent
    /// divergence and panics are never acceptable.
    #[test]
    fn arbitrary_byte_cut_preserves_the_violation_multiset(
        segment_pick in 0usize..1000,
        cut_fraction in 0.0f64..1.0,
    ) {
        let fx = fixture();
        let outcome = crash_recover_finish(|segments| {
            let target = &segments[segment_pick % segments.len()];
            let len = std::fs::metadata(target).expect("metadata").len();
            let cut = (len as f64 * cut_fraction) as u64;
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(target)
                .expect("open segment");
            f.set_len(cut).expect("cut segment");
            // A real crash loses everything the device had not written:
            // segments after the cut point cannot exist. (Recovery also
            // tolerates them existing, but deleting matches reality.)
            let idx = segments.iter().position(|p| p == target).expect("target listed");
            for later in &segments[idx + 1..] {
                std::fs::remove_file(later).expect("remove later segment");
            }
        });
        match outcome {
            Ok((got, _)) => prop_assert_eq!(&got, &fx.expected),
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        }
    }

    /// Bit rot anywhere in the newest segment: recovery truncates from
    /// the flip, never panics, and the finished run still matches.
    #[test]
    fn bit_flip_in_the_tail_preserves_the_violation_multiset(
        offset_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let fx = fixture();
        let (got, _) = crash_recover_finish(|segments| {
            let last = segments.last().expect("segment exists");
            let mut bytes = std::fs::read(last).expect("read segment");
            let at = ((bytes.len() - 1) as f64 * offset_fraction) as usize;
            bytes[at] ^= 1 << bit;
            std::fs::write(last, &bytes).expect("write damaged segment");
        })
        .expect("damage to the newest segment always recovers");
        prop_assert_eq!(&got, &fx.expected);
    }
}
