//! THE observability acceptance test: the fsync count scraped over the
//! wire (KIND_METRICS) must equal the engine's own `wal_fsyncs` figure
//! EXACTLY — proof that the metrics layer sits on the real fsync path,
//! not on a lookalike that could drift from the truth it claims to
//! report.
//!
//! The metric registry is process-global, so this file deliberately
//! holds a SINGLE test: a sibling test creating its own store in the
//! same process would contaminate the counter and force a weaker
//! `>=` assertion. (The drill in `repro serve` handles multi-store
//! processes with a baseline delta; here one store means the raw
//! counter is the whole truth.)

use ltam::serve::{LtamClient, Server, ServerConfig};
use ltam::store::{DurableEngine, ScratchDir, StoreConfig, SNAPSHOT_VERSION};
use ltam_bench::serve_workload;
use ltam_sim::multi_shard_trace;

#[test]
fn wire_scraped_fsync_count_matches_the_engine_exactly() {
    let trace = multi_shard_trace(&serve_workload(32, 2_400));
    let n = trace.events.len();

    // Defensive even in a one-test file: the delta-vs-baseline form is
    // the one that stays correct if this process ever grows stores.
    let baseline =
        ltam::obs::counter_value(ltam::obs::registry(), "store_wal_fsyncs_total", &[]).unwrap_or(0);

    let dir = ScratchDir::new("metrics-exactness");
    let store = StoreConfig {
        segment_bytes: 1024 * 1024,
        snapshot_every: 0,
        fsync: true, // the whole point: real fsyncs, really counted
        retention: None,
    };
    let (engine, _alerts) =
        DurableEngine::create(dir.path(), trace.build_policy_core(), 2, store).unwrap();
    let server = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = LtamClient::connect(&server.local_addr().to_string()).unwrap();

    for chunk in trace.events.chunks(64) {
        client.ingest(chunk).unwrap();
    }
    let status = client.status().unwrap();
    assert_eq!(status.events_ingested, n as u64, "drill fully ingested");
    assert!(status.wal_fsyncs > 0, "fsync:true must actually fsync");

    // Scrape over the wire while no writers remain, and validate the
    // exposition against the full text grammar (duplicates rejected).
    let text = client.metrics().unwrap();
    let expo = ltam::obs::validate(&text).expect("scraped exposition is grammatical");

    let scraped = expo
        .value("store_wal_fsyncs_total", &[])
        .expect("fsync counter is exported") as u64;
    assert_eq!(
        scraped - baseline,
        status.wal_fsyncs,
        "scraped fsync count must match the engine's own figure exactly"
    );

    // Core series across every tier left tracks for this workload.
    for name in [
        "store_wal_records_total",
        "store_group_commits_total",
        "engine_decisions_total",
        "serve_connections_total",
    ] {
        assert!(expo.family_sum(name) > 0.0, "{name} is silent");
    }
    for hist in ["store_fsync_seconds", "serve_request_seconds"] {
        assert!(
            expo.family_sum(&format!("{hist}_count")) > 0.0,
            "{hist} recorded no samples"
        );
    }

    // The status satellite fields travel too: a live format version and
    // a sane uptime (this test runs in well under an hour).
    assert_eq!(status.snapshot_format_version, SNAPSHOT_VERSION);
    assert!(status.uptime_chronons < 3_600);

    drop(server.abort().unwrap());
}
