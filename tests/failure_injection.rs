//! Failure injection: malformed inputs, impossible sensor streams,
//! mid-flight revocations, and structural validation errors must be
//! rejected or flagged — never silently accepted.

use ltam::core::model::{AuthError, Authorization, EntryLimit};
use ltam::core::subject::SubjectId;
use ltam::engine::engine::AccessControlEngine;
use ltam::engine::movement::MovementsDb;
use ltam::engine::violation::Violation;
use ltam::graph::{GraphError, LocationId, LocationModel};
use ltam::sim::grid_building;
use ltam::time::{Interval, Time};

#[test]
fn out_of_order_sensor_stream_is_flagged_not_stored() {
    let world = grid_building(2, 2);
    let mut engine = AccessControlEngine::new(world.model.clone());
    let s = engine.profiles_mut().add_user("S", "staff");
    let entry = world.graph.global_entries()[0];
    for l in world.graph.locations() {
        engine.add_authorization(
            Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded).unwrap(),
        );
    }
    engine.request_enter(Time(10), s, entry);
    engine.observe_enter(Time(10), s, entry);
    // The sensor replays an old exit (time regression).
    let v = engine.observe_exit(Time(4), s, entry);
    assert!(matches!(v, Some(Violation::InconsistentMovement { .. })));
    // The log keeps only the consistent prefix.
    assert_eq!(engine.movements().len(), 1);
    assert_eq!(engine.movements().current_location(s), Some(entry));
}

#[test]
fn teleporting_subject_is_flagged() {
    let world = grid_building(2, 2);
    let mut engine = AccessControlEngine::new(world.model.clone());
    let s = engine.profiles_mut().add_user("S", "staff");
    let locs: Vec<LocationId> = world.graph.locations().collect();
    for &l in &locs {
        engine.add_authorization(
            Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded).unwrap(),
        );
    }
    engine.request_enter(Time(1), s, locs[0]);
    engine.observe_enter(Time(1), s, locs[0]);
    // A second enter without an exit: physically impossible.
    let v = engine.observe_enter(Time(2), s, locs[1]);
    assert!(matches!(v, Some(Violation::InconsistentMovement { .. })));
}

#[test]
fn movement_db_rejects_impossible_sequences_directly() {
    let mut db = MovementsDb::new();
    let s = SubjectId(0);
    let l = LocationId(0);
    assert!(db.record_exit(Time(0), s, l).is_err());
    db.record_enter(Time(1), s, l).unwrap();
    assert!(db.record_enter(Time(2), s, LocationId(1)).is_err());
    assert!(db.record_exit(Time(0), s, l).is_err()); // regression
    assert_eq!(db.len(), 1);
}

#[test]
fn definition4_violations_cannot_enter_the_db() {
    // Exit before entry start.
    let bad = Authorization::new(
        Interval::lit(10, 20),
        Interval::lit(5, 25),
        SubjectId(0),
        LocationId(0),
        EntryLimit::Finite(1),
    );
    assert!(matches!(bad, Err(AuthError::ExitStartsBeforeEntry { .. })));
    // And not through serde either.
    let json = r#"{
        "entry_window": {"start": 10, "end": {"At": 20}},
        "exit_window": {"start": 5, "end": {"At": 25}},
        "subject": 0, "location": 0, "limit": {"Finite": 1}
    }"#;
    let parsed: Result<Authorization, _> = serde_json::from_str(json);
    assert!(parsed.is_err());
}

#[test]
fn structural_graph_errors_are_descriptive() {
    let mut m = LocationModel::new("B");
    let a = m.add_primitive(m.root(), "a").unwrap();
    let b = m.add_primitive(m.root(), "b").unwrap();
    // Disconnected (no edge): validation names the unreachable location.
    m.set_entry(a).unwrap();
    match m.validate() {
        Err(GraphError::Disconnected { unreachable, .. }) => assert_eq!(unreachable, "b"),
        other => panic!("expected Disconnected, got {other:?}"),
    }
    m.add_edge(a, b).unwrap();
    assert!(m.validate().is_ok());
    // A nested graph without an entry is caught too.
    let wing = m.add_composite(m.root(), "wing").unwrap();
    let _c = m.add_primitive(wing, "c").unwrap();
    m.add_edge(wing, a).unwrap();
    assert!(matches!(m.validate(), Err(GraphError::NoEntry(n)) if n == "wing"));
}

#[test]
fn malformed_queries_fail_cleanly() {
    let world = grid_building(2, 2);
    let mut engine = AccessControlEngine::new(world.model.clone());
    engine.profiles_mut().add_user("A", "staff");
    for q in [
        "",
        "CAN A ENTER",
        "WHO IN R0_0 DURING [9, 2]",
        "ACCESSIBLE A",
        "WHERE A AT notanumber",
        "VIOLATIONS DURING [1",
    ] {
        assert!(engine.query(q).is_err(), "query {q:?} should fail");
    }
    // Unknown names are evaluation (not parse) errors.
    assert!(matches!(
        engine.query("WHERE Ghost AT 1"),
        Err(ltam::engine::query::QueryError::Eval(_))
    ));
    assert!(matches!(
        engine.query("WHO IN Nowhere AT 1"),
        Err(ltam::engine::query::QueryError::Eval(_))
    ));
}

#[test]
fn revocation_mid_stay_keeps_monitoring_consistent() {
    let world = grid_building(2, 2);
    let entry = world.graph.global_entries()[0];
    let mut engine = AccessControlEngine::new(world.model.clone());
    let s = engine.profiles_mut().add_user("S", "staff");
    let auth_id = engine.add_authorization(
        Authorization::new(
            Interval::lit(0, 10),
            Interval::lit(0, 10),
            s,
            entry,
            EntryLimit::Finite(1),
        )
        .unwrap(),
    );
    assert!(engine.request_enter(Time(1), s, entry).is_granted());
    engine.observe_enter(Time(1), s, entry);
    // The administrator revokes the authorization while S is inside.
    engine.revoke_authorization(auth_id);
    // The overstay scan has no window to enforce any more — no panic, no
    // spurious alert.
    assert!(engine.tick(Time(50)).is_empty());
    // The exit is still recorded; no exit-window violation can be checked
    // against a revoked authorization.
    assert_eq!(engine.observe_exit(Time(50), s, entry), None);
    assert_eq!(engine.movements().current_location(s), None);
}

#[test]
fn empty_and_inverted_intervals_are_unrepresentable() {
    assert!(Interval::closed(9u64, 2u64).is_err());
    assert!(serde_json::from_str::<Interval>(r#"{"start": 9, "end": {"At": 2}}"#).is_err());
}

/// Follower-side faults: the primary dies mid-snapshot-transfer,
/// mid-segment, and exactly on a group-commit batch boundary. In every
/// case the follower must resume cleanly or refuse loudly — never
/// diverge from the primary's history.
mod follower_faults {
    use std::io::Write;
    use std::net::TcpListener;
    use std::time::{Duration, Instant};

    use ltam::engine::batch::{apply_to_engine, Event};
    use ltam::serve::wire::{
        decode_request, encode_repl_chunk, encode_response, read_frame, write_frame, ReplChunk,
        ReplChunkMeta, ReplManifest, ReplRequest, ReplicaState, Request, Response,
        DEFAULT_MAX_FRAME_BYTES,
    };
    use ltam::serve::{bootstrap_follower, LtamClient, ReplicaConfig, Server, ServerConfig};
    use ltam::store::{DurableEngine, ReplFile, ReplFileId, ScratchDir, StoreConfig};
    use ltam::time::{Interval, Time};
    use ltam_bench::relay::TcpRelay;
    use ltam_bench::{serve_workload, violation_multiset};
    use ltam_sim::multi_shard_trace;

    fn primary_store() -> StoreConfig {
        StoreConfig {
            segment_bytes: 16 * 1024,
            snapshot_every: 0,
            fsync: true, // acked writes survive the kill; replication of lost acks is out of scope
            retention: None,
        }
    }

    fn follower_store() -> StoreConfig {
        StoreConfig {
            segment_bytes: 16 * 1024,
            snapshot_every: 0,
            fsync: false,
            retention: None,
        }
    }

    fn fast_replica(primary_addr: &str) -> ReplicaConfig {
        let mut config = ReplicaConfig::new(primary_addr);
        config.poll_interval = Duration::from_millis(2);
        config
    }

    /// Poll the follower until its replication loop reaches `want`.
    fn wait_for_state(probe: &mut LtamClient, want: ReplicaState) -> u64 {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let replica = probe
                .status()
                .expect("follower keeps serving status")
                .replica
                .expect("follower reports a replica block");
            if replica.state == want {
                return replica.watermark;
            }
            assert!(
                Instant::now() < deadline,
                "follower never reached {want:?}; stuck at {replica:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// The primary dies halfway through shipping the bootstrap
    /// snapshot. The follower must fail the bootstrap loudly, and the
    /// partial directory must not be openable as a store — a torn
    /// snapshot can never become a serving replica.
    #[test]
    fn primary_death_mid_snapshot_transfer_is_a_clean_refusal() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let snapshot = ReplFileId::Snapshot { seq: 64, epoch: 0 };
        let fake_primary = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let payload = read_frame(&mut sock, DEFAULT_MAX_FRAME_BYTES).unwrap();
            assert!(matches!(
                decode_request(&payload),
                Ok(Request::Repl(ReplRequest::Manifest))
            ));
            let manifest = ReplManifest {
                applied: 64,
                policy_epoch: 0,
                enforcement_epoch: 0,
                retention_watermark: 0,
                snapshot: Some(ReplFile {
                    file: snapshot,
                    len: 1 << 20,
                }),
                archives: Vec::new(),
                wal_segments: vec![0],
                epoch_marker: None,
            };
            write_frame(
                &mut sock,
                &encode_response(&Response::ReplManifest { manifest }),
            )
            .unwrap();
            let payload = read_frame(&mut sock, DEFAULT_MAX_FRAME_BYTES).unwrap();
            let Ok(Request::Repl(ReplRequest::Fetch { file, offset, len })) =
                decode_request(&payload)
            else {
                panic!("expected a snapshot fetch");
            };
            assert_eq!(file, snapshot);
            assert_eq!(offset, 0);
            let chunk = ReplChunk {
                meta: ReplChunkMeta {
                    file,
                    offset,
                    file_len: 1 << 20,
                    sealed: true,
                    applied: 64,
                    policy_epoch: 0,
                    enforcement_epoch: 0,
                    retention_watermark: 0,
                },
                bytes: vec![0xAB; (len as usize).min(4096)],
            };
            let mut frame = Vec::new();
            write_frame(&mut frame, &encode_repl_chunk(&chunk)).unwrap();
            // Half a frame, then death: the socket drops here.
            sock.write_all(&frame[..frame.len() / 2]).unwrap();
        });

        let dir = ScratchDir::new("follower-mid-snapshot");
        let err = bootstrap_follower(dir.path(), &addr, follower_store())
            .expect_err("a torn snapshot transfer must fail the bootstrap");
        fake_primary.join().unwrap();
        assert!(!err.to_string().is_empty());
        DurableEngine::open(dir.path(), follower_store())
            .expect_err("the partial bootstrap directory must not open as a store");
    }

    /// The primary dies while the follower is tailing the middle of an
    /// active WAL segment, with a loader still streaming. The follower
    /// parks `Disconnected` at a watermark no higher than what the
    /// primary durably holds, keeps serving reads, and — once the
    /// primary returns — resumes from its cursor and converges on the
    /// identical state.
    #[test]
    fn primary_death_mid_segment_parks_then_resumes_without_divergence() {
        let trace = multi_shard_trace(&serve_workload(48, 3_000));
        let n = trace.events.len();
        let final_tick = Event::Tick {
            now: Time(trace.max_time().get() + 1),
        };
        let mut reference = trace.build_engine();
        for e in trace.events.iter().chain(std::iter::once(&final_tick)) {
            apply_to_engine(&mut reference, e);
        }
        let expected = violation_multiset(reference.violations().to_vec());

        let p_dir = ScratchDir::new("mid-segment-primary");
        let f_dir = ScratchDir::new("mid-segment-follower");
        let (engine, _alerts) =
            DurableEngine::create(p_dir.path(), trace.build_policy_core(), 2, primary_store())
                .unwrap();
        let primary = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let p_addr = primary.local_addr().to_string();
        let relay = TcpRelay::start(&p_addr).unwrap();

        let mut loader = LtamClient::connect(&p_addr).unwrap();
        for chunk in trace.events[..n / 3].chunks(64) {
            loader.ingest(chunk).unwrap();
        }

        let f_engine = bootstrap_follower(f_dir.path(), relay.addr(), follower_store()).unwrap();
        let follower = Server::start_follower(
            f_engine,
            "127.0.0.1:0",
            ServerConfig::default(),
            fast_replica(relay.addr()),
        )
        .unwrap();
        let mut probe = LtamClient::connect(&follower.local_addr().to_string()).unwrap();
        probe
            .wait_for_watermark(n as u64 / 3, Duration::from_secs(20))
            .unwrap();

        // Stream the second third and kill the primary while the
        // follower is still tailing it — mid-active-segment, not at a
        // tidy stopping point.
        for chunk in trace.events[n / 3..2 * n / 3].chunks(64) {
            loader.ingest(chunk).unwrap();
        }
        drop(primary.abort().unwrap());

        let wm_at_death = wait_for_state(&mut probe, ReplicaState::Disconnected);
        // Parked, but still serving reads at its watermark.
        probe
            .violations_in(Interval::ALL)
            .expect("a parked follower keeps serving reads");

        // The primary returns on a fresh port behind the same relay
        // address; the follower must pick up where it left off.
        let (engine, _alerts, _report) =
            DurableEngine::open(p_dir.path(), primary_store()).unwrap();
        assert!(
            wm_at_death <= engine.applied(),
            "follower applied {} but the recovered primary only holds {}",
            wm_at_death,
            engine.applied()
        );
        let resumed = engine.applied() as usize;
        assert!(resumed >= 2 * (n / 3), "fsync'd acks survived the kill");
        let primary = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        relay.set_upstream(&primary.local_addr().to_string());

        let mut loader = LtamClient::connect(&primary.local_addr().to_string()).unwrap();
        for chunk in trace.events[resumed..].chunks(64) {
            loader.ingest(chunk).unwrap();
        }
        loader.ingest(&[final_tick]).unwrap();

        probe
            .wait_for_watermark(n as u64 + 1, Duration::from_secs(30))
            .unwrap();
        let status = probe.status().unwrap();
        let replica = status.replica.clone().unwrap();
        assert!(
            replica.watermark >= wm_at_death,
            "watermark regressed across the outage"
        );
        assert_eq!(
            violation_multiset(probe.violations_in(Interval::ALL).unwrap()),
            expected,
            "follower diverged from the uninterrupted reference"
        );
        let p_status = LtamClient::connect(&primary.local_addr().to_string())
            .unwrap()
            .status()
            .unwrap();
        assert_eq!(
            status.state_digest, p_status.state_digest,
            "follower state digest differs from the primary's"
        );

        drop(follower.abort().unwrap());
        drop(primary.abort().unwrap());
        relay.stop();
    }

    /// The primary dies exactly on a group-commit batch boundary: every
    /// acked batch is fully in the WAL, nothing is in flight, and the
    /// follower has confirmed it is caught up to precisely that
    /// sequence. Resume must continue from the boundary — no replays,
    /// no gaps, no divergence.
    #[test]
    fn primary_death_on_a_group_commit_boundary_resumes_exactly() {
        let trace = multi_shard_trace(&serve_workload(32, 2_000));
        let n = trace.events.len();
        let final_tick = Event::Tick {
            now: Time(trace.max_time().get() + 1),
        };
        let mut reference = trace.build_engine();
        for e in trace.events.iter().chain(std::iter::once(&final_tick)) {
            apply_to_engine(&mut reference, e);
        }
        let expected = violation_multiset(reference.violations().to_vec());

        let p_dir = ScratchDir::new("boundary-primary");
        let f_dir = ScratchDir::new("boundary-follower");
        let (engine, _alerts) =
            DurableEngine::create(p_dir.path(), trace.build_policy_core(), 2, primary_store())
                .unwrap();
        let primary = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let relay = TcpRelay::start(&primary.local_addr().to_string()).unwrap();

        let f_engine = bootstrap_follower(f_dir.path(), relay.addr(), follower_store()).unwrap();
        let follower = Server::start_follower(
            f_engine,
            "127.0.0.1:0",
            ServerConfig::default(),
            fast_replica(relay.addr()),
        )
        .unwrap();
        let mut probe = LtamClient::connect(&follower.local_addr().to_string()).unwrap();

        // First half: every batch acked, then the follower confirmed at
        // exactly the boundary sequence before the kill.
        let half = n / 2;
        let mut loader = LtamClient::connect(&primary.local_addr().to_string()).unwrap();
        for chunk in trace.events[..half].chunks(64) {
            loader.ingest(chunk).unwrap();
        }
        probe
            .wait_for_watermark(half as u64, Duration::from_secs(20))
            .unwrap();
        let engine = primary.abort().unwrap();
        assert_eq!(
            engine.applied(),
            half as u64,
            "the kill landed exactly on the last acked batch boundary"
        );
        drop(engine);

        let wm_at_death = wait_for_state(&mut probe, ReplicaState::Disconnected);
        assert_eq!(wm_at_death, half as u64);

        let (engine, _alerts, _report) =
            DurableEngine::open(p_dir.path(), primary_store()).unwrap();
        assert_eq!(engine.applied(), half as u64, "recovery kept the boundary");
        let primary = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        relay.set_upstream(&primary.local_addr().to_string());

        let mut loader = LtamClient::connect(&primary.local_addr().to_string()).unwrap();
        for chunk in trace.events[half..].chunks(64) {
            loader.ingest(chunk).unwrap();
        }
        loader.ingest(&[final_tick]).unwrap();

        probe
            .wait_for_watermark(n as u64 + 1, Duration::from_secs(30))
            .unwrap();
        let status = probe.status().unwrap();
        assert_eq!(status.events_ingested, n as u64 + 1, "no replays, no gaps");
        assert_eq!(
            violation_multiset(probe.violations_in(Interval::ALL).unwrap()),
            expected
        );
        let p_status = LtamClient::connect(&primary.local_addr().to_string())
            .unwrap()
            .status()
            .unwrap();
        assert_eq!(status.state_digest, p_status.state_digest);

        drop(follower.abort().unwrap());
        drop(primary.abort().unwrap());
        relay.stop();
    }
}

/// Auth-flavored follower faults: the wrong *kind* of credential. A
/// follower whose token authenticates but lacks the replicate scope
/// must park `Disconnected` (a credential problem, fixable by the
/// operator) and never `NeedsBootstrap` (a store problem, fixable
/// only by re-seeding) — the two recovery stories must not blur.
mod auth_faults {
    use std::time::{Duration, Instant};

    use ltam::core::capability::{AdminOp, AdminOutcome, Scope};
    use ltam::core::subject::SubjectId;
    use ltam::serve::wire::ReplicaState;
    use ltam::serve::{bootstrap_follower_as, LtamClient, ReplicaConfig, Server, ServerConfig};
    use ltam::store::{DurableEngine, ScratchDir, StoreConfig};
    use ltam::time::Interval;
    use ltam_bench::serve_workload;
    use ltam_sim::multi_shard_trace;

    const ROOT: &str = "root-secret";

    fn store(fsync: bool) -> StoreConfig {
        StoreConfig {
            segment_bytes: 16 * 1024,
            snapshot_every: 0,
            fsync,
            retention: None,
        }
    }

    fn mint(root: &mut LtamClient, scopes: Vec<Scope>, secret: &str) {
        let outcome = root
            .admin(AdminOp::MintToken {
                subject: SubjectId(901),
                scopes,
                validity: Interval::ALL,
                secret: secret.to_string(),
            })
            .unwrap();
        assert!(matches!(outcome, AdminOutcome::TokenMinted { .. }));
    }

    #[test]
    fn wrong_scope_token_parks_disconnected_never_needs_bootstrap() {
        let trace = multi_shard_trace(&serve_workload(8, 600));

        let p_dir = ScratchDir::new("authfault-primary");
        let (engine, _alerts) =
            DurableEngine::create(p_dir.path(), trace.build_policy_core(), 2, store(true)).unwrap();
        let config = ServerConfig {
            root_token: Some(ROOT.to_string()),
            ..ServerConfig::default()
        };
        let primary = Server::start(engine, "127.0.0.1:0", config.clone()).unwrap();
        let p_addr = primary.local_addr().to_string();
        let mut root = LtamClient::connect(&p_addr).unwrap();
        root.hello(ROOT).unwrap();
        root.admin(AdminOp::SetAuthRequired { required: true })
            .unwrap();
        mint(&mut root, vec![Scope::Replicate], "repl-secret");

        // Seed some history, then bootstrap legitimately. The final
        // mint doubles as a durable snapshot point, so the bootstrap
        // ships the seeded history too.
        let half = trace.events.len() / 2;
        for chunk in trace.events[..half].chunks(64) {
            root.ingest(chunk).unwrap();
        }
        mint(&mut root, vec![Scope::Query], "query-only-secret");
        let f_dir = ScratchDir::new("authfault-follower");
        let f_engine =
            bootstrap_follower_as(f_dir.path(), &p_addr, Some("repl-secret"), store(false))
                .unwrap();

        // ...but tail with a token that can only *query*. The identity
        // is real, the scope is wrong: every manifest probe dies
        // PermissionDenied and the loop parks Disconnected.
        let mut replica_config = ReplicaConfig::new(&p_addr);
        replica_config.poll_interval = Duration::from_millis(2);
        replica_config.token = Some("query-only-secret".to_string());
        let follower =
            Server::start_follower(f_engine, "127.0.0.1:0", config, replica_config).unwrap();
        let mut probe = LtamClient::connect(&follower.local_addr().to_string()).unwrap();
        probe.hello(ROOT).unwrap();

        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let replica = probe.status().unwrap().replica.unwrap();
            assert_ne!(
                replica.state,
                ReplicaState::NeedsBootstrap,
                "a scope refusal must not demand a re-seed"
            );
            if replica.state == ReplicaState::Disconnected {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "follower never parked: {replica:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        // The parked follower still serves authenticated reads from
        // its intact bootstrap-time store.
        assert_eq!(probe.status().unwrap().events_ingested, half as u64);

        // Swapping in the replicate-scoped secret — a pure credential
        // fix, no re-bootstrap — lets the same store resume the tail.
        drop(follower.abort().unwrap()); // release the store; restart with the right secret
        let (f_engine, _alerts, _report) =
            DurableEngine::open_with_shards(f_dir.path(), store(false), 2).unwrap();
        let mut replica_config = ReplicaConfig::new(&p_addr);
        replica_config.poll_interval = Duration::from_millis(2);
        replica_config.token = Some("repl-secret".to_string());
        let follower = Server::start_follower(
            f_engine,
            "127.0.0.1:0",
            ServerConfig {
                root_token: Some(ROOT.to_string()),
                ..ServerConfig::default()
            },
            replica_config,
        )
        .unwrap();
        let mut probe = LtamClient::connect(&follower.local_addr().to_string()).unwrap();
        probe.hello(ROOT).unwrap();
        for chunk in trace.events[half..].chunks(64) {
            root.ingest(chunk).unwrap();
        }
        probe
            .wait_for_watermark(trace.events.len() as u64, Duration::from_secs(30))
            .unwrap();
        assert_eq!(
            probe.status().unwrap().state_digest,
            root.status().unwrap().state_digest
        );

        drop(follower.abort().unwrap());
        drop(primary.abort().unwrap());
    }
}
