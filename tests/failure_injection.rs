//! Failure injection: malformed inputs, impossible sensor streams,
//! mid-flight revocations, and structural validation errors must be
//! rejected or flagged — never silently accepted.

use ltam::core::model::{AuthError, Authorization, EntryLimit};
use ltam::core::subject::SubjectId;
use ltam::engine::engine::AccessControlEngine;
use ltam::engine::movement::MovementsDb;
use ltam::engine::violation::Violation;
use ltam::graph::{GraphError, LocationId, LocationModel};
use ltam::sim::grid_building;
use ltam::time::{Interval, Time};

#[test]
fn out_of_order_sensor_stream_is_flagged_not_stored() {
    let world = grid_building(2, 2);
    let mut engine = AccessControlEngine::new(world.model.clone());
    let s = engine.profiles_mut().add_user("S", "staff");
    let entry = world.graph.global_entries()[0];
    for l in world.graph.locations() {
        engine.add_authorization(
            Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded).unwrap(),
        );
    }
    engine.request_enter(Time(10), s, entry);
    engine.observe_enter(Time(10), s, entry);
    // The sensor replays an old exit (time regression).
    let v = engine.observe_exit(Time(4), s, entry);
    assert!(matches!(v, Some(Violation::InconsistentMovement { .. })));
    // The log keeps only the consistent prefix.
    assert_eq!(engine.movements().len(), 1);
    assert_eq!(engine.movements().current_location(s), Some(entry));
}

#[test]
fn teleporting_subject_is_flagged() {
    let world = grid_building(2, 2);
    let mut engine = AccessControlEngine::new(world.model.clone());
    let s = engine.profiles_mut().add_user("S", "staff");
    let locs: Vec<LocationId> = world.graph.locations().collect();
    for &l in &locs {
        engine.add_authorization(
            Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded).unwrap(),
        );
    }
    engine.request_enter(Time(1), s, locs[0]);
    engine.observe_enter(Time(1), s, locs[0]);
    // A second enter without an exit: physically impossible.
    let v = engine.observe_enter(Time(2), s, locs[1]);
    assert!(matches!(v, Some(Violation::InconsistentMovement { .. })));
}

#[test]
fn movement_db_rejects_impossible_sequences_directly() {
    let mut db = MovementsDb::new();
    let s = SubjectId(0);
    let l = LocationId(0);
    assert!(db.record_exit(Time(0), s, l).is_err());
    db.record_enter(Time(1), s, l).unwrap();
    assert!(db.record_enter(Time(2), s, LocationId(1)).is_err());
    assert!(db.record_exit(Time(0), s, l).is_err()); // regression
    assert_eq!(db.len(), 1);
}

#[test]
fn definition4_violations_cannot_enter_the_db() {
    // Exit before entry start.
    let bad = Authorization::new(
        Interval::lit(10, 20),
        Interval::lit(5, 25),
        SubjectId(0),
        LocationId(0),
        EntryLimit::Finite(1),
    );
    assert!(matches!(bad, Err(AuthError::ExitStartsBeforeEntry { .. })));
    // And not through serde either.
    let json = r#"{
        "entry_window": {"start": 10, "end": {"At": 20}},
        "exit_window": {"start": 5, "end": {"At": 25}},
        "subject": 0, "location": 0, "limit": {"Finite": 1}
    }"#;
    let parsed: Result<Authorization, _> = serde_json::from_str(json);
    assert!(parsed.is_err());
}

#[test]
fn structural_graph_errors_are_descriptive() {
    let mut m = LocationModel::new("B");
    let a = m.add_primitive(m.root(), "a").unwrap();
    let b = m.add_primitive(m.root(), "b").unwrap();
    // Disconnected (no edge): validation names the unreachable location.
    m.set_entry(a).unwrap();
    match m.validate() {
        Err(GraphError::Disconnected { unreachable, .. }) => assert_eq!(unreachable, "b"),
        other => panic!("expected Disconnected, got {other:?}"),
    }
    m.add_edge(a, b).unwrap();
    assert!(m.validate().is_ok());
    // A nested graph without an entry is caught too.
    let wing = m.add_composite(m.root(), "wing").unwrap();
    let _c = m.add_primitive(wing, "c").unwrap();
    m.add_edge(wing, a).unwrap();
    assert!(matches!(m.validate(), Err(GraphError::NoEntry(n)) if n == "wing"));
}

#[test]
fn malformed_queries_fail_cleanly() {
    let world = grid_building(2, 2);
    let mut engine = AccessControlEngine::new(world.model.clone());
    engine.profiles_mut().add_user("A", "staff");
    for q in [
        "",
        "CAN A ENTER",
        "WHO IN R0_0 DURING [9, 2]",
        "ACCESSIBLE A",
        "WHERE A AT notanumber",
        "VIOLATIONS DURING [1",
    ] {
        assert!(engine.query(q).is_err(), "query {q:?} should fail");
    }
    // Unknown names are evaluation (not parse) errors.
    assert!(matches!(
        engine.query("WHERE Ghost AT 1"),
        Err(ltam::engine::query::QueryError::Eval(_))
    ));
    assert!(matches!(
        engine.query("WHO IN Nowhere AT 1"),
        Err(ltam::engine::query::QueryError::Eval(_))
    ));
}

#[test]
fn revocation_mid_stay_keeps_monitoring_consistent() {
    let world = grid_building(2, 2);
    let entry = world.graph.global_entries()[0];
    let mut engine = AccessControlEngine::new(world.model.clone());
    let s = engine.profiles_mut().add_user("S", "staff");
    let auth_id = engine.add_authorization(
        Authorization::new(
            Interval::lit(0, 10),
            Interval::lit(0, 10),
            s,
            entry,
            EntryLimit::Finite(1),
        )
        .unwrap(),
    );
    assert!(engine.request_enter(Time(1), s, entry).is_granted());
    engine.observe_enter(Time(1), s, entry);
    // The administrator revokes the authorization while S is inside.
    engine.revoke_authorization(auth_id);
    // The overstay scan has no window to enforce any more — no panic, no
    // spurious alert.
    assert!(engine.tick(Time(50)).is_empty());
    // The exit is still recorded; no exit-window violation can be checked
    // against a revoked authorization.
    assert_eq!(engine.observe_exit(Time(50), s, entry), None);
    assert_eq!(engine.movements().current_location(s), None);
}

#[test]
fn empty_and_inverted_intervals_are_unrepresentable() {
    assert!(Interval::closed(9u64, 2u64).is_err());
    assert!(serde_json::from_str::<Interval>(r#"{"start": 9, "end": {"At": 2}}"#).is_err());
}
