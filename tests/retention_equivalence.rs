//! The retention acceptance contract: a 100k-event trace under
//! aggressive pruning — **with a crash and recovery in the middle** —
//! answers every historical query exactly like an unpruned volatile
//! run, as long as the answer is reachable through the live tier or the
//! archive; and the live tier stays bounded instead of growing with the
//! trace.
//!
//! Query-by-query this covers the paper's history workloads:
//! `whereabouts` (§5's "where was s at t"), presence windows, contact
//! tracing across the horizon boundary (§1's SARS scenario), and the
//! violation report. The refusal half of the contract is asserted too:
//! destroy the archive and queries below the watermark return
//! [`HistoryError::Unarchived`] rather than silently under-reporting.

use ltam::core::retention::RetentionPolicy;
use ltam::core::subject::SubjectId;
use ltam::engine::batch::apply_to_engine;
use ltam::graph::LocationId;
use ltam::time::{Interval, Time};
use ltam_bench::{contact_multiset, live_history_records, violation_multiset};
use ltam_sim::{multi_shard_trace, TraceConfig};
use ltam_store::{DurableEngine, HistoryError, ScratchDir, StoreConfig};

const EVENTS: usize = 100_000;
const SUBJECTS: usize = 256;
const SHARDS: usize = 4;
const HORIZON: u64 = 150; // aggressive: a small slice of the ~16k-chronon span

fn config() -> StoreConfig {
    StoreConfig {
        segment_bytes: 512 * 1024,
        snapshot_every: 10_000,
        fsync: false, // semantics under test, not device flushes
        retention: Some(RetentionPolicy::keep_last(HORIZON)),
    }
}

#[test]
fn pruned_crashed_recovered_store_answers_like_an_unpruned_run() {
    let trace = multi_shard_trace(&TraceConfig {
        subjects: SUBJECTS,
        events: EVENTS,
        grid: 8,
        tick_every: 256,
        tailgater_fraction: 0.1,
        overstayer_fraction: 0.1,
        seed: 42,
    });
    let span = trace.max_time();
    assert!(
        span.get() > HORIZON * 10,
        "horizon must be aggressive relative to the span ({span})"
    );

    // The unpruned, volatile, uninterrupted reference.
    let mut reference = trace.build_engine();
    for e in &trace.events {
        apply_to_engine(&mut reference, e);
    }
    let total_records =
        reference.movements().len() + reference.audit().len() + reference.violations().len();

    // The pruned durable run, crashed at ~60% and recovered. The crash
    // point deliberately avoids the snapshot cadence (10k), so the
    // crash window contains retention runs whose prunes were archived
    // but never snapshotted — recovery resurrects those records into
    // live state *alongside* their stranded archive segments, which is
    // exactly the double-count hazard the watermark-clipped merges
    // exist for.
    let dir = ScratchDir::new("retention-equivalence");
    let crash_at = EVENTS * 6 / 10 + 1_500;
    {
        let (mut durable, _alerts) =
            DurableEngine::create(dir.path(), trace.build_policy_core(), SHARDS, config())
                .expect("create store");
        for chunk in trace.events[..crash_at].chunks(1_000) {
            durable.ingest(chunk).expect("durable ingest");
        }
        assert!(durable.retention_watermark() > Time::ZERO, "pruning ran");
    } // crash: drop without a final snapshot
    let (mut durable, _alerts, report) =
        DurableEngine::open(dir.path(), config()).expect("recover store");
    assert!(
        report.archive_covered_to >= report.retention_watermark,
        "archive must reach the recovered watermark"
    );
    let resumed = durable.applied() as usize;
    durable
        .ingest(&trace.events[resumed..])
        .expect("post-recovery ingest");
    assert!(durable.take_retention_error().is_none());

    let watermark = durable.retention_watermark();
    assert!(
        watermark > Time(span.get() - HORIZON * 3),
        "watermark {watermark} should track the trace span {span}"
    );

    // Live state is bounded by the horizon, not the trace length.
    let live = live_history_records(durable.engine());
    assert!(
        live * 10 <= total_records,
        "live tier not bounded: {live} of {total_records} records"
    );

    // 1. Violation report over all time: exact multiset equivalence.
    let all = Interval::ALL;
    let got = violation_multiset(durable.violations_in(all).expect("tiered violations"));
    let want = violation_multiset(reference.violations().to_vec());
    assert_eq!(got.len(), want.len());
    assert_eq!(got, want, "violation multisets diverge");

    // 2. Whereabouts at sampled (subject, time) points across the whole
    // span — inside the horizon AND deep below the watermark.
    for i in (0..SUBJECTS as u32).step_by(17) {
        let s = SubjectId(i);
        for q in 0..=16 {
            let t = Time(span.get() * q / 16);
            let got = durable.whereabouts(s, t).expect("tiered whereabouts");
            let want = reference.movements().whereabouts(s, t);
            assert_eq!(got, want, "whereabouts({s}, {t})");
        }
    }

    // 3. Contact tracing over the whole span, crossing the boundary.
    for i in (0..SUBJECTS as u32).step_by(41) {
        let s = SubjectId(i);
        let got = contact_multiset(durable.contacts(s, all).expect("tiered contacts"));
        let want = contact_multiset(reference.movements().contacts(s, all));
        assert_eq!(got, want, "contacts({s}) diverge");
        assert!(
            i != 41 || !got.is_empty(),
            "sampled subject should have contacts in a dense trace"
        );
    }

    // 4. Presence windows straddling the watermark.
    let boundary = Interval::lit(watermark.get().saturating_sub(200), watermark.get() + 200);
    for l in [LocationId(1), LocationId(9), LocationId(30)] {
        let mut got = durable
            .present_during(l, boundary)
            .expect("tiered presence");
        let mut want = reference.movements().present_during(l, boundary);
        let key =
            |r: &(SubjectId, Interval)| (r.0, r.1.start(), r.1.end().finite().unwrap_or(Time::MAX));
        got.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(got, want, "presence in {l} diverges");
    }

    // 5. The refusal half: with the archive destroyed, queries below
    // the watermark refuse loudly instead of under-reporting...
    for entry in std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
    {
        if entry.file_name().to_string_lossy().ends_with(".arch") {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }
    let (durable, _alerts, _) = {
        drop(durable);
        DurableEngine::open(dir.path(), config()).expect("reopen store")
    };
    let err = durable.contacts(SubjectId(0), all).unwrap_err();
    assert!(matches!(err, HistoryError::Unarchived { .. }), "{err}");
    // ...while queries wholly inside the live window still answer.
    let recent = Interval::new(durable.retention_watermark(), ltam::time::Bound::Unbounded)
        .expect("valid interval");
    assert!(durable.contacts(SubjectId(0), recent).is_ok());
}
