//! Watermark monotonicity: a follower's published read watermark may
//! stall, but it must never move backward — not across network cuts
//! and reconnects, not across a follower kill + re-bootstrap, and not
//! across a policy-epoch swap (which parks the follower for
//! re-bootstrap rather than risking divergence).

use std::time::{Duration, Instant};

use ltam::core::capability::{AdminOp, AdminOutcome, Scope, TokenId};
use ltam::core::subject::SubjectId;
use ltam::engine::batch::{apply_to_engine, Event};
use ltam::serve::{
    bootstrap_follower, bootstrap_follower_as, LtamClient, ReplicaConfig, ReplicaState, Server,
    ServerConfig,
};
use ltam::store::{DurableEngine, ScratchDir, StoreConfig};
use ltam::time::{Interval, Time};
use ltam_bench::relay::TcpRelay;
use ltam_bench::serve_workload;
use ltam_sim::multi_shard_trace;

fn primary_store() -> StoreConfig {
    StoreConfig {
        segment_bytes: 16 * 1024,
        snapshot_every: 0,
        fsync: true,
        retention: None,
    }
}

fn follower_store() -> StoreConfig {
    StoreConfig {
        segment_bytes: 16 * 1024,
        snapshot_every: 0,
        fsync: false,
        retention: None,
    }
}

fn fast_replica(primary_addr: &str, floor: u64) -> ReplicaConfig {
    let mut config = ReplicaConfig::new(primary_addr);
    config.poll_interval = Duration::from_millis(2);
    config.watermark_floor = floor;
    config
}

/// Assert the probed watermark never drops below `last`, returning the
/// new high-water mark.
fn assert_monotone(probe: &mut LtamClient, last: u64, context: &str) -> u64 {
    let watermark = probe
        .watermark()
        .expect("follower answers watermark probes");
    assert!(
        watermark >= last,
        "watermark regressed {last} -> {watermark} ({context})"
    );
    watermark
}

/// The follower's link to the primary is severed and re-established
/// repeatedly while a loader streams events. The watermark, sampled
/// continuously, never regresses, and the follower converges once the
/// stream ends.
#[test]
fn watermark_is_monotone_across_reconnects() {
    let trace = multi_shard_trace(&serve_workload(32, 2_400));
    let n = trace.events.len();

    let p_dir = ScratchDir::new("reconnect-primary");
    let f_dir = ScratchDir::new("reconnect-follower");
    let (engine, _alerts) =
        DurableEngine::create(p_dir.path(), trace.build_policy_core(), 2, primary_store()).unwrap();
    let primary = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let p_addr = primary.local_addr().to_string();
    let relay = TcpRelay::start(&p_addr).unwrap();

    let f_engine = bootstrap_follower(f_dir.path(), relay.addr(), follower_store()).unwrap();
    let follower = Server::start_follower(
        f_engine,
        "127.0.0.1:0",
        ServerConfig::default(),
        fast_replica(relay.addr(), 0),
    )
    .unwrap();
    let mut probe = LtamClient::connect(&follower.local_addr().to_string()).unwrap();

    let mut loader = LtamClient::connect(&p_addr).unwrap();
    let mut last = 0u64;
    for (i, chunk) in trace.events.chunks(64).enumerate() {
        loader.ingest(chunk).unwrap();
        last = assert_monotone(&mut probe, last, "while streaming");
        if i % 8 == 7 {
            relay.sever(); // cut the follower's link mid-stream
            last = assert_monotone(&mut probe, last, "just after a cut");
        }
    }

    probe
        .wait_for_watermark(n as u64, Duration::from_secs(30))
        .expect("follower reconnects through every cut and converges");
    assert_monotone(&mut probe, last, "after convergence");

    drop(follower.abort().unwrap());
    drop(primary.abort().unwrap());
    relay.stop();
}

/// A follower is killed mid-stream and a replacement is bootstrapped
/// with the dead follower's watermark as its floor: the replacement
/// never publishes a watermark below that floor, even before it has
/// caught up.
#[test]
fn watermark_is_monotone_across_a_rebootstrap() {
    let trace = multi_shard_trace(&serve_workload(32, 2_400));
    let n = trace.events.len();

    let p_dir = ScratchDir::new("rebootstrap-primary");
    let (engine, _alerts) =
        DurableEngine::create(p_dir.path(), trace.build_policy_core(), 2, primary_store()).unwrap();
    let primary = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let p_addr = primary.local_addr().to_string();

    let f1_dir = ScratchDir::new("rebootstrap-follower1");
    let f1_engine = bootstrap_follower(f1_dir.path(), &p_addr, follower_store()).unwrap();
    let follower1 = Server::start_follower(
        f1_engine,
        "127.0.0.1:0",
        ServerConfig::default(),
        fast_replica(&p_addr, 0),
    )
    .unwrap();
    let mut probe = LtamClient::connect(&follower1.local_addr().to_string()).unwrap();

    let mut loader = LtamClient::connect(&p_addr).unwrap();
    let half = n / 2;
    for chunk in trace.events[..half].chunks(64) {
        loader.ingest(chunk).unwrap();
    }
    probe
        .wait_for_watermark(half as u64, Duration::from_secs(20))
        .unwrap();
    let floor = probe.watermark().unwrap();
    drop(follower1.abort().unwrap()); // the follower dies

    // Its replacement inherits the served watermark as a floor.
    let f2_dir = ScratchDir::new("rebootstrap-follower2");
    let f2_engine = bootstrap_follower(f2_dir.path(), &p_addr, follower_store()).unwrap();
    let follower2 = Server::start_follower(
        f2_engine,
        "127.0.0.1:0",
        ServerConfig::default(),
        fast_replica(&p_addr, floor),
    )
    .unwrap();
    let mut probe = LtamClient::connect(&follower2.local_addr().to_string()).unwrap();
    let mut last = assert_monotone(&mut probe, floor, "first sample after re-bootstrap");

    for chunk in trace.events[half..].chunks(64) {
        loader.ingest(chunk).unwrap();
        last = assert_monotone(&mut probe, last, "while catching up");
    }
    probe
        .wait_for_watermark(n as u64, Duration::from_secs(30))
        .unwrap();

    drop(follower2.abort().unwrap());
    drop(primary.abort().unwrap());
}

/// A policy edit on the primary swaps the policy epoch. Tailing cannot
/// carry policy edits (they are not WAL records), so the follower must
/// park `NeedsBootstrap` — watermark frozen, reads still served — and
/// a re-bootstrap with that watermark as the floor converges on the
/// new epoch without ever regressing.
#[test]
fn watermark_is_monotone_across_a_policy_epoch_swap() {
    let trace = multi_shard_trace(&serve_workload(32, 2_400));
    let n = trace.events.len();
    let final_tick = Event::Tick {
        now: Time(trace.max_time().get() + 1),
    };
    let mut reference = trace.build_engine();
    for e in trace.events.iter().chain(std::iter::once(&final_tick)) {
        apply_to_engine(&mut reference, e);
    }

    let p_dir = ScratchDir::new("epoch-primary");
    let (engine, _alerts) =
        DurableEngine::create(p_dir.path(), trace.build_policy_core(), 2, primary_store()).unwrap();
    let primary = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let relay = TcpRelay::start(&primary.local_addr().to_string()).unwrap();

    let f1_dir = ScratchDir::new("epoch-follower1");
    let f1_engine = bootstrap_follower(f1_dir.path(), relay.addr(), follower_store()).unwrap();
    let follower1 = Server::start_follower(
        f1_engine,
        "127.0.0.1:0",
        ServerConfig::default(),
        fast_replica(relay.addr(), 0),
    )
    .unwrap();
    let mut probe = LtamClient::connect(&follower1.local_addr().to_string()).unwrap();

    let half = n / 2;
    let mut loader = LtamClient::connect(&primary.local_addr().to_string()).unwrap();
    for chunk in trace.events[..half].chunks(64) {
        loader.ingest(chunk).unwrap();
    }
    probe
        .wait_for_watermark(half as u64, Duration::from_secs(20))
        .unwrap();

    // The administrator edits the policy: stop the primary, apply the
    // edit as one durable epoch swap, bring it back.
    let mut engine = primary.abort().unwrap();
    engine.update_policy(|_| ()).unwrap();
    assert_eq!(engine.policy_epoch(), 1);
    let primary = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    relay.set_upstream(&primary.local_addr().to_string());

    // The follower sees the new epoch and parks — watermark frozen at
    // its pre-swap value, reads still served, nothing applied from the
    // foreign epoch.
    let deadline = Instant::now() + Duration::from_secs(20);
    let frozen = loop {
        let replica = probe.status().unwrap().replica.unwrap();
        if replica.state == ReplicaState::NeedsBootstrap {
            break replica.watermark;
        }
        assert!(
            Instant::now() < deadline,
            "follower never parked on the epoch swap: {replica:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(frozen >= half as u64);
    assert_monotone(&mut probe, frozen, "while parked");
    drop(follower1.abort().unwrap());

    // Re-bootstrap onto the new epoch with the frozen watermark as the
    // floor; finish the trace and converge.
    let f2_dir = ScratchDir::new("epoch-follower2");
    let f2_engine = bootstrap_follower(f2_dir.path(), relay.addr(), follower_store()).unwrap();
    assert_eq!(
        f2_engine.policy_epoch(),
        1,
        "bootstrap lands on the new epoch"
    );
    let follower2 = Server::start_follower(
        f2_engine,
        "127.0.0.1:0",
        ServerConfig::default(),
        fast_replica(relay.addr(), frozen),
    )
    .unwrap();
    let mut probe = LtamClient::connect(&follower2.local_addr().to_string()).unwrap();
    let mut last = assert_monotone(&mut probe, frozen, "first sample on the new epoch");

    let mut loader = LtamClient::connect(&primary.local_addr().to_string()).unwrap();
    for chunk in trace.events[half..].chunks(64) {
        loader.ingest(chunk).unwrap();
        last = assert_monotone(&mut probe, last, "while catching up on the new epoch");
    }
    loader.ingest(&[final_tick]).unwrap();
    probe
        .wait_for_watermark(n as u64 + 1, Duration::from_secs(30))
        .unwrap();
    assert_monotone(&mut probe, last, "after convergence");

    // No divergence across the swap: digests match.
    let p_status = LtamClient::connect(&primary.local_addr().to_string())
        .unwrap()
        .status()
        .unwrap();
    let f_status = probe.status().unwrap();
    assert_eq!(f_status.state_digest, p_status.state_digest);
    assert_eq!(f_status.replica.unwrap().primary_epoch, 1);

    drop(follower2.abort().unwrap());
    drop(primary.abort().unwrap());
    relay.stop();
}

/// Mint a replicate-scoped token over the wire and return its id.
fn mint_repl_token(root: &mut LtamClient, secret: &str) -> TokenId {
    match root
        .admin(AdminOp::MintToken {
            subject: SubjectId(900),
            scopes: vec![Scope::Replicate],
            validity: Interval::ALL,
            secret: secret.to_string(),
        })
        .unwrap()
    {
        AdminOutcome::TokenMinted { id } => id,
        other => panic!("unexpected mint outcome {other:?}"),
    }
}

/// An admin-op and situation-op storm concurrent with a tailing
/// follower: wire-auth edits (mint/revoke/trust) and situation ops
/// (responders, declarations, pins, constraints) all bump the policy
/// epoch without touching the enforcement epoch, and their snapshots
/// leave the WAL uncompacted — so a briefly-lagging follower keeps
/// tailing straight through the storm. It must never park
/// `NeedsBootstrap`, and it converges to the same state digest.
#[test]
fn admin_and_situation_storm_never_parks_a_tailing_follower() {
    use ltam::situate::{IncidentId, SituationMode, SituationOp, WorkflowConstraint};

    const ROOT: &str = "storm-root";
    let trace = multi_shard_trace(&serve_workload(16, 1_200));
    let n = trace.events.len();

    let p_dir = ScratchDir::new("storm-primary");
    let (engine, _alerts) =
        DurableEngine::create(p_dir.path(), trace.build_policy_core(), 2, primary_store()).unwrap();
    let config = ServerConfig {
        root_token: Some(ROOT.to_string()),
        ..ServerConfig::default()
    };
    let primary = Server::start(engine, "127.0.0.1:0", config.clone()).unwrap();
    let p_addr = primary.local_addr().to_string();
    let mut root = LtamClient::connect(&p_addr).unwrap();
    root.hello(ROOT).unwrap();

    let f_dir = ScratchDir::new("storm-follower");
    let f_engine = bootstrap_follower(f_dir.path(), &p_addr, follower_store()).unwrap();
    let follower =
        Server::start_follower(f_engine, "127.0.0.1:0", config, fast_replica(&p_addr, 0)).unwrap();
    let mut probe = LtamClient::connect(&follower.local_addr().to_string()).unwrap();
    probe.hello(ROOT).unwrap();

    // Interleave the event stream with the storm: every chunk of 64
    // events is followed by one wire-auth edit and one situation op.
    // The 16 KiB segments mean the WAL rotates often — if any of these
    // edits compacted the log behind the follower's cursor, it would
    // park NeedsBootstrap within a few chunks.
    let mut last = 0u64;
    let mut situation_ops = 0u64;
    for (i, chunk) in trace.events.chunks(64).enumerate() {
        root.ingest(chunk).unwrap();
        match i % 3 {
            0 => {
                root.admin(AdminOp::MintToken {
                    subject: SubjectId(5_000 + i as u32),
                    scopes: vec![Scope::Ingest { locations: None }],
                    validity: Interval::ALL,
                    secret: format!("storm-{i}"),
                })
                .unwrap();
            }
            1 => {
                root.admin(AdminOp::SetTrust {
                    subject: SubjectId(5_000 + i as u32),
                    level: 3,
                })
                .unwrap();
            }
            _ => {}
        }
        let op = match i % 4 {
            0 => SituationOp::AddResponder(SubjectId(6_000 + i as u32)),
            1 => SituationOp::Declare(SituationMode::Emergency {
                incident: IncidentId(i as u64),
                until: Time(u64::MAX),
            }),
            2 => SituationOp::AddConstraint(WorkflowConstraint::SeparationOfDuty {
                first: ltam::graph::LocationId(1),
                second: ltam::graph::LocationId(2),
                window: 10,
            }),
            _ => SituationOp::Declare(SituationMode::Normal),
        };
        root.situation(op).unwrap();
        situation_ops += 1;

        let replica = probe.status().unwrap().replica.unwrap();
        assert_ne!(
            replica.state,
            ReplicaState::NeedsBootstrap,
            "a tail-transparent edit storm must never park the follower (chunk {i})"
        );
        last = assert_monotone(&mut probe, last, "during the storm");
    }

    // Situation ops consume WAL sequence numbers like events, so the
    // convergence target is the primary's own applied count.
    let p_status = root.status().unwrap();
    assert!(p_status.events_ingested >= n as u64 + situation_ops);
    probe
        .wait_for_watermark(p_status.events_ingested, Duration::from_secs(30))
        .expect("the follower tails through the whole storm");

    let f_status = probe.status().unwrap();
    assert_eq!(f_status.state_digest, p_status.state_digest);
    // Every situation op replayed in-stream bumps the follower's policy
    // epoch (wire-auth edits are primary-local, so the primary's count
    // runs ahead of it); the enforcement epoch never moved on either.
    assert!(
        f_status.policy_epoch >= situation_ops,
        "follower replayed {} policy bumps for {situation_ops} situation ops",
        f_status.policy_epoch
    );
    assert_eq!(f_status.enforcement_epoch, p_status.enforcement_epoch);
    let replica = f_status.replica.unwrap();
    assert_ne!(replica.state, ReplicaState::NeedsBootstrap);

    drop(follower.abort().unwrap());
    drop(primary.abort().unwrap());
}

/// Replication against a locked wire: an anonymous bootstrap is
/// refused outright; a replicate-scoped token bootstraps and tails
/// (straight through wire-auth-only policy-epoch bumps); revoking the
/// token mid-tail parks the follower `Disconnected` — *not*
/// `NeedsBootstrap`, its store is not suspect, only its credential —
/// and re-minting the same secret resumes the tail with a monotone
/// watermark and a matching digest.
#[test]
fn replication_under_auth_revocation_parks_disconnected_and_remint_resumes() {
    const ROOT: &str = "root-secret";
    const REPL: &str = "repl-secret";
    let trace = multi_shard_trace(&serve_workload(16, 1_200));
    let n = trace.events.len();

    let p_dir = ScratchDir::new("auth-repl-primary");
    let (engine, _alerts) =
        DurableEngine::create(p_dir.path(), trace.build_policy_core(), 2, primary_store()).unwrap();
    let config = ServerConfig {
        root_token: Some(ROOT.to_string()),
        ..ServerConfig::default()
    };
    let primary = Server::start(engine, "127.0.0.1:0", config.clone()).unwrap();
    let p_addr = primary.local_addr().to_string();

    let mut root = LtamClient::connect(&p_addr).unwrap();
    root.hello(ROOT).unwrap();
    root.admin(AdminOp::SetAuthRequired { required: true })
        .unwrap();
    let token_id = mint_repl_token(&mut root, REPL);

    // An anonymous bootstrap cannot even read the manifest.
    let anon_dir = ScratchDir::new("auth-repl-anon");
    assert!(
        bootstrap_follower(anon_dir.path(), &p_addr, follower_store()).is_err(),
        "anonymous bootstrap must be refused by a locked primary"
    );

    // A replicate-scoped bootstrap succeeds, and the tail authenticates.
    let f_dir = ScratchDir::new("auth-repl-follower");
    let f_engine =
        bootstrap_follower_as(f_dir.path(), &p_addr, Some(REPL), follower_store()).unwrap();
    let mut replica_config = fast_replica(&p_addr, 0);
    replica_config.token = Some(REPL.to_string());
    let follower =
        Server::start_follower(f_engine, "127.0.0.1:0", config.clone(), replica_config).unwrap();
    let mut probe = LtamClient::connect(&follower.local_addr().to_string()).unwrap();
    probe.hello(ROOT).unwrap();

    let half = n / 2;
    for chunk in trace.events[..half].chunks(64) {
        root.ingest(chunk).unwrap();
    }
    probe
        .wait_for_watermark(half as u64, Duration::from_secs(20))
        .unwrap();

    // A wire-auth-only edit (another mint) bumps the policy epoch but
    // not the enforcement epoch: the follower tails straight through
    // it instead of parking for re-bootstrap.
    mint_repl_token(&mut root, "bystander-secret");
    let three_quarters = half + (n - half) / 2;
    for chunk in trace.events[half..three_quarters].chunks(64) {
        root.ingest(chunk).unwrap();
    }
    probe
        .wait_for_watermark(three_quarters as u64, Duration::from_secs(20))
        .unwrap();

    // Revocation mid-tail: the follower's next fetch is refused and it
    // parks Disconnected. Its store is intact, so it must NOT demand a
    // re-bootstrap.
    root.admin(AdminOp::RevokeToken { id: token_id }).unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    let frozen = loop {
        let replica = probe.status().unwrap().replica.unwrap();
        assert_ne!(
            replica.state,
            ReplicaState::NeedsBootstrap,
            "a credential refusal must not be mistaken for store divergence"
        );
        if replica.state == ReplicaState::Disconnected {
            break replica.watermark;
        }
        assert!(
            Instant::now() < deadline,
            "follower never parked on revocation: {replica:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };

    // While parked, new primary traffic does not leak across: the
    // watermark holds and the state stays Disconnected.
    for chunk in trace.events[three_quarters..].chunks(64) {
        root.ingest(chunk).unwrap();
    }
    for _ in 0..20 {
        let replica = probe.status().unwrap().replica.unwrap();
        assert_ne!(replica.state, ReplicaState::NeedsBootstrap);
        assert_eq!(
            replica.watermark, frozen,
            "a revoked follower must not keep applying the tail"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Re-minting the *same secret* under a fresh token id is the
    // operator's rotation story: the follower's retry loop
    // re-authenticates and the tail resumes, monotone, to convergence.
    let new_id = mint_repl_token(&mut root, REPL);
    assert_ne!(new_id, token_id);
    let mut last = frozen;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        last = assert_monotone(&mut probe, last, "while resuming after re-mint");
        if last >= n as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower never converged after re-mint (watermark {last}/{n})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // No divergence: digests match across primary and follower.
    let p_digest = root.status().unwrap().state_digest;
    let f_status = probe.status().unwrap();
    assert_eq!(f_status.state_digest, p_digest);
    assert_eq!(f_status.replica.unwrap().state, ReplicaState::Streaming);

    drop(follower.abort().unwrap());
    drop(primary.abort().unwrap());
}
