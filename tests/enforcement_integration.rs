//! Cross-crate integration: simulation driving enforcement, the RFID
//! pipeline, differential comparisons against the card-reader baseline,
//! persistence, and the query language over live state.

use ltam::core::model::{Authorization, EntryLimit};
use ltam::core::subject::SubjectId;
use ltam::core::AuthorizationDb;
use ltam::engine::baseline::{CardReaderEngine, Enforcement};
use ltam::engine::engine::AccessControlEngine;
use ltam::engine::query::QueryResult;
use ltam::engine::violation::Violation;
use ltam::sim::rfid::{grid_floor_plan, noisy_walk, TrackingPipeline};
use ltam::sim::{
    grid_building, rng, run_population, sars_contact_tracing, tailgating_differential, Behavior,
    Walker,
};
use ltam::time::{Interval, Time};

/// The §1 differential at several group sizes: LTAM catches every
/// tailgater entry, the card-reader baseline none.
#[test]
fn tailgating_differential_shapes() {
    let mut last = 0;
    for k in [1usize, 3, 6] {
        let out = tailgating_differential(k, 60, 5);
        assert!(out.ltam_detected > 0);
        assert_eq!(out.baseline_detected, 0);
        assert!(
            out.ltam_detected >= last,
            "detections should grow with group size"
        );
        last = out.ltam_detected;
    }
}

/// RFID pipeline + engine: a tailgater tracked by positioning hardware is
/// flagged on every room change, with zero false positives for the
/// authorized subject.
#[test]
fn rfid_pipeline_flags_tailgater() {
    let world = grid_building(3, 3);
    let plan = grid_floor_plan(&world, 3, 3, 10.0);
    let mut engine = AccessControlEngine::new(world.model.clone());
    let staff = engine.profiles_mut().add_user("Staff", "staff");
    let intruder = engine.profiles_mut().add_user("Intruder", "?");
    for l in world.graph.locations() {
        engine.add_authorization(
            Authorization::new(
                Interval::ALL,
                Interval::ALL,
                staff,
                l,
                EntryLimit::Unbounded,
            )
            .unwrap(),
        );
    }
    // Staff member requests properly at each room; the intruder just walks.
    let path = [(0usize, 0usize), (1, 0), (2, 0)];
    let mut pipe = TrackingPipeline::new(&plan, 8);
    let mut r = rng(11);
    // Pre-grant staff entries (the pipeline emits enters; requests go first).
    for (i, &(x, y)) in path.iter().enumerate() {
        let l = world.model.id(&format!("R{x}_{y}")).unwrap();
        let t = Time((i * 4) as u64);
        assert!(engine.request_enter(t, staff, l).is_granted());
        for reading in noisy_walk(staff, &[(x, y)], 10.0, 4, 0.0, t, &mut r) {
            pipe.feed(reading, &mut engine);
        }
    }
    for reading in noisy_walk(intruder, &path, 10.0, 4, 0.0, Time(1), &mut r) {
        pipe.feed(reading, &mut engine);
    }
    let unauthorized: Vec<&Violation> = engine
        .violations()
        .iter()
        .filter(|v| matches!(v, Violation::UnauthorizedEntry { .. }))
        .collect();
    assert_eq!(unauthorized.len(), 3, "{:?}", engine.violations());
    assert!(unauthorized.iter().all(|v| v.subject() == intruder));
}

/// Authorization databases survive a JSON round trip with decisions intact.
#[test]
fn authorization_db_persistence() {
    let world = grid_building(4, 4);
    let mut db = AuthorizationDb::new();
    for (i, l) in world.graph.locations().enumerate() {
        db.insert(
            Authorization::new(
                Interval::lit(i as u64, i as u64 + 10),
                Interval::lit(i as u64, i as u64 + 20),
                SubjectId((i % 3) as u32),
                l,
                EntryLimit::Finite(2),
            )
            .unwrap(),
        );
    }
    let json = serde_json::to_string(&db.export()).unwrap();
    let rows: Vec<(Authorization, ltam::core::Provenance)> = serde_json::from_str(&json).unwrap();
    let back = AuthorizationDb::import(rows);
    assert_eq!(back.len(), db.len());
    for t in [0u64, 5, 12, 25] {
        assert_eq!(
            back.enterable_at(Time(t)).len(),
            db.enterable_at(Time(t)).len(),
            "stabbing diverged at t={t}"
        );
    }
}

/// A mixed population runs against both engines fed identical streams; the
/// baseline's movement log matches LTAM's (same physics), while only LTAM
/// reports violations.
#[test]
fn identical_streams_differential_visibility() {
    let world = grid_building(4, 4);
    let compliant: Vec<SubjectId> = (0..3u32).map(SubjectId).collect();
    let rogue = SubjectId(3);

    let mut ltam = AccessControlEngine::new(world.model.clone());
    let mut reader = CardReaderEngine::new(world.model.clone());
    for (i, &s) in compliant.iter().enumerate() {
        ltam.profiles_mut().add_user(format!("u{i}"), "staff");
        for l in world.graph.locations() {
            let a = Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded)
                .unwrap();
            ltam.add_authorization(a);
            reader.add_authorization(a);
        }
    }
    ltam.profiles_mut().add_user("rogue", "?");

    let drive = |engine: &mut dyn Enforcement| {
        let mut walkers: Vec<Walker> = compliant
            .iter()
            .map(|&s| Walker::new(s, Behavior::Compliant { max_stay: 3 }))
            .collect();
        walkers.push(Walker::new(rogue, Behavior::Tailgater));
        let mut r = rng(21);
        run_population(&mut walkers, &world.graph, engine, 80, &mut r);
    };
    drive(&mut ltam);
    drive(&mut reader);

    assert!(!ltam.violations().is_empty());
    assert!(reader.detected_violations().is_empty());
    assert!(
        ltam.violations().iter().all(|v| v.subject() == rogue),
        "only the rogue violates"
    );
}

/// Contact tracing results are consistent between the scenario API and the
/// query language.
#[test]
fn contact_tracing_query_agrees_with_scenario() {
    let out = sars_contact_tracing(5, 100, 31);
    assert!(!out.quarantine.is_empty());

    // Rebuild the same world through the engine and compare the query
    // answer with the movements-db API.
    let world = grid_building(4, 4);
    let mut engine = AccessControlEngine::new(world.model.clone());
    let a = engine.profiles_mut().add_user("A", "staff");
    let b = engine.profiles_mut().add_user("B", "staff");
    for l in world.graph.locations() {
        for s in [a, b] {
            engine.add_authorization(
                Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded)
                    .unwrap(),
            );
        }
    }
    let entry = world.graph.global_entries()[0];
    engine.request_enter(Time(1), a, entry);
    engine.observe_enter(Time(1), a, entry);
    engine.request_enter(Time(3), b, entry);
    engine.observe_enter(Time(3), b, entry);
    engine.observe_exit(Time(5), a, entry);

    let api = engine.movements().contacts(a, Interval::lit(0, 10));
    let QueryResult::Contacts(rows) = engine.query("CONTACTS OF A DURING [0, 10]").unwrap() else {
        panic!("wrong result kind");
    };
    assert_eq!(rows.len(), api.len());
    assert_eq!(rows[0].0, "B");
    assert_eq!(rows[0].2, Interval::lit(3, 5));
}

/// Rule revocation mid-flight: a pending grant dies with its authorization
/// even when revocation happens through rule re-derivation.
#[test]
fn rule_rederivation_kills_pending_grant() {
    use ltam::core::rules::{OpTuple, Rule, SubjectOp};
    let world = grid_building(2, 2);
    let entry = world.graph.global_entries()[0];
    let mut engine = AccessControlEngine::new(world.model.clone());
    let alice = engine.profiles_mut().add_user("Alice", "staff");
    let bob = engine.profiles_mut().add_user("Bob", "boss");
    engine.profiles_mut().set_supervisor(alice, bob);
    let base = engine.add_authorization(
        Authorization::new(
            Interval::ALL,
            Interval::ALL,
            alice,
            entry,
            EntryLimit::Unbounded,
        )
        .unwrap(),
    );
    engine.add_rule(Rule {
        valid_from: Time(0),
        base,
        ops: OpTuple {
            subject_op: SubjectOp::SupervisorOf,
            ..OpTuple::default()
        },
    });
    engine.apply_rules();
    // Bob gets granted via the derived authorization...
    assert!(engine.request_enter(Time(5), bob, entry).is_granted());
    // ... but Alice's supervisor changes before Bob walks through.
    engine.profiles_mut().set_supervisor(alice, alice);
    engine.apply_rules();
    let v = engine.observe_enter(Time(6), bob, entry);
    assert!(matches!(v, Some(Violation::UnauthorizedEntry { .. })));
}
