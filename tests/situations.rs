//! The situation-enforcement battery: emergency overrides are audited
//! and die on the event clock, lockdown voids unpinned grants at the
//! door, workflow constraints bind in every mode, declarations are
//! durable across a crash, mode swaps are atomic with respect to
//! in-flight batches, and followers refuse situation frames.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use ltam::core::decision::{Decision, DenyReason};
use ltam::core::model::{Authorization, EntryLimit};
use ltam::core::subject::SubjectId;
use ltam::engine::batch::{Event, PolicyCore, ShardedEngine};
use ltam::graph::examples::ntu_campus;
use ltam::serve::{
    bootstrap_follower, ClientError, ErrorCode, LtamClient, ReplicaConfig, Server, ServerConfig,
};
use ltam::situate::{IncidentId, SituationMode, SituationOp, WorkflowConstraint};
use ltam::store::{DurableEngine, ScratchDir, StoreConfig};
use ltam::time::{Interval, Time};

const MEDIC: SubjectId = SubjectId(1);
const ALICE: SubjectId = SubjectId(2);
const GUARD: SubjectId = SubjectId(3);

fn emergency(incident: u64, until: u64) -> SituationOp {
    SituationOp::Declare(SituationMode::Emergency {
        incident: IncidentId(incident),
        until: Time(until),
    })
}

fn all_access(subject: SubjectId, location: ltam::graph::LocationId) -> Authorization {
    Authorization::new(
        Interval::ALL,
        Interval::ALL,
        subject,
        location,
        EntryLimit::Unbounded,
    )
    .unwrap()
}

/// A responder with no authorization of their own is overridden into
/// the lab while the emergency is live; the override is flagged with
/// the incident in the audit trail, and both the decision and the
/// issued grant die when the declaration auto-expires on event time.
#[test]
fn emergency_overrides_are_audited_and_expire_on_event_time() {
    let ntu = ntu_campus();
    let lab = ntu.cais;
    let core = PolicyCore::new(ntu.model);
    let (engine, _alerts) = ShardedEngine::new(core, 2);
    engine.update_policy(|p| {
        p.apply_situation(&SituationOp::AddResponder(MEDIC));
        p.apply_situation(&emergency(9, 100));
    });

    // Live emergency: the responder's denial is rewritten into an
    // override grant carrying the incident; a bystander stays denied.
    let d = engine.request_enter(Time(50), MEDIC, lab);
    assert_eq!(d, Decision::GrantedOverride { incident: 9 });
    let outcome = engine.ingest(&[Event::Enter {
        time: Time(50),
        subject: MEDIC,
        location: lab,
    }]);
    assert!(
        outcome.violations.is_empty(),
        "the override grant admits the responder at the door: {:?}",
        outcome.violations
    );
    assert!(!engine.request_enter(Time(50), ALICE, lab).is_granted());

    // The audit trail carries the rewritten decision, not the base one.
    let shard = engine.shard_for(MEDIC);
    let audited = engine.read_shard(shard, |s| {
        s.audit()
            .iter()
            .filter(|r| r.request.subject == MEDIC)
            .map(|r| r.decision)
            .collect::<Vec<_>>()
    });
    assert!(
        audited.contains(&Decision::GrantedOverride { incident: 9 }),
        "override missing from the audit trail: {audited:?}"
    );

    // Past `until` the declaration has lapsed on its own: fresh
    // requests are denied again without anyone editing the policy.
    assert!(!engine.request_enter(Time(101), MEDIC, lab).is_granted());

    // An override grant issued just before expiry is void at the door
    // just after it — overrides die with their emergency.
    assert_eq!(
        engine.request_enter(Time(99), MEDIC, lab),
        Decision::GrantedOverride { incident: 9 }
    );
    let outcome = engine.ingest(&[
        Event::Exit {
            time: Time(60),
            subject: MEDIC,
            location: lab,
        },
        Event::Enter {
            time: Time(102),
            subject: MEDIC,
            location: lab,
        },
    ]);
    assert_eq!(
        outcome.violations.len(),
        1,
        "an expired override must not admit entry: {:?}",
        outcome.violations
    );
}

/// Lockdown default-denies: grants issued *before* the declaration are
/// void at the door unless their authorization is pinned, and fresh
/// requests are refused with the lockdown reason.
#[test]
fn lockdown_voids_unpinned_grants_at_the_door_and_pins_survive() {
    let ntu = ntu_campus();
    let lab = ntu.cais;
    let office = ntu.sce_go;
    let mut core = PolicyCore::new(ntu.model);
    core.add_authorization(all_access(ALICE, lab));
    let guard_auth = core.add_authorization(all_access(GUARD, office));
    let (engine, _alerts) = ShardedEngine::new(core, 2);

    // Both swipes succeed under normal mode.
    assert!(engine.request_enter(Time(10), ALICE, lab).is_granted());
    assert!(engine.request_enter(Time(10), GUARD, office).is_granted());

    engine.update_policy(|p| {
        p.apply_situation(&SituationOp::Declare(SituationMode::Lockdown));
        p.apply_situation(&SituationOp::Pin(guard_auth));
    });

    // The pre-lockdown grants: Alice's is void, the pinned one holds.
    let outcome = engine.ingest(&[
        Event::Enter {
            time: Time(11),
            subject: ALICE,
            location: lab,
        },
        Event::Enter {
            time: Time(11),
            subject: GUARD,
            location: office,
        },
    ]);
    assert_eq!(
        outcome.violations.len(),
        1,
        "exactly the unpinned grant is void: {:?}",
        outcome.violations
    );
    assert_eq!(outcome.violations[0].subject(), ALICE);

    // Fresh requests under lockdown: refused with the lockdown reason
    // unless pinned.
    assert_eq!(
        engine.request_enter(Time(12), ALICE, lab),
        Decision::Denied {
            reason: DenyReason::Lockdown
        }
    );
    assert!(engine.request_enter(Time(12), GUARD, office).is_granted());

    // Clearing the lockdown restores the base decision.
    engine.update_policy(|p| {
        p.apply_situation(&SituationOp::Declare(SituationMode::Normal));
    });
    assert!(engine.request_enter(Time(13), ALICE, lab).is_granted());
}

/// Workflow constraints bind in every mode: a registered responder
/// under a live emergency still cannot break separation-of-duty, while
/// an untainted responder is overridden through.
#[test]
fn constraints_bind_even_for_responders_under_a_live_emergency() {
    let ntu = ntu_campus();
    let office = ntu.sce_go;
    let lab = ntu.cais;
    let medic2 = SubjectId(5);
    let mut core = PolicyCore::new(ntu.model);
    core.add_authorization(all_access(MEDIC, office));
    let (engine, _alerts) = ShardedEngine::new(core, 2);
    engine.update_policy(|p| {
        p.apply_situation(&SituationOp::AddResponder(MEDIC));
        p.apply_situation(&SituationOp::AddResponder(medic2));
        p.apply_situation(&emergency(1, 1_000));
        p.apply_situation(&SituationOp::AddConstraint(
            WorkflowConstraint::SeparationOfDuty {
                first: office,
                second: lab,
                window: 100,
            },
        ));
    });

    // MEDIC performs the tainting first step.
    let outcome = engine.ingest(&[
        Event::Request {
            time: Time(5),
            subject: MEDIC,
            location: office,
        },
        Event::Enter {
            time: Time(5),
            subject: MEDIC,
            location: office,
        },
        Event::Exit {
            time: Time(6),
            subject: MEDIC,
            location: office,
        },
    ]);
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);

    // Inside the window the emergency cannot override the constraint…
    assert_eq!(
        engine.request_enter(Time(50), MEDIC, lab),
        Decision::Denied {
            reason: DenyReason::WorkflowConstraint
        }
    );
    // …while the untainted responder is overridden through…
    assert_eq!(
        engine.request_enter(Time(50), medic2, lab),
        Decision::GrantedOverride { incident: 1 }
    );
    // …and past the window MEDIC's own denial is overridden again
    // (window 100, taint at t=5: t=106 looks back to 6).
    assert_eq!(
        engine.request_enter(Time(106), MEDIC, lab),
        Decision::GrantedOverride { incident: 1 }
    );
}

fn situations_store() -> StoreConfig {
    StoreConfig {
        segment_bytes: 64 * 1024,
        snapshot_every: 0,
        fsync: false,
        retention: None,
    }
}

/// Declarations are durable: a crash (drop without shutdown is
/// crash-equivalent) loses neither the declared mode, the responder
/// set, nor the constraint table, and WAL-tail events replay under the
/// same declaration they were judged under live. Losing the snapshots
/// that acked a declaration is refused, never silently reverted.
#[test]
fn declarations_survive_a_crash_and_acked_edits_never_revert() {
    let ntu = ntu_campus();
    let lab = ntu.cais;
    let dir = ScratchDir::new("situations-crash");
    let core = PolicyCore::new(ntu.model);
    let (mut durable, _alerts) =
        DurableEngine::create(dir.path(), core, 2, situations_store()).unwrap();

    // Judged under Normal: denied.
    let outcome = durable
        .ingest(&[Event::Request {
            time: Time(10),
            subject: MEDIC,
            location: lab,
        }])
        .unwrap();
    assert_eq!(outcome.denied, 1);

    durable
        .apply_situation(&SituationOp::AddResponder(MEDIC))
        .unwrap();
    durable.apply_situation(&emergency(3, 500)).unwrap();
    durable
        .apply_situation(&SituationOp::AddConstraint(
            WorkflowConstraint::SeparationOfDuty {
                first: ntu.sce_go,
                second: ntu.sce_a,
                window: 10,
            },
        ))
        .unwrap();
    let epoch = durable.policy_epoch();
    let enforcement = durable.enforcement_epoch();

    // Judged under the emergency: overridden. This batch lands in the
    // WAL *after* the declaration's record and snapshot, so recovery
    // replays it under the recovered declaration.
    let outcome = durable
        .ingest(&[Event::Request {
            time: Time(20),
            subject: MEDIC,
            location: lab,
        }])
        .unwrap();
    assert_eq!(outcome.granted, 1);
    drop(durable); // crash

    let (durable, _alerts, report) =
        DurableEngine::open_with_shards(dir.path(), situations_store(), 2).unwrap();
    assert!(report.replayed >= 1, "the post-declaration batch replays");
    let policy = durable.engine().policy();
    assert_eq!(
        policy.situation().mode(),
        SituationMode::Emergency {
            incident: IncidentId(3),
            until: Time(500)
        }
    );
    assert!(policy.situation().is_responder(MEDIC));
    assert_eq!(policy.situation().constraints().count(), 1);
    assert_eq!(durable.policy_epoch(), epoch);
    assert_eq!(durable.enforcement_epoch(), enforcement);

    // The replayed request was judged under the recovered emergency,
    // exactly as live: the audit trail holds one denial (pre-declare)
    // and one override (post-declare) for the responder.
    let shard = durable.engine().shard_for(MEDIC);
    let decisions = durable.engine().read_shard(shard, |s| {
        s.audit().iter().map(|r| r.decision).collect::<Vec<_>>()
    });
    assert_eq!(
        decisions,
        vec![
            Decision::Denied {
                reason: DenyReason::NoAuthorization
            },
            Decision::GrantedOverride { incident: 3 },
        ]
    );
    drop(durable);

    // Destroy every snapshot that acked the situation edits, leaving
    // only the pre-declaration image. Recovering from it would silently
    // clear an acknowledged emergency — the store must refuse instead.
    let mut snaps: Vec<_> = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    snaps.sort();
    assert!(snaps.len() >= 2, "retained snapshots: {snaps:?}");
    for newer in &snaps[1..] {
        std::fs::remove_file(newer).unwrap();
    }
    let err = match DurableEngine::open_with_shards(dir.path(), situations_store(), 2) {
        Ok(_) => panic!("recovering over an acked declaration must refuse"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

/// Mode swaps are atomic with respect to in-flight batches: while one
/// thread flips Normal <-> Emergency as fast as it can, every batch of
/// identical responder requests lands entirely under one declaration —
/// all overridden or all denied, never a torn mix.
#[test]
fn mode_swaps_are_atomic_with_respect_to_in_flight_batches() {
    let ntu = ntu_campus();
    let lab = ntu.cais;
    let responders: Vec<SubjectId> = (1..=8).map(SubjectId).collect();
    let mut core = PolicyCore::new(ntu.model);
    for &r in &responders {
        core.apply_situation(&SituationOp::AddResponder(r));
    }
    let (engine, _alerts) = ShardedEngine::new(core, 4);

    // Two requests per responder, spread across all four shards, all
    // judged in one ingest call.
    let batch: Vec<Event> = responders
        .iter()
        .flat_map(|&r| {
            std::iter::repeat_n(
                Event::Request {
                    time: Time(50),
                    subject: r,
                    location: lab,
                },
                2,
            )
        })
        .collect();

    let done = AtomicBool::new(false);
    let (mixed, granted_batches, denied_batches) = std::thread::scope(|scope| {
        let flipper = scope.spawn(|| {
            for i in 0..400 {
                engine.update_policy(|p| {
                    p.apply_situation(&if i % 2 == 0 {
                        emergency(1, 1_000_000)
                    } else {
                        SituationOp::Declare(SituationMode::Normal)
                    });
                });
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
        let mut mixed = 0u64;
        let mut granted_batches = 0u64;
        let mut denied_batches = 0u64;
        while !done.load(Ordering::Acquire) {
            let outcome = engine.ingest(&batch);
            match outcome.granted {
                0 => denied_batches += 1,
                g if g == batch.len() => granted_batches += 1,
                _ => mixed += 1,
            }
        }
        flipper.join().unwrap();
        (mixed, granted_batches, denied_batches)
    });

    assert_eq!(
        mixed, 0,
        "a batch saw two declarations ({granted_batches} uniform grants, \
         {denied_batches} uniform denials)"
    );
    assert!(
        granted_batches > 0 && denied_batches > 0,
        "the race never materialized ({granted_batches} granted, {denied_batches} denied \
         batches) — the flipper must interleave with ingest"
    );
}

/// Situation ops are primary-only on the wire: a follower refuses the
/// frame with `NotPrimary`, naming the primary, instead of forking its
/// replicated declaration state.
#[test]
fn a_follower_refuses_situation_frames() {
    const ROOT: &str = "situations-root";
    let ntu = ntu_campus();
    let p_dir = ScratchDir::new("situations-notprimary-p");
    let f_dir = ScratchDir::new("situations-notprimary-f");
    let config = ServerConfig {
        root_token: Some(ROOT.to_string()),
        ..ServerConfig::default()
    };
    let (engine, _alerts) = DurableEngine::create(
        p_dir.path(),
        PolicyCore::new(ntu.model),
        2,
        situations_store(),
    )
    .unwrap();
    let primary = Server::start(engine, "127.0.0.1:0", config.clone()).unwrap();
    let p_addr = primary.local_addr().to_string();

    let f_engine = bootstrap_follower(f_dir.path(), &p_addr, situations_store()).unwrap();
    let follower =
        Server::start_follower(f_engine, "127.0.0.1:0", config, ReplicaConfig::new(&p_addr))
            .unwrap();

    // Even a fully privileged admin is refused on a follower: the
    // refusal is about *role*, not capability.
    let mut client = LtamClient::connect(&follower.local_addr().to_string()).unwrap();
    client.hello(ROOT).unwrap();
    match client.situation(SituationOp::Declare(SituationMode::Lockdown)) {
        Err(ClientError::Server { code, message, .. }) => {
            assert_eq!(code, ErrorCode::NotPrimary);
            assert!(
                message.contains(&p_addr),
                "the refusal names the primary: {message}"
            );
        }
        other => panic!("follower accepted a situation frame: {other:?}"),
    }

    // The primary takes the same op, and the follower replicates it
    // rather than originating it.
    let mut root = LtamClient::connect(&p_addr).unwrap();
    root.hello(ROOT).unwrap();
    root.situation(SituationOp::Declare(SituationMode::Lockdown))
        .unwrap();
    let mut probe = LtamClient::connect(&follower.local_addr().to_string()).unwrap();
    probe
        .wait_for_watermark(1, Duration::from_secs(20))
        .expect("the situation record reaches the follower in-stream");

    drop(follower.abort().unwrap());
    drop(primary.abort().unwrap());
}
