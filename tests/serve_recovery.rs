//! Kill the server mid-stream, restart on the same store, keep
//! serving: the acceptance drill for the serving tier's durability
//! story. A retention policy is active throughout, so the restarted
//! server also proves that tier-aware queries (live + lazily-loaded
//! archive) keep answering correctly over the wire — both inside the
//! retention horizon and across it.

use ltam::core::retention::RetentionPolicy;
use ltam::core::subject::SubjectId;
use ltam::engine::batch::{apply_to_engine, Event};
use ltam::serve::{LtamClient, Server, ServerConfig};
use ltam::store::{DurableEngine, ScratchDir, StoreConfig, Wal};
use ltam::time::{Interval, Time};
use ltam_bench::{contact_multiset, serve_workload, violation_multiset};
use ltam_sim::multi_shard_trace;

#[test]
fn killed_server_recovers_on_the_same_store_and_keeps_serving() {
    let trace = multi_shard_trace(&serve_workload(48, 4_000));
    let n = trace.events.len();
    let final_tick = Event::Tick {
        now: Time(trace.max_time().get() + 1),
    };

    // The in-process reference: unpruned, uninterrupted.
    let mut reference = trace.build_engine();
    for e in trace.events.iter().chain(std::iter::once(&final_tick)) {
        apply_to_engine(&mut reference, e);
    }
    let expected_violations = violation_multiset(reference.violations().to_vec());

    let dir = ScratchDir::new("serve-recovery");
    let store_config = StoreConfig {
        segment_bytes: 64 * 1024,
        snapshot_every: 1_000,
        fsync: false,
        retention: Some(RetentionPolicy::keep_last(100)),
    };

    // Phase 1: serve the first half of the trace, then kill the server
    // (no graceful drain, no final snapshot) and tear the last WAL
    // record, as a power cut mid-write would.
    let half = n / 2;
    {
        let (engine, _alerts) =
            DurableEngine::create(dir.path(), trace.build_policy_core(), 2, store_config).unwrap();
        let server = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = LtamClient::connect(&server.local_addr().to_string()).unwrap();
        for chunk in trace.events[..half].chunks(128) {
            client.ingest(chunk).unwrap();
        }
        server.abort().unwrap(); // kill -9, minus the process boundary
    }
    let segments = Wal::segment_files(dir.path()).unwrap();
    let last = segments.last().unwrap();
    let len = std::fs::metadata(last).unwrap().len();
    assert!(len > 3);
    std::fs::OpenOptions::new()
        .write(true)
        .open(last)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    // Phase 2: recover the store, serve again, finish the trace.
    let (engine, _alerts, report) = DurableEngine::open(dir.path(), store_config).unwrap();
    let resumed = engine.applied() as usize;
    assert!(report.truncated_bytes > 0, "the torn record was repaired");
    assert!(resumed < half, "the torn record's event left the log");
    assert!(
        resumed as u64 >= report.snapshot_seq,
        "recovery resumed behind its snapshot"
    );
    let server = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = LtamClient::connect(&server.local_addr().to_string()).unwrap();
    for chunk in trace.events[resumed..].chunks(128) {
        client.ingest(chunk).unwrap();
    }
    client.ingest(&[final_tick]).unwrap();

    // The served violation multiset equals the uninterrupted in-process
    // run — across the crash, the torn record, and the retention prune
    // (the report spans the whole trace, so it tier-merges the archive,
    // loading segments lazily).
    let status = client.status().unwrap();
    assert_eq!(status.events_ingested, n as u64 + 1);
    assert!(
        status.retention_watermark > 0,
        "retention pruned during the run"
    );
    assert_eq!(
        status.archive_segments_loaded, 0,
        "no query touched the archive yet"
    );
    let served = violation_multiset(client.violations_in(Interval::ALL).unwrap());
    assert_eq!(served, expected_violations);
    let status = client.status().unwrap();
    assert!(
        status.archive_segments_loaded > 0,
        "the whole-trace report loaded archive segments"
    );

    // Whereabouts and contact tracing answer identically, both inside
    // the horizon and across it.
    let span = trace.max_time().get();
    for i in 0..12u32 {
        let s = SubjectId(i);
        for t in [Time(span / 4), Time(span / 2), Time(span)] {
            assert_eq!(
                client.whereabouts(s, t).unwrap(),
                reference.movements().whereabouts(s, t),
                "whereabouts({s}, {t})"
            );
        }
        assert_eq!(
            contact_multiset(client.contacts(s, Interval::ALL).unwrap()),
            contact_multiset(reference.movements().contacts(s, Interval::ALL)),
            "contacts({s})"
        );
    }

    // An in-horizon presence query is served from live state alone.
    let recent = Interval::lit(status.retention_watermark, span);
    let locations: Vec<_> = trace.world.graph.locations().collect();
    for &l in locations.iter().take(4) {
        assert_eq!(
            client.present_during(l, recent).unwrap(),
            reference.movements().present_during(l, recent),
            "present_during({l}) in horizon"
        );
    }

    let engine = server.shutdown().unwrap();
    assert_eq!(engine.applied(), n as u64 + 1);
}
