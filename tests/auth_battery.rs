//! Adversarial auth battery: every wire frame kind is thrown at a
//! policy-governed server by connections that are unauthenticated,
//! expired, revoked mid-connection, or scoped for the wrong
//! capability. Each must be refused with the right [`ErrorCode`], the
//! connection state machine must survive the refusal, and a correct
//! token presented on the *same* socket must still be serviced.

use ltam::core::capability::{AdminOp, AdminOutcome, Scope, TokenId};
use ltam::core::model::{Authorization, EntryLimit};
use ltam::core::subject::SubjectId;
use ltam::engine::batch::{Event, PolicyCore};
use ltam::graph::examples::ntu_campus;
use ltam::graph::LocationId;
use ltam::serve::wire::{self, HistoryQuery, ReplRequest, Request, Response};
use ltam::serve::{
    ClientError, ErrorCode, IngestReply, LtamClient, Server, ServerConfig, ServerRole,
};
use ltam::store::{DurableEngine, ScratchDir, StoreConfig};
use ltam::time::{Interval, Time};
use std::net::TcpStream;
use std::time::Duration;

const ROOT_SECRET: &str = "root-recovery-secret";

fn campus_core() -> (PolicyCore, SubjectId, LocationId) {
    let ntu = ntu_campus();
    let cais = ntu.cais;
    let mut core = PolicyCore::new(ntu.model);
    let alice = SubjectId(0);
    core.add_authorization(
        Authorization::new(
            Interval::lit(5, 40),
            Interval::lit(20, 100),
            alice,
            cais,
            EntryLimit::Finite(1),
        )
        .unwrap(),
    );
    (core, alice, cais)
}

fn store_config() -> StoreConfig {
    StoreConfig {
        segment_bytes: 64 * 1024,
        snapshot_every: 0,
        fsync: false,
        retention: None,
    }
}

fn auth_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(25),
        root_token: Some(ROOT_SECRET.to_string()),
        ..ServerConfig::default()
    }
}

/// Start a server with wire auth switched ON (over the wire, via the
/// root recovery token) and return it plus a root-authenticated admin
/// client.
fn start_locked_server(dir: &ScratchDir) -> (Server, LtamClient, SubjectId, LocationId) {
    let (core, alice, cais) = campus_core();
    let (engine, _alerts) = DurableEngine::create(dir.path(), core, 2, store_config()).unwrap();
    let server = Server::start(engine, "127.0.0.1:0", auth_config()).unwrap();
    let mut root = LtamClient::connect(&server.local_addr().to_string()).unwrap();
    root.hello(ROOT_SECRET).unwrap();
    let outcome = root
        .admin(AdminOp::SetAuthRequired { required: true })
        .unwrap();
    assert_eq!(outcome, AdminOutcome::AuthRequiredSet);
    (server, root, alice, cais)
}

fn mint(
    root: &mut LtamClient,
    subject: SubjectId,
    scopes: Vec<Scope>,
    validity: Interval,
    secret: &str,
) -> TokenId {
    match root
        .admin(AdminOp::MintToken {
            subject,
            scopes,
            validity,
            secret: secret.to_string(),
        })
        .unwrap()
    {
        AdminOutcome::TokenMinted { id } => id,
        other => panic!("unexpected mint outcome {other:?}"),
    }
}

fn enter(time: u64, subject: SubjectId, location: LocationId) -> Event {
    Event::Enter {
        time: Time(time),
        subject,
        location,
    }
}

/// Assert `result` is a server refusal with `code`, returning the
/// redacted-or-not role for further pinning.
fn expect_refusal<T: std::fmt::Debug>(
    result: Result<T, ClientError>,
    code: ErrorCode,
    context: &str,
) -> Option<ServerRole> {
    match result {
        Err(ClientError::Server {
            code: got, role, ..
        }) => {
            assert_eq!(got, code, "{context}: wrong error code");
            role
        }
        other => panic!("{context}: expected {code:?} refusal, got {other:?}"),
    }
}

/// Drive every frame kind through `client` and assert each is refused
/// with `code`. Returns the roles the refusals disclosed.
fn refuse_every_frame_kind(
    client: &mut LtamClient,
    alice: SubjectId,
    cais: LocationId,
    code: ErrorCode,
    context: &str,
) -> Vec<Option<ServerRole>> {
    let mut roles = Vec::new();
    roles.push(expect_refusal(
        client.ingest(&[enter(11, alice, cais)]),
        code,
        &format!("{context}: ingest"),
    ));
    roles.push(expect_refusal(
        client.check_access(Time(10), alice, cais),
        code,
        &format!("{context}: check"),
    ));
    roles.push(expect_refusal(
        client.whereabouts(alice, Time(12)),
        code,
        &format!("{context}: query"),
    ));
    roles.push(expect_refusal(
        client.metrics(),
        code,
        &format!("{context}: metrics"),
    ));
    roles.push(expect_refusal(
        client.repl_manifest(),
        code,
        &format!("{context}: repl"),
    ));
    roles.push(expect_refusal(
        client.admin(AdminOp::SetTrustThreshold { threshold: 0 }),
        code,
        &format!("{context}: admin"),
    ));
    roles
}

/// No handshake at all: every frame kind is refused `Unauthenticated`,
/// the refusals disclose nothing about the server's role, the
/// connection survives, and a valid `Hello` on the same socket
/// upgrades it to full service.
#[test]
fn no_handshake_refuses_every_frame_kind_then_same_socket_recovers() {
    let dir = ScratchDir::new("auth-no-handshake");
    let (server, mut root, alice, cais) = start_locked_server(&dir);
    mint(
        &mut root,
        SubjectId(77),
        vec![
            Scope::Ingest { locations: None },
            Scope::Query,
            Scope::Replicate,
        ],
        Interval::ALL,
        "ops-secret",
    );

    let mut anon = LtamClient::connect(&server.local_addr().to_string()).unwrap();
    let roles = refuse_every_frame_kind(
        &mut anon,
        alice,
        cais,
        ErrorCode::Unauthenticated,
        "anonymous",
    );
    for role in roles {
        assert_eq!(role, None, "pre-handshake refusal leaked the server role");
    }
    assert!(anon.is_connected(), "refusals must not tear the connection");

    // The same socket, now authenticated, is serviced end to end.
    let (_, subject, scopes) = anon.hello("ops-secret").unwrap();
    assert_eq!(subject, SubjectId(77));
    assert_eq!(scopes.len(), 3);
    let summary = anon.ingest(&[enter(11, alice, cais)]).unwrap();
    assert_eq!(summary.processed, 1);
    assert_eq!(anon.whereabouts(alice, Time(12)).unwrap(), Some(cais));
    assert!(anon.repl_manifest().is_ok());
    drop(server);
}

/// Satellite: pre-handshake `Error` frames are fully redacted at the
/// raw-frame level — no role — while the same refusal on an open
/// (auth-not-required) wire still names the refusing role. Pins the
/// information-leak fix.
#[test]
fn pre_handshake_error_frames_are_redacted() {
    // Locked server: raw frame, no Hello -> Error with role == None.
    let dir = ScratchDir::new("auth-redaction");
    let (server, _root, alice, _cais) = start_locked_server(&dir);
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let request = Request::Query(HistoryQuery::Whereabouts {
        subject: alice,
        at: Time(5),
    });
    wire::write_frame(&mut raw, &wire::encode_request(&request)).unwrap();
    let payload = wire::read_frame(&mut raw, 1 << 20).unwrap();
    match wire::decode_response(&payload).unwrap() {
        Response::Error { code, role, .. } => {
            assert_eq!(code, ErrorCode::Unauthenticated);
            assert_eq!(role, None, "pre-handshake error frame leaked the role");
        }
        other => panic!("expected redacted refusal, got {other:?}"),
    }
    // A replication probe pre-handshake is just as silent.
    wire::write_frame(
        &mut raw,
        &wire::encode_request(&Request::Repl(ReplRequest::Manifest)),
    )
    .unwrap();
    let payload = wire::read_frame(&mut raw, 1 << 20).unwrap();
    match wire::decode_response(&payload).unwrap() {
        Response::Error { role, .. } => assert_eq!(role, None),
        other => panic!("expected redacted refusal, got {other:?}"),
    }
    drop(server);

    // Open server (auth not required): the always-gated admin path
    // still refuses anonymous callers, but may name its role — the
    // wire is open, so the role is not a secret.
    let dir = ScratchDir::new("auth-open-role");
    let (core, _, _) = campus_core();
    let (engine, _alerts) = DurableEngine::create(dir.path(), core, 2, store_config()).unwrap();
    let server = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut anon = LtamClient::connect(&server.local_addr().to_string()).unwrap();
    let role = expect_refusal(
        anon.admin(AdminOp::SetTrustThreshold { threshold: 1 }),
        ErrorCode::Unauthenticated,
        "open-wire admin",
    );
    assert_eq!(role, Some(ServerRole::Primary));
}

/// A token whose validity window the monitoring clock has left behind
/// dies `Unauthenticated` on every frame kind, and a freshly minted
/// token on the same socket restores service.
#[test]
fn expired_tokens_are_refused_on_every_frame_kind() {
    let dir = ScratchDir::new("auth-expired");
    let (server, mut root, alice, cais) = start_locked_server(&dir);
    mint(
        &mut root,
        SubjectId(8),
        vec![
            Scope::Ingest { locations: None },
            Scope::Query,
            Scope::Replicate,
        ],
        Interval::lit(0, 10),
        "short-lived",
    );

    let mut sensor = LtamClient::connect(&server.local_addr().to_string()).unwrap();
    sensor.hello("short-lived").unwrap();
    assert_eq!(
        sensor.ingest(&[enter(6, alice, cais)]).unwrap().processed,
        1
    );

    // The monitoring clock (max trusted event time) marches past the
    // token's validity; the next frame on the live connection dies.
    root.ingest(&[enter(50, SubjectId(3), cais)]).unwrap();
    refuse_every_frame_kind(
        &mut sensor,
        alice,
        cais,
        ErrorCode::Unauthenticated,
        "expired",
    );

    // Re-presenting the stale secret is itself refused...
    expect_refusal(
        sensor.hello("short-lived"),
        ErrorCode::Unauthenticated,
        "expired re-hello",
    );
    // ...but a fresh token on the same socket recovers service.
    mint(
        &mut root,
        SubjectId(8),
        vec![Scope::Query],
        Interval::ALL,
        "fresh",
    );
    sensor.hello("fresh").unwrap();
    assert_eq!(sensor.whereabouts(alice, Time(7)).unwrap(), Some(cais));
}

/// Revocation over the wire bites on the very next frame of an
/// already-authenticated connection — no restart, no reconnect —
/// with `PermissionDenied`.
#[test]
fn revoked_mid_connection_dies_on_the_next_frame() {
    let dir = ScratchDir::new("auth-revoked");
    let (server, mut root, alice, cais) = start_locked_server(&dir);
    let id = mint(
        &mut root,
        SubjectId(9),
        vec![Scope::Ingest { locations: None }, Scope::Query],
        Interval::ALL,
        "field-sensor",
    );

    let mut sensor = LtamClient::connect(&server.local_addr().to_string()).unwrap();
    sensor.hello("field-sensor").unwrap();
    assert_eq!(
        sensor.ingest(&[enter(11, alice, cais)]).unwrap().processed,
        1
    );

    // An admin RPC on a *different* connection revokes the token...
    assert_eq!(
        root.admin(AdminOp::RevokeToken { id }).unwrap(),
        AdminOutcome::TokenRevoked { existed: true }
    );
    // ...and the very next frame on the sensor's live socket is refused.
    refuse_every_frame_kind(
        &mut sensor,
        alice,
        cais,
        ErrorCode::PermissionDenied,
        "revoked",
    );
    assert!(sensor.is_connected());

    // The socket itself is not poisoned: a valid replacement identity
    // presented on it is serviced.
    mint(
        &mut root,
        SubjectId(9),
        vec![Scope::Query],
        Interval::ALL,
        "field-sensor-2",
    );
    sensor.hello("field-sensor-2").unwrap();
    assert_eq!(sensor.whereabouts(alice, Time(12)).unwrap(), Some(cais));
}

/// A live identity holding the wrong grants: every frame kind outside
/// its scopes is `PermissionDenied`, everything inside them still
/// works, and location-restricted ingest scopes are enforced per
/// batch.
#[test]
fn wrong_scope_tokens_are_refused_per_frame_kind() {
    let dir = ScratchDir::new("auth-scopes");
    let (server, mut root, alice, cais) = start_locked_server(&dir);
    let lobby = ntu_campus().sce_go;
    assert_ne!(lobby, cais);
    mint(
        &mut root,
        SubjectId(21),
        vec![Scope::Query],
        Interval::ALL,
        "read-only",
    );
    mint(
        &mut root,
        SubjectId(22),
        vec![Scope::Ingest {
            locations: Some(vec![lobby]),
        }],
        Interval::ALL,
        "lobby-door",
    );

    // Query-scoped: reads work, every write/replication/admin path dies.
    let mut reader = LtamClient::connect(&server.local_addr().to_string()).unwrap();
    reader.hello("read-only").unwrap();
    assert_eq!(reader.whereabouts(alice, Time(3)).unwrap(), None);
    assert!(reader.metrics().unwrap().contains("serve_"));
    expect_refusal(
        reader.ingest(&[enter(11, alice, cais)]),
        ErrorCode::PermissionDenied,
        "read-only ingest",
    );
    expect_refusal(
        reader.check_access(Time(10), alice, cais),
        ErrorCode::PermissionDenied,
        "read-only check",
    );
    expect_refusal(
        reader.repl_manifest(),
        ErrorCode::PermissionDenied,
        "read-only repl",
    );
    expect_refusal(
        reader.admin(AdminOp::SetTrustThreshold { threshold: 0 }),
        ErrorCode::PermissionDenied,
        "read-only admin",
    );
    // The refusals left the connection serviceable for in-scope work.
    assert_eq!(reader.whereabouts(alice, Time(3)).unwrap(), None);

    // Ingest-scoped-to-lobby: covered locations ingest, others die,
    // and reads are out of scope entirely.
    let mut door = LtamClient::connect(&server.local_addr().to_string()).unwrap();
    door.hello("lobby-door").unwrap();
    assert_eq!(door.ingest(&[enter(2, alice, lobby)]).unwrap().processed, 1);
    expect_refusal(
        door.ingest(&[enter(11, alice, cais)]),
        ErrorCode::PermissionDenied,
        "out-of-coverage ingest",
    );
    expect_refusal(
        door.whereabouts(alice, Time(2)),
        ErrorCode::PermissionDenied,
        "ingest-only query",
    );
    expect_refusal(
        door.metrics(),
        ErrorCode::PermissionDenied,
        "ingest-only metrics",
    );
}

/// Below-threshold sensors: their events are diverted to the durable
/// quarantine ledger (never the trusted history), the ledger is
/// queryable and flagged in contact-tracing answers, and raising the
/// sensor's trust level over the wire restores normal ingest.
#[test]
fn low_trust_sensor_events_are_quarantined_and_flagged() {
    let dir = ScratchDir::new("auth-trust");
    let (server, mut root, alice, cais) = start_locked_server(&dir);
    let sensor_id = SubjectId(40);
    assert_eq!(
        root.admin(AdminOp::SetTrustThreshold { threshold: 2 })
            .unwrap(),
        AdminOutcome::TrustSet
    );
    mint(
        &mut root,
        sensor_id,
        vec![Scope::Ingest { locations: None }, Scope::Query],
        Interval::ALL,
        "rookie-sensor",
    );

    let mut sensor = LtamClient::connect(&server.local_addr().to_string()).unwrap();
    sensor.hello("rookie-sensor").unwrap();
    match sensor.ingest_flagged(&[enter(11, alice, cais)]).unwrap() {
        IngestReply::Quarantined { held } => assert_eq!(held, 1),
        other => panic!("low-trust ingest must quarantine, got {other:?}"),
    }

    // Nothing reached the trusted history...
    assert_eq!(root.whereabouts(alice, Time(12)).unwrap(), None);
    // ...but the ledger is queryable and tags its source and level.
    let held = root.quarantined(None, Interval::ALL).unwrap();
    assert_eq!(held.len(), 1);
    assert_eq!(held[0].source, sensor_id);
    assert_eq!(held[0].event, enter(11, alice, cais));
    assert_eq!(
        root.quarantined(Some(sensor_id), Interval::ALL)
            .unwrap()
            .len(),
        1
    );
    assert!(root
        .quarantined(Some(SubjectId(99)), Interval::ALL)
        .unwrap()
        .is_empty());

    // Contact tracing flags the quarantined sighting instead of
    // silently mixing it into trusted contacts.
    let (contacts, flagged) = root.contacts_flagged(alice, Interval::ALL).unwrap();
    assert!(contacts.is_empty());
    assert_eq!(flagged.len(), 1);
    assert_eq!(flagged[0].source, sensor_id);

    // Status reports the locked wire and the held count.
    let status = root.status().unwrap();
    assert!(status.auth_required);
    assert_eq!(status.quarantined_events, 1);

    // Promoting the sensor over the wire restores normal ingest.
    assert_eq!(
        root.admin(AdminOp::SetTrust {
            subject: sensor_id,
            level: 3,
        })
        .unwrap(),
        AdminOutcome::TrustSet
    );
    match sensor.ingest_flagged(&[enter(12, alice, cais)]).unwrap() {
        IngestReply::Ingested(summary) => assert_eq!(summary.processed, 1),
        other => panic!("trusted ingest must apply, got {other:?}"),
    }
    assert_eq!(root.whereabouts(alice, Time(13)).unwrap(), Some(cais));
}

/// Auth state is durable: tokens minted, revocations issued, and
/// trust edits made over the wire all survive a hard restart of the
/// store — a revoked token stays dead after crash + recovery.
#[test]
fn revocations_and_trust_edits_survive_restart() {
    let dir = ScratchDir::new("auth-durable");
    let live_id;
    let alice;
    let cais;
    {
        let (server, mut root, a, c) = start_locked_server(&dir);
        alice = a;
        cais = c;
        let _ = &server;
        let dead_id = mint(
            &mut root,
            SubjectId(5),
            vec![Scope::Ingest { locations: None }],
            Interval::ALL,
            "doomed",
        );
        live_id = mint(
            &mut root,
            SubjectId(6),
            vec![Scope::Query],
            Interval::ALL,
            "survivor",
        );
        root.admin(AdminOp::RevokeToken { id: dead_id }).unwrap();
        root.admin(AdminOp::SetTrustThreshold { threshold: 1 })
            .unwrap();
        root.ingest(&[enter(11, alice, cais)]).unwrap();
        // Server drops here without any orderly flush beyond the WAL.
    }

    let (engine, _alerts, _report) =
        DurableEngine::open_with_shards(dir.path(), store_config(), 2).unwrap();
    let server = Server::start(engine, "127.0.0.1:0", auth_config()).unwrap();
    let mut doomed = LtamClient::connect(&server.local_addr().to_string()).unwrap();
    // A revoked secret no longer resolves to any identity at all.
    expect_refusal(
        doomed.hello("doomed"),
        ErrorCode::Unauthenticated,
        "revoked secret after restart",
    );
    let mut survivor = LtamClient::connect(&server.local_addr().to_string()).unwrap();
    let (id, subject, _) = survivor.hello("survivor").unwrap();
    assert_eq!(id, live_id);
    assert_eq!(subject, SubjectId(6));
    // The movement history ingested before the crash recovered too.
    assert_eq!(survivor.whereabouts(alice, Time(12)).unwrap(), Some(cais));
    let status = survivor.status().unwrap();
    assert!(
        status.auth_required,
        "auth-required flag must survive restart"
    );
}
