//! Model-level comparisons: what LTAM expresses that the §2 baselines
//! cannot.

use ltam::core::inaccessible::{find_inaccessible, AuthsByLocation};
use ltam::core::model::{Authorization, EntryLimit};
use ltam::core::subject::SubjectId;
use ltam::core::tam::{Sign, TamAuthorization, TamDb};
use ltam::graph::{EffectiveGraph, LocationModel};
use ltam::time::{Interval, IntervalSet, Time};

const ALICE: SubjectId = SubjectId(0);

/// TAM (temporal-only) says yes whenever the window is open; LTAM knows
/// the lab is unreachable because the only corridor's window never meets
/// the gate's. Same policy intent, different expressiveness.
#[test]
fn tam_grants_what_ltam_proves_unreachable() {
    // gate – corridor – lab.
    let mut model = LocationModel::new("Site");
    let gate = model.add_primitive(model.root(), "Gate").unwrap();
    let corridor = model.add_primitive(model.root(), "Corridor").unwrap();
    let lab = model.add_primitive(model.root(), "Lab").unwrap();
    model.add_edge(gate, corridor).unwrap();
    model.add_edge(corridor, lab).unwrap();
    model.set_entry(gate).unwrap();
    let graph = EffectiveGraph::build(&model);

    // TAM: object-level windows, no topology.
    let mut tam = TamDb::new();
    for object in ["Gate", "Corridor", "Lab"] {
        tam.insert(TamAuthorization {
            subject: ALICE,
            object: object.into(),
            window: Interval::lit(40, 60),
            sign: Sign::Positive,
        });
    }
    // Except the corridor is only open early.
    tam.insert(TamAuthorization {
        subject: ALICE,
        object: "Corridor".into(),
        window: Interval::lit(40, 60),
        sign: Sign::Negative,
    });
    tam.insert(TamAuthorization {
        subject: ALICE,
        object: "Corridor".into(),
        window: Interval::lit(0, 10),
        sign: Sign::Positive,
    });
    // TAM happily authorizes the lab at t=50 — it cannot see that Alice
    // has no way to *be* there.
    assert!(tam.check(ALICE, "Lab", Time(50)));

    // LTAM with the same windows proves the lab inaccessible.
    let mut auths = AuthsByLocation::new();
    let auth = |l, e: (u64, u64)| {
        Authorization::new(
            Interval::lit(e.0, e.1),
            Interval::lit(e.0, e.1),
            ALICE,
            l,
            EntryLimit::Unbounded,
        )
        .unwrap()
    };
    auths.insert(gate, vec![auth(gate, (40, 60))]);
    auths.insert(corridor, vec![auth(corridor, (0, 10))]);
    auths.insert(lab, vec![auth(lab, (40, 60))]);
    let report = find_inaccessible(&graph, &auths);
    assert!(report.is_inaccessible(lab));
    assert!(report.is_inaccessible(corridor));
    assert!(!report.is_inaccessible(gate));
}

/// TAM's granted set and LTAM's grant duration coincide on a single
/// location — LTAM is a conservative extension of the temporal model.
#[test]
fn single_location_semantics_coincide() {
    let mut model = LocationModel::new("One");
    let room = model.add_primitive(model.root(), "Room").unwrap();
    model.set_entry(room).unwrap();
    let graph = EffectiveGraph::build(&model);

    let mut tam = TamDb::new();
    tam.insert(TamAuthorization {
        subject: ALICE,
        object: "Room".into(),
        window: Interval::lit(10, 30),
        sign: Sign::Positive,
    });
    tam.insert(TamAuthorization {
        subject: ALICE,
        object: "Room".into(),
        window: Interval::lit(50, 70),
        sign: Sign::Positive,
    });

    let mut auths = AuthsByLocation::new();
    auths.insert(
        room,
        vec![
            Authorization::new(
                Interval::lit(10, 30),
                Interval::lit(10, 30),
                ALICE,
                room,
                EntryLimit::Unbounded,
            )
            .unwrap(),
            Authorization::new(
                Interval::lit(50, 70),
                Interval::lit(50, 70),
                ALICE,
                room,
                EntryLimit::Unbounded,
            )
            .unwrap(),
        ],
    );
    let report = find_inaccessible(&graph, &auths);
    let expected: IntervalSet = [Interval::lit(10, 30), Interval::lit(50, 70)]
        .into_iter()
        .collect();
    assert_eq!(report.grant_times[&room], expected);
    assert_eq!(
        tam.granted_set(ALICE, "Room", Interval::lit(0, 100)),
        expected
    );
}

/// Entry-count limits are invisible to TAM but enforced by LTAM's
/// decision: the second entry inside the same window differs.
#[test]
fn entry_counts_separate_the_models() {
    use ltam::core::decision::{check_access, AccessRequest, Decision};
    use ltam::core::ledger::UsageLedger;
    use ltam::core::AuthorizationDb;
    let location = ltam::graph::LocationId(1);
    let mut db = AuthorizationDb::new();
    let id = db.insert(
        Authorization::new(
            Interval::lit(0, 100),
            Interval::lit(0, 100),
            ALICE,
            location,
            EntryLimit::Finite(1),
        )
        .unwrap(),
    );
    let mut ledger = UsageLedger::new();
    let mut tam = TamDb::new();
    tam.insert(TamAuthorization {
        subject: ALICE,
        object: "Room".into(),
        window: Interval::lit(0, 100),
        sign: Sign::Positive,
    });

    let req = |t| AccessRequest {
        time: Time(t),
        subject: ALICE,
        location,
    };
    assert!(check_access(&db, &ledger, &req(10)).is_granted());
    ledger.record_entry(id);
    // TAM: still yes. LTAM: budget is spent.
    assert!(tam.check(ALICE, "Room", Time(20)));
    assert!(matches!(
        check_access(&db, &ledger, &req(20)),
        Decision::Denied { .. }
    ));
}
