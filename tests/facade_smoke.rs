//! Smoke test for the `ltam` facade crate: every re-exported module path
//! must resolve, and the README/doc quick-start path must work end to end
//! through the facade alone.

use ltam::core::db::AuthorizationDb;
use ltam::core::decision::{check_access, AccessRequest};
use ltam::core::ledger::UsageLedger;
use ltam::core::model::{Authorization, EntryLimit};
use ltam::core::subject::SubjectId;
use ltam::engine::engine::AccessControlEngine;
use ltam::geo::primitives::Point;
use ltam::graph::{LocationId, LocationModel};
use ltam::sim::grid_building;
use ltam::time::{Interval, Time};

#[test]
fn all_facade_modules_resolve() {
    // Each `ltam::<crate>` alias must point at the right crate: touch one
    // item from every re-export so a broken alias fails to compile.
    let _: SubjectId = SubjectId(0);
    let _: LocationId = LocationId(0);
    let _: Time = Time(0);
    let _: Point = Point { x: 0.0, y: 0.0 };
    let _: LocationModel = LocationModel::new("root");
    let _ = grid_building(2, 2);
}

#[test]
fn quickstart_path_through_facade() {
    let alice = SubjectId(0);
    let cais = LocationId(7);
    let mut db = AuthorizationDb::new();
    db.insert(
        Authorization::new(
            Interval::lit(5, 40),
            Interval::lit(20, 100),
            alice,
            cais,
            EntryLimit::Finite(1),
        )
        .expect("quick-start authorization satisfies Definition 4"),
    );
    let ledger = UsageLedger::new();
    let request = AccessRequest {
        time: Time(10),
        subject: alice,
        location: cais,
    };
    assert!(check_access(&db, &ledger, &request).is_granted());
}

#[test]
fn engine_runs_through_facade() {
    let world = grid_building(2, 2);
    let mut engine = AccessControlEngine::new(world.model.clone());
    let s = engine.profiles_mut().add_user("S", "staff");
    let entry = world.graph.global_entries()[0];
    engine.add_authorization(
        Authorization::new(
            Interval::ALL,
            Interval::ALL,
            s,
            entry,
            EntryLimit::Unbounded,
        )
        .expect("unbounded authorization is valid"),
    );
    assert!(engine.request_enter(Time(1), s, entry).is_granted());
    engine.observe_enter(Time(1), s, entry);
    assert_eq!(engine.movements().current_location(s), Some(entry));
}
