//! The replication-lag gauge tells the truth about convergence: after
//! a follower has drained the primary's WAL, its wire-scraped
//! `repl_lag_events` gauge reads EXACTLY 0 — not "small", zero. The
//! gauge is refreshed from monotone atomics at every watermark
//! publish, so a drained stream is deterministically lag-free and the
//! assertion needs no tolerance.
//!
//! Single test on purpose: the registry is process-global, and a
//! sibling test running its own follower here would share (and fight
//! over) the same gauge series.

use std::time::Duration;

use ltam::serve::{bootstrap_follower, LtamClient, ReplicaConfig, Server, ServerConfig};
use ltam::store::{DurableEngine, ScratchDir, StoreConfig};
use ltam_bench::serve_workload;
use ltam_sim::multi_shard_trace;

#[test]
fn follower_lag_gauge_reads_zero_after_catch_up() {
    let trace = multi_shard_trace(&serve_workload(32, 2_400));
    let n = trace.events.len() as u64;

    let p_dir = ScratchDir::new("lag-gauge-primary");
    let p_store = StoreConfig {
        segment_bytes: 64 * 1024,
        snapshot_every: 0,
        fsync: false,
        retention: None,
    };
    let (engine, _alerts) =
        DurableEngine::create(p_dir.path(), trace.build_policy_core(), 2, p_store).unwrap();
    let primary = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let p_addr = primary.local_addr().to_string();

    // Preload half the trace so the bootstrap transfers real state and
    // the follower starts life with genuine lag to burn down.
    let mut loader = LtamClient::connect(&p_addr).unwrap();
    let half = trace.events.len() / 2;
    for chunk in trace.events[..half].chunks(64) {
        loader.ingest(chunk).unwrap();
    }

    let f_dir = ScratchDir::new("lag-gauge-follower");
    let f_store = StoreConfig {
        segment_bytes: 64 * 1024,
        snapshot_every: 0,
        fsync: false,
        retention: None,
    };
    let f_engine = bootstrap_follower(f_dir.path(), &p_addr, f_store).unwrap();
    let mut replica = ReplicaConfig::new(&p_addr);
    replica.poll_interval = Duration::from_millis(2);
    let follower =
        Server::start_follower(f_engine, "127.0.0.1:0", ServerConfig::default(), replica).unwrap();
    let mut probe = LtamClient::connect(&follower.local_addr().to_string()).unwrap();

    // Stream the rest while the follower tails, then wait it out.
    for chunk in trace.events[half..].chunks(64) {
        loader.ingest(chunk).unwrap();
    }
    probe
        .wait_for_watermark(n, Duration::from_secs(30))
        .expect("follower converges");

    // Scrape the FOLLOWER over the wire: the gauge must read zero, the
    // bootstrap must have been counted, and the replica must have
    // logged at least one transition into the streaming state.
    let text = probe.metrics().unwrap();
    let expo = ltam::obs::validate(&text).expect("scraped exposition is grammatical");
    assert_eq!(
        expo.value("repl_lag_events", &[]),
        Some(0.0),
        "drained follower must report exactly zero lag"
    );
    assert!(expo.family_sum("repl_bootstraps_total") >= 1.0);
    assert!(expo.value("repl_state_transitions_total", &[("state", "streaming")]) >= Some(1.0));
    assert!(expo.family_sum("repl_fetch_seconds_count") > 0.0);

    drop(follower.abort().unwrap());
    drop(primary.abort().unwrap());
}
