//! Sharded enforcement is *semantically invisible*: on the same event
//! trace, `ShardedEngine` (N shards, batch ingestion, worker threads)
//! must detect exactly the violation multiset the single-threaded
//! `AccessControlEngine` / single-lock `SharedEngine` detects.
//!
//! This holds because every per-subject invariant lives entirely on one
//! shard (see `ltam_engine::shard`); these tests are the executable
//! proof obligation behind that claim.

use ltam_bench::violation_multiset as as_multiset;
use ltam_engine::batch::apply_to_engine;
use ltam_engine::violation::Violation;
use ltam_sim::{multi_shard_trace, TraceConfig};
use proptest::prelude::*;

/// Replay `cfg`'s trace through the reference engine and through a
/// sharded engine, returning both violation multisets.
fn run_both(cfg: &TraceConfig, shards: usize) -> (Vec<Violation>, Vec<Violation>) {
    let trace = multi_shard_trace(cfg);

    let mut reference = trace.build_engine();
    for e in &trace.events {
        apply_to_engine(&mut reference, e);
    }

    let (sharded, _alerts) = trace.build_sharded(shards);
    let outcome = sharded.ingest(&trace.events);
    assert_eq!(outcome.processed, trace.events.len());

    (
        as_multiset(reference.violations().to_vec()),
        as_multiset(sharded.violations()),
    )
}

/// The acceptance trace: 100k events, 4 shards, identical multisets.
#[test]
fn sharded_matches_single_engine_on_100k_events() {
    let cfg = TraceConfig {
        subjects: 256,
        events: 100_000,
        grid: 8,
        tick_every: 128,
        tailgater_fraction: 0.1,
        overstayer_fraction: 0.1,
        seed: 42,
    };
    let (reference, sharded) = run_both(&cfg, 4);
    assert!(
        !reference.is_empty(),
        "trace should exercise the violation taxonomy"
    );
    assert_eq!(
        reference.len(),
        sharded.len(),
        "violation counts diverge between single and sharded enforcement"
    );
    assert_eq!(reference, sharded);
}

/// The same equivalence across batch boundaries: splitting one trace
/// into many ingest calls must not change what is detected.
#[test]
fn batch_boundaries_are_invisible() {
    let cfg = TraceConfig {
        subjects: 64,
        events: 10_000,
        ..TraceConfig::default()
    };
    let trace = multi_shard_trace(&cfg);

    let (one_batch, _rx) = trace.build_sharded(4);
    one_batch.ingest(&trace.events);

    let (chunked, _rx) = trace.build_sharded(4);
    for chunk in trace.events.chunks(97) {
        chunked.ingest(chunk);
    }

    assert_eq!(
        as_multiset(one_batch.violations()),
        as_multiset(chunked.violations())
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Channel-ordering property: for arbitrary populations, trace
    /// lengths, shard counts and seeds, the multiset of violations is
    /// independent of the sharding — whatever order the worker threads
    /// interleave in.
    #[test]
    fn sharding_never_changes_the_violation_multiset(
        subjects in 1usize..24,
        events in 50usize..600,
        shards in 1usize..6,
        tailgaters in 0u8..4,
        seed in 0u64..1_000,
    ) {
        let cfg = TraceConfig {
            subjects,
            events,
            grid: 4,
            tick_every: 32,
            tailgater_fraction: f64::from(tailgaters) / 8.0,
            overstayer_fraction: 0.2,
            seed,
        };
        let (reference, sharded) = run_both(&cfg, shards);
        prop_assert_eq!(reference, sharded);
    }
}
