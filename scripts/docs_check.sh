#!/usr/bin/env bash
# Documentation guardrail, run by CI on every push:
#
#  1. every local markdown link (and #anchor) in the top-level docs
#     resolves — BOOK/OPERATIONS/README cross-references cannot rot;
#  2. every `cargo …` command inside an `sh` fence of
#     docs/OPERATIONS.md actually runs — the operator's handbook stays
#     executable, not aspirational.
set -euo pipefail
cd "$(dirname "$0")/.."

DOCS=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/BOOK.md docs/OPERATIONS.md)

echo "== link check: ${DOCS[*]}"
python3 - "${DOCS[@]}" <<'PY'
import re
import sys
from pathlib import Path

def slug(heading: str) -> str:
    """GitHub-style anchor slug."""
    s = heading.strip().lower()
    s = re.sub(r"[^\w\s-]", "", s)
    return s.replace(" ", "-")

def headings(path: Path) -> set[str]:
    out = set()
    for line in path.read_text().splitlines():
        m = re.match(r"#{1,6}\s+(.*)", line)
        if m:
            out.add(slug(m.group(1)))
    return out

failures = []
for name in sys.argv[1:]:
    doc = Path(name)
    base = doc.parent
    for target in re.findall(r"\]\(([^)\s]+)\)", doc.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path, _, anchor = target.partition("#")
        dest = (base / path) if path else doc
        if path and not dest.exists():
            failures.append(f"{name}: broken link -> {target}")
            continue
        if anchor and dest.suffix == ".md" and anchor not in headings(dest):
            failures.append(f"{name}: broken anchor -> {target}")
for f in failures:
    print("FAIL", f)
sys.exit(1 if failures else 0)
PY

echo "== operator commands: docs/OPERATIONS.md"
mapfile -t commands < <(awk '
    /^```sh$/ { fence = 1; next }
    /^```$/ { fence = 0 }
    fence && /^cargo / { print }
' docs/OPERATIONS.md)

if [ "${#commands[@]}" -eq 0 ]; then
    echo "FAIL: no runnable commands found in docs/OPERATIONS.md" >&2
    exit 1
fi

for cmd in "${commands[@]}"; do
    echo "-- $cmd"
    bash -c "$cmd" >/dev/null
done

echo "docs check OK (${#commands[@]} operator commands ran)"
